# Development convenience targets.  Everything assumes the source
# layout (src/) without installation: PYTHONPATH=src.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke bench profile-demo

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) -m pytest benchmarks/ -q -p no:cacheprovider \
	  -k "ablation or no_regression or snode_scaling"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Exercise the --profile surface end-to-end: feed the per-sensor stats
# program three readings through the REPL and print the per-rule /
# per-node match-work tables on exit.
profile-demo:
	printf 'make reading ^sensor t1 ^value 10\n\
	make reading ^sensor t1 ^value 30\n\
	make reading ^sensor t2 ^value 22\n\
	run\n\
	exit\n' | $(PYTHON) -m repro.cli \
	  examples/programs/sensor_stats.ops --profile
