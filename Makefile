# Development convenience targets.  Everything assumes the source
# layout (src/) without installation: PYTHONPATH=src.  Prepend rather
# than assign so a caller's PYTHONPATH survives (same idiom as the
# tier-1 command in ROADMAP.md: src${PYTHONPATH:+:$PYTHONPATH}).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench bench-report batch-demo profile-demo \
	durability-demo

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) -m pytest benchmarks/ -q -p no:cacheprovider \
	  -k "ablation or no_regression or snode_scaling or batch or durability"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Regression gate: measure match-work counters for the benchmark
# scenarios, write BENCH_2.json, and fail if join activations regress
# more than 10% against benchmarks/BENCH_baseline.json.
bench-report:
	$(PYTHON) benchmarks/bench_report.py --check

batch-demo:
	$(PYTHON) -W error::DeprecationWarning examples/bulk_load.py

# Exercise the --profile surface end-to-end: feed the per-sensor stats
# program three readings through the REPL and print the per-rule /
# per-node match-work tables on exit.
profile-demo:
	printf 'make reading ^sensor t1 ^value 10\n\
	make reading ^sensor t1 ^value 30\n\
	make reading ^sensor t2 ^value 22\n\
	run\n\
	exit\n' | $(PYTHON) -m repro.cli \
	  examples/programs/sensor_stats.ops --profile

# Crash a durable session mid-append, recover it from the WAL, then do
# the same through a checkpoint; asserts state equality both ways.
durability-demo:
	$(PYTHON) -W error::DeprecationWarning examples/crash_recovery.py
