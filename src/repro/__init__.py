"""repro — Set-Oriented Constructs: From Rete Rule Bases to Database Systems.

A complete, from-scratch reproduction of Gordin & Pasik (SIGMOD 1991):
an OPS5/C5 forward-chaining rule engine whose Rete network is extended
with the paper's set-oriented constructs — set-oriented condition
elements and pattern variables, incremental LHS aggregates, the S-node
(Figure 3), and the RHS ``foreach``/``set-modify``/``set-remove``
operators — plus the relational/DIPS integration of section 8.

Quick start::

    from repro import RuleEngine

    engine = RuleEngine()
    engine.load('''
        (literalize player name team)
        (p SwitchTeams
          { [player ^team A] <ATeam> }
          { [player ^team B] <BTeam> }
          :test ((count <ATeam>) == (count <BTeam>))
          -->
          (set-modify <ATeam> ^team B)
          (set-modify <BTeam> ^team A))
    ''')
    engine.make("player", name="Jack", team="A")
    engine.make("player", name="Sue", team="B")
    engine.run(limit=1)

Subsystems: :mod:`repro.lang` (the rule language), :mod:`repro.rete`
(the extended match network), :mod:`repro.match` (TREAT/naive
baselines), :mod:`repro.engine` (conflict resolution + RHS),
:mod:`repro.rdb` (the relational substrate), :mod:`repro.dips` (DBMS
matching, section 8), :mod:`repro.bench` (workloads and harness).
"""

from repro.durability import DurabilityConfig
from repro.engine import MatchStats, NullStats, RuleEngine
from repro.lang import RuleBuilder, parse_program, parse_rule
from repro.match import NaiveMatcher, TreatMatcher
from repro.rete import ReteNetwork, ShardedReteNetwork
from repro.wm import WME, WorkingMemory

__version__ = "1.0.0"

__all__ = [
    "DurabilityConfig",
    "MatchStats",
    "NaiveMatcher",
    "NullStats",
    "ReteNetwork",
    "RuleBuilder",
    "RuleEngine",
    "ShardedReteNetwork",
    "TreatMatcher",
    "WME",
    "WorkingMemory",
    "__version__",
    "parse_program",
    "parse_rule",
]
