"""Session lifecycle for the rule service: one tenant = one engine.

A :class:`Session` wraps a private :class:`~repro.engine.engine.RuleEngine`
built from a shared :class:`~repro.service.rulebase.RuleBase`.  Tenant
isolation is composed from the subsystems earlier PRs built:

* **state** — working memory, conflict set, refraction, and trace are
  engine-private; nothing about one tenant's facts is visible to
  another (shared rule bases expose only immutable ASTs and compiled
  kernel functions);
* **durability** — each session owns a WAL directory
  (``<wal_root>/<session_id>``), so a crash recovers every tenant
  independently and an evicted session can be resumed later;
* **fault containment** — per-session error policies
  (halt/skip/retry/quarantine) and per-request run watchdogs
  (firing limit + wall clock) keep one tenant's poison rule or
  runaway program from taking the server down.

:class:`SessionRegistry` owns the id → session map and the eviction
policy: sessions idle past ``idle_ttl`` are checkpointed and closed by
the sweeper, and when ``max_sessions`` is reached the least recently
used *idle* session is evicted to admit the new one (every admitted
session is busy ⇒ the create is rejected with
:class:`~repro.errors.AdmissionError` backpressure instead).
Eviction and client disconnects race by design; ``RuleEngine.close``
is idempotent, so both paths simply call it.

Admission and eviction must not race each other, though: the sweeper
runs on an executor thread while requests are admitted on the event
loop, so lookup and the ``pending`` increment happen atomically under
the registry lock (:meth:`SessionRegistry.checkout` /
:meth:`~SessionRegistry.checkin`).  A request that wins the race
blocks eviction until it completes; a request that loses gets a clean
``no_session`` (the session was checkpointed intact) — never a
half-applied batch.
"""

from __future__ import annotations

import contextlib
import os
import re
import threading
import time

from repro.errors import AdmissionError, ServiceError, WalError

#: Session ids double as WAL directory names, so they are restricted
#: to filesystem-safe characters (and can never traverse).
SESSION_ID_PATTERN = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}\Z")


def validate_session_id(session_id):
    """Return *session_id* or raise :class:`ServiceError`."""
    if not isinstance(session_id, str) or not SESSION_ID_PATTERN.match(
        session_id
    ):
        raise ServiceError(
            f"invalid session id {session_id!r}: need 1-64 characters "
            f"from [A-Za-z0-9._-], starting with a letter or digit"
        )
    return session_id


#: Default cap on per-session idempotency-journal entries.  Old
#: entries evict in insertion order; a client retrying a request more
#: than this many requests later loses dedup protection (it would
#: re-apply), so clients should retry promptly — the retry budget in
#: :class:`~repro.service.client.ServiceClient` is minutes, not hours.
DEFAULT_JOURNAL_LIMIT = 512


def journal_put(engine, key, response, limit=None):
    """Record a completed request's response under its idempotency key,
    evicting the oldest entries past *limit* (insertion order)."""
    journal = engine.request_journal
    journal[key] = response
    limit = DEFAULT_JOURNAL_LIMIT if limit is None else limit
    while len(journal) > limit:
        journal.pop(next(iter(journal)))


class Session:
    """One tenant's engine plus its admission/accounting state."""

    __slots__ = ("id", "engine", "rule_base", "wal_dir", "created_at",
                 "last_used", "pending", "requests", "facts_ingested",
                 "firings", "resumed", "deduped", "create_key",
                 "reloads", "_clock")

    def __init__(self, session_id, engine, rule_base=None, wal_dir=None,
                 resumed=False, create_key=None, clock=time.monotonic):
        self.id = session_id
        self.engine = engine
        self.rule_base = rule_base
        self.wal_dir = wal_dir
        self._clock = clock
        self.created_at = clock()
        self.last_used = self.created_at
        #: Requests admitted but not yet completed (admission control).
        self.pending = 0
        self.requests = 0
        self.facts_ingested = 0
        self.firings = 0
        self.resumed = resumed
        #: Requests answered from the idempotency journal.
        self.deduped = 0
        #: Runtime rule-surgery requests applied (add/remove/replace).
        self.reloads = 0
        #: Idempotency key of the ``create`` that made this session,
        #: so a retried create is recognised instead of rejected.
        self.create_key = create_key

    @property
    def closed(self):
        return self.engine.closed

    def touch(self):
        self.last_used = self._clock()

    def idle_for(self):
        return self._clock() - self.last_used

    def ingest_facts(self, pairs, key=None, journal_limit=None):
        """Atomically ingest ``(class, values)`` pairs; exactly once.

        Returns ``(response, deduped)``.  With an idempotency *key*,
        the engine's request journal is consulted first — a retried
        batch whose first attempt committed is answered from the
        journal, never re-applied — and the key rides *inside* the
        batch's WAL delta record (``pending_request_key``), so the
        effects and the dedup marker are one atomic frame: either both
        survive a crash or neither does.

        The batch itself runs under a WM transaction.  If the WAL
        append fails mid-flush (ENOSPC, torn segment), the working
        memory may be left in a reopened batch with the failed events
        still staged; the rollback below rewinds them, so the request
        fails cleanly (retryable) instead of leaving a half-applied
        batch behind.
        """
        engine = self.engine
        if key is not None:
            cached = engine.request_journal.get(key)
            if cached is not None:
                self.deduped += 1
                return dict(cached), True
        durability = engine.durability
        if key is not None and durability is not None:
            durability.pending_request_key = key
        wm = engine.wm
        savepoint = wm.begin_transaction()
        try:
            try:
                made = [
                    wm.make(wme_class, **values)
                    for wme_class, values in pairs
                ]
            except BaseException:
                wm.rollback_transaction(savepoint, engine.stats)
                raise
            try:
                wm.commit_transaction(savepoint, engine.stats)
            except (WalError, OSError):
                if not wm.in_batch:
                    raise  # an observer already consumed the flush
                wm.rollback_transaction(savepoint, engine.stats)
                raise
        finally:
            if durability is not None:
                durability.pending_request_key = None
        self.facts_ingested += len(made)
        response = {"ingested": len(made), "wm_size": len(wm)}
        if key is not None:
            journal_put(engine, key, response, journal_limit)
        return response, False

    def rule_surgery(self, action, *, source=None, rule_name=None,
                     key=None, journal_limit=None, rule_bases=None):
        """Runtime rule surgery — ``add`` / ``remove`` / ``replace``.

        Returns ``(response, deduped)`` like :meth:`ingest_facts`.  The
        engine call WAL-logs the change (``p`` / ``x`` / one atomic
        ``P`` record), so recovery replays the reload in order; with an
        idempotency *key* a retried reload is answered from the journal
        instead of re-applied (an un-keyed retry of ``add`` would raise
        "already defined" — the engine itself stays exactly-once).

        Copy-on-write divergence: after the surgery the session's
        program source no longer matches its shared rule base, so the
        session re-keys onto a fork (sharing the parent's kernel pack)
        via ``rule_bases.fork``.  Untouched tenants keep sharing the
        parent entry; a second tenant reloading to a byte-identical
        program converges on the same fork, and replacing a rule shared
        by N tenants costs exactly one new kernel compile (the
        structural-key cache spans the fork).
        """
        engine = self.engine
        if key is not None:
            cached = engine.request_journal.get(key)
            if cached is not None:
                self.deduped += 1
                return dict(cached), True
        if action == "add":
            added = engine.add_rule(source)
            response = {"rule": added.name}
        elif action == "remove":
            engine.excise(rule_name)
            response = {"rule": rule_name}
        elif action == "replace":
            new_rule = engine.replace_rule(rule_name, source)
            response = {"rule": new_rule.name, "replaced": rule_name}
        else:  # pragma: no cover - guarded by the op dispatch
            raise ServiceError(f"unknown rule surgery {action!r}")
        self.reloads += 1
        from repro.durability.checkpoint import (
            program_source, rule_base_version,
        )

        program = program_source(engine)
        forked = False
        if rule_bases is not None and self.rule_base is not None:
            if program != self.rule_base.source:
                base, hit = rule_bases.fork(self.rule_base, program)
                self.rule_base = base
                forked = not hit
        response.update(
            rules=len(engine.rules),
            version=rule_base_version(program),
            forked=forked,
        )
        if key is not None:
            journal_put(engine, key, response, journal_limit)
            if engine.durability is not None:
                # Best-effort durable journal entry (see _op_run): the
                # surgery record itself is already on the WAL, so a
                # crash-then-retry without this entry replays the
                # journal miss against an engine that already has the
                # change — the engine-level "already defined"/"no rule"
                # errors surface that explicitly rather than silently
                # double-applying.
                with contextlib.suppress(WalError, OSError):
                    engine.durability.log_request(key, response)
        return response, False

    def close(self, checkpoint=False):
        """Close the tenant's engine (idempotent).

        *checkpoint* writes a durability checkpoint first when the
        session has a WAL — the eviction path's default, so a later
        resume replays a short tail instead of the whole history.
        Checkpoint failure never blocks the close.
        """
        if checkpoint and self.engine.durability is not None:
            try:
                self.engine.checkpoint()
            except Exception:
                pass
        self.engine.close()

    def info(self):
        """JSON-safe session summary for the stats surface."""
        return {
            "session": self.id,
            "requests": self.requests,
            "pending": self.pending,
            "facts_ingested": self.facts_ingested,
            "firings": self.firings,
            "deduped": self.deduped,
            "reloads": self.reloads,
            "rules": len(self.engine.rules),
            "wm_size": len(self.engine.wm),
            "conflict_set": len(self.engine.conflict_set),
            "idle_s": round(self.idle_for(), 3),
            "resumed": self.resumed,
            "durable": self.wal_dir is not None,
        }

    def __repr__(self):
        return (f"Session({self.id!r}, {len(self.engine.wm)} WMEs, "
                f"pending={self.pending})")


class SessionRegistry:
    """id → :class:`Session`, with TTL/LRU eviction and clean closes."""

    def __init__(self, rule_bases, wal_root=None, fsync="batch",
                 max_sessions=256, idle_ttl=300.0,
                 default_matcher="rete", default_kernels=None,
                 default_backend=None, default_strategy="lex",
                 default_on_error="halt", fault_factory=None,
                 clock=time.monotonic):
        self.rule_bases = rule_bases
        self.wal_root = str(wal_root) if wal_root is not None else None
        self.fsync = fsync
        #: Optional ``session_id -> FaultInjector|None`` hook the chaos
        #: layer uses to arm durable sessions with lifecycle faults.
        self.fault_factory = fault_factory
        self.max_sessions = max_sessions
        self.idle_ttl = idle_ttl
        self.default_matcher = default_matcher
        self.default_kernels = default_kernels
        self.default_backend = default_backend
        self.default_strategy = default_strategy
        self.default_on_error = default_on_error
        self.clock = clock
        self._sessions = {}
        self._lock = threading.RLock()
        self.created = 0
        self.resumed = 0
        self.evicted_idle = 0
        self.evicted_lru = 0
        self.closed = 0

    # -- lookup ------------------------------------------------------------

    def get(self, session_id, touch=True):
        """The live session for *session_id*, or raise ServiceError."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None or session.closed:
                raise ServiceError(f"no session named {session_id!r}")
            if touch:
                session.touch()
            return session

    def checkout(self, session_id, max_pending=None):
        """Atomically look up *session_id* and claim one pending slot.

        Lookup, the per-session admission check, and the ``pending``
        increment happen under the registry lock — the same lock the
        idle sweeper and LRU evictor take — so a checked-out session
        can never be evicted mid-request (eviction only considers
        ``pending == 0`` sessions).  Pair with :meth:`checkin` in a
        ``finally``.
        """
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None or session.closed:
                raise ServiceError(f"no session named {session_id!r}")
            if max_pending is not None and session.pending >= max_pending:
                raise AdmissionError(
                    f"session {session_id!r} queue is full "
                    f"({session.pending} pending); retry shortly",
                )
            session.pending += 1
            session.touch()
            return session

    def checkin(self, session):
        """Release a :meth:`checkout` claim."""
        with self._lock:
            session.pending -= 1
            session.touch()

    def __contains__(self, session_id):
        with self._lock:
            session = self._sessions.get(session_id)
            return session is not None and not session.closed

    def __len__(self):
        with self._lock:
            return len(self._sessions)

    def ids(self):
        with self._lock:
            return sorted(self._sessions)

    def sessions(self):
        with self._lock:
            return list(self._sessions.values())

    # -- creation ----------------------------------------------------------

    def _session_wal_dir(self, session_id):
        if self.wal_root is None:
            return None
        return os.path.join(self.wal_root, session_id)

    def create(self, session_id, source, *, matcher=None, kernels=None,
               backend=None, strategy=None, on_error=None, durable=True,
               resume=False, workers=None, key=None):
        """Admit a new tenant; returns ``(session, rulebase_hit)``.

        The engine is stamped out of the shared rule base for
        ``(source, matcher, kernels, backend)``.  With a ``wal_root``
        configured and *durable*, the session logs to its own WAL
        directory; *resume* recovers an evicted/crashed session from
        that directory instead (the request's program must match the
        logged one — the log is authoritative).  A fresh create whose
        directory already holds history raises
        :class:`~repro.errors.DurabilityError` naming the session.

        *key* is the request's idempotency key: a retried create that
        finds its session already live (the first attempt succeeded
        but the response was lost) returns the existing session with
        ``rulebase_hit == "deduped"`` instead of raising
        "already exists".
        """
        validate_session_id(session_id)
        matcher = matcher or self.default_matcher
        kernels = kernels if kernels is not None else self.default_kernels
        backend = backend or self.default_backend
        strategy = strategy or self.default_strategy
        on_error = on_error or self.default_on_error
        with self._lock:
            if session_id in self:
                existing = self._sessions[session_id]
                if key is not None and existing.create_key == key:
                    existing.deduped += 1
                    return existing, "deduped"
                raise ServiceError(
                    f"session {session_id!r} already exists"
                )
            if len(self._sessions) >= self.max_sessions:
                self._evict_lru_locked()
            wal_dir = self._session_wal_dir(session_id) if durable else None
            fault = None
            if self.fault_factory is not None and wal_dir is not None:
                fault = self.fault_factory(session_id)
            resumed = False
            if resume:
                if wal_dir is None:
                    raise ServiceError(
                        "resume requires a wal_root-configured server "
                        "and a durable session"
                    )
                from repro.durability import (
                    DurabilityConfig, recover_engine,
                )
                from repro.engine.engine import RuleEngine

                engine = recover_engine(
                    RuleEngine, wal_dir, on_error=on_error,
                    kernels=kernels, workers=workers,
                    durability=DurabilityConfig(
                        wal_dir, fsync=self.fsync, label=session_id,
                        fault=fault,
                    ),
                )
                base = None
                resumed = True
                self.resumed += 1
            else:
                base, hit = self.rule_bases.get(
                    source, matcher=matcher, kernels=kernels,
                    backend=backend,
                )
                durability = None
                if wal_dir is not None:
                    from repro.durability import DurabilityConfig

                    durability = DurabilityConfig(
                        wal_dir, fsync=self.fsync, label=session_id,
                        fault=fault,
                    )
                engine = base.build_engine(
                    strategy=strategy, durability=durability,
                    on_error=on_error, workers=workers,
                )
            session = Session(
                session_id, engine, rule_base=base, wal_dir=wal_dir,
                resumed=resumed, create_key=key, clock=self.clock,
            )
            self._sessions[session_id] = session
            self.created += 1
            if resumed:
                return session, False
            return session, hit

    # -- eviction ----------------------------------------------------------

    def close_session(self, session_id, checkpoint=False):
        """Close and drop one session (client-initiated)."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise ServiceError(f"no session named {session_id!r}")
        session.close(checkpoint=checkpoint)
        self.closed += 1
        return session

    def _evict_lru_locked(self):
        """Evict the least recently used idle session (caller holds
        the lock); raise AdmissionError when every session is busy."""
        candidates = [
            s for s in self._sessions.values() if s.pending == 0
        ]
        if not candidates:
            raise AdmissionError(
                f"session table full ({self.max_sessions} sessions, "
                f"all busy); retry shortly",
                retry_after=0.1,
            )
        victim = min(candidates, key=lambda s: s.last_used)
        del self._sessions[victim.id]
        victim.close(checkpoint=True)
        self.evicted_lru += 1
        return victim.id

    def sweep_idle(self):
        """Evict sessions idle past ``idle_ttl``; returns their ids.

        Busy sessions (pending requests) are never swept, whatever
        their age.  Swept sessions are checkpointed so a resume is
        cheap.
        """
        if self.idle_ttl is None:
            return []
        with self._lock:
            expired = [
                s for s in self._sessions.values()
                if s.pending == 0 and s.idle_for() >= self.idle_ttl
            ]
            for session in expired:
                del self._sessions[session.id]
        for session in expired:
            session.close(checkpoint=True)
            self.evicted_idle += 1
        return [s.id for s in expired]

    def close_all(self, checkpoint=False):
        """Close every session (server shutdown).

        *checkpoint* is the drain path: every durable session writes a
        checkpoint first so the next server generation resumes each
        tenant from a short WAL tail.
        """
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close(checkpoint=checkpoint)
            self.closed += 1

    def stats(self):
        """JSON-safe registry counters."""
        with self._lock:
            return {
                "sessions": len(self._sessions),
                "created": self.created,
                "resumed": self.resumed,
                "evicted_idle": self.evicted_idle,
                "evicted_lru": self.evicted_lru,
                "closed": self.closed,
                "max_sessions": self.max_sessions,
                "idle_ttl": self.idle_ttl,
            }
