"""The rule service's wire protocol: newline-delimited JSON (NDJSON).

One request per line, one *terminal* response line per request, with
zero or more *event* lines streamed before it — firings and derived
facts flow back as they are drained, the Reaction-RuleML
request/response shape (a producer/consumer event exchange, not RPC
with a single opaque result).

Request::

    {"op": "<name>", "id": <any JSON, echoed back>, "session": "...",
     ...op-specific fields...}

Event lines carry ``"event"`` (``firing`` / ``write`` / ``fact``) and
echo the request ``id``; the terminal line carries ``"ok"``:

* success — ``{"ok": true, "id": ..., ...}``
* failure — ``{"ok": false, "id": ..., "error": "<code>",
  "message": "..."}``; codes ``busy``, ``deadline``, and
  ``unavailable`` additionally carry ``retry_after`` (seconds): the
  request was *not* applied, back off and retry (the load generator
  and ``ServiceClient`` honour it).

Resilience fields every mutating request may carry:

* ``deadline_ms`` — a relative per-request deadline.  The server
  anchors it at receipt; a request still queued when it expires gets
  a ``deadline`` error (never applied), and a ``run`` in flight is
  stopped by the deadline-aware watchdog (``stopped="deadline"``).
* ``key`` — an idempotency key.  The server consults the session's
  WAL-backed request-dedup journal first, so retrying ``assert`` /
  ``run`` / ``create`` after an ambiguous failure (connection torn
  down before the terminal line arrived) applies exactly once; a
  journal hit is answered with the recorded response plus
  ``deduped: true`` and streams no event lines.

Ops: ``ping``, ``health`` (readiness/drain state, never shed),
``create`` (program + per-session configuration), ``assert`` (a fact
batch, ingested atomically), ``run`` (recognize-act cycles, streaming
firings/writes/derived facts), ``facts`` (dump working memory),
``add_rule`` / ``remove_rule`` / ``replace_rule`` (hot rule reload:
WAL-logged runtime surgery on a live session, copy-on-write rule-base
divergence — see ``docs/DYNAMIC_RULES.md``), ``checkpoint``,
``close``, ``stats``.  See ``docs/SERVICE.md`` for the full field
tables.
"""

from __future__ import annotations

import json

#: Bumped on incompatible protocol changes; ``ping`` reports it.
PROTOCOL_VERSION = 1

#: Cap on one request line; longer lines are a protocol error (and a
#: guard against a client streaming garbage into server memory).  Fact
#: batches beyond this split into several ``assert`` requests.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Error codes a terminal failure response may carry.  ``busy``
#: (admission/backpressure, circuit breaker, drain), ``deadline``
#: (expired while queued), and ``unavailable`` (transient I/O failure,
#: e.g. a WAL append hitting ENOSPC — rolled back, nothing applied)
#: are retryable; the rest are not.
ERROR_CODES = ("protocol", "busy", "no_session", "bad_request",
               "engine", "internal", "deadline", "unavailable")

#: Codes whose failure responses mean "not applied — safe to retry".
RETRYABLE_CODES = frozenset({"busy", "deadline", "unavailable"})


def encode_line(obj):
    """*obj* as one NDJSON line (bytes, trailing newline)."""
    return (json.dumps(obj, separators=(",", ":"),
                       ensure_ascii=False) + "\n").encode("utf-8")


def decode_line(data):
    """One NDJSON line (bytes/str) back to an object.

    Raises ``ValueError`` for malformed JSON or a non-object payload —
    the server maps that to a ``protocol`` error response.
    """
    if isinstance(data, (bytes, bytearray)):
        data = data.decode("utf-8")
    obj = json.loads(data)
    if not isinstance(obj, dict):
        raise ValueError(f"request must be a JSON object, got {obj!r}")
    return obj


def ok_response(request_id, **fields):
    response = {"ok": True, "id": request_id}
    response.update(fields)
    return response


def error_response(request_id, code, message, **fields):
    response = {
        "ok": False, "id": request_id, "error": code, "message": message,
    }
    response.update(fields)
    return response


def event_line(request_id, event, **fields):
    line = {"event": event, "id": request_id}
    line.update(fields)
    return line


def firing_event(request_id, record):
    """An event line for one :class:`~repro.engine.tracing.FiringRecord`."""
    return event_line(
        request_id, "firing",
        rule=record.rule_name,
        cycle=record.cycle,
        soi=bool(record.is_set_oriented),
        tags=list(record.time_tags),
        outcome=record.outcome,
    )


def fact_event(request_id, sign, wme):
    """An event line for one derived/retracted working-memory element."""
    return event_line(
        request_id, "fact",
        sign=sign,
        **{"class": wme.wme_class},
        tag=wme.time_tag,
        values=wme.as_dict(),
    )
