"""The rule-service layer: a long-lived, multi-tenant engine server.

The paper's endpoint is a rule base served like a database: many
clients, one shared compiled rule program, per-client working
memories.  This package is that shape —

* :mod:`repro.service.protocol` — the NDJSON wire protocol;
* :mod:`repro.service.rulebase` — parse-once/kernel-compile-once
  shared rule bases keyed by content hash;
* :mod:`repro.service.session` — per-tenant engine sessions with
  TTL/LRU eviction, WAL-backed resume, and the exactly-once request
  journal;
* :mod:`repro.service.server` — the asyncio front end with bounded
  admission queues, backpressure, deadlines, circuit breakers, and
  drain-mode shutdown;
* :mod:`repro.service.client` — a blocking client with transparent
  reconnect, jittered backoff, and idempotency keys;
* :mod:`repro.service.chaos` — deterministic wire/lifecycle fault
  injection for proving all of the above;
* :mod:`repro.service.loadgen` — the concurrency/latency benchmark
  and chaos soak driver.

See ``docs/SERVICE.md``.
"""

from repro.service.chaos import ChaosConfig, ChaosInjector
from repro.service.client import (
    AmbiguousRequestError,
    ServiceBusyError,
    ServiceClient,
    ServiceClientError,
)
from repro.service.rulebase import RuleBase, RuleBaseCache, rule_base_key
from repro.service.server import RuleService, ServiceConfig, ServiceThread
from repro.service.session import Session, SessionRegistry

__all__ = [
    "AmbiguousRequestError",
    "ChaosConfig",
    "ChaosInjector",
    "RuleBase",
    "RuleBaseCache",
    "RuleService",
    "ServiceBusyError",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ServiceThread",
    "Session",
    "SessionRegistry",
    "rule_base_key",
]
