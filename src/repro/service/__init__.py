"""The rule-service layer: a long-lived, multi-tenant engine server.

The paper's endpoint is a rule base served like a database: many
clients, one shared compiled rule program, per-client working
memories.  This package is that shape —

* :mod:`repro.service.protocol` — the NDJSON wire protocol;
* :mod:`repro.service.rulebase` — parse-once/kernel-compile-once
  shared rule bases keyed by content hash;
* :mod:`repro.service.session` — per-tenant engine sessions with
  TTL/LRU eviction and WAL-backed resume;
* :mod:`repro.service.server` — the asyncio front end with bounded
  admission queues and backpressure;
* :mod:`repro.service.client` — a blocking client;
* :mod:`repro.service.loadgen` — the concurrency/latency benchmark.

See ``docs/SERVICE.md``.
"""

from repro.service.client import (
    ServiceBusyError,
    ServiceClient,
    ServiceClientError,
)
from repro.service.rulebase import RuleBase, RuleBaseCache, rule_base_key
from repro.service.server import RuleService, ServiceConfig, ServiceThread
from repro.service.session import Session, SessionRegistry

__all__ = [
    "RuleBase",
    "RuleBaseCache",
    "RuleService",
    "ServiceBusyError",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ServiceThread",
    "Session",
    "SessionRegistry",
    "rule_base_key",
]
