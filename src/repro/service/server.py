"""The rule service: a long-lived, multi-tenant engine server.

:class:`RuleService` is an asyncio front end over the embedded engine:
clients connect over TCP, speak the NDJSON protocol
(:mod:`repro.service.protocol`), and drive per-session
:class:`~repro.engine.engine.RuleEngine` instances owned by a
:class:`~repro.service.session.SessionRegistry`.  Engine work —
parsing, matching, firing, checkpointing — is synchronous Python, so
every engine call runs on a bounded :class:`ThreadPoolExecutor` while
the event loop keeps accepting connections; a per-session asyncio lock
serialises each tenant's requests (the engine is not reentrant), and
fact batches ingest transactionally so all service traffic rides the
batched propagation path and a failed batch rolls back whole.

**Admission control.**  Two bounded queues implement backpressure: a
global in-flight cap (``global_queue``) and a per-session pending cap
(``session_queue``).  A request arriving past either is rejected
immediately with a ``busy`` response carrying ``retry_after`` — the
server never buffers unbounded work, it tells the client to back off
(load shedding at the edge, the only stable answer once the executor
saturates).  Shedding is tiered: control ops (``ping``/``health``/
``stats``) are never shed, and ``create`` sheds earlier (at 80% of the
global queue) than work on existing sessions, so overload pressure
falls on new tenants before established ones; ``retry_after`` scales
with how far past capacity the server is.

**Watchdogs and deadlines.**  Every ``run`` is guarded by the
reliability layer's firing limit and wall-clock budget, capped at the
server's configured maximums — a tenant may ask for less, never more.
A request carrying ``deadline_ms`` is additionally anchored to an
absolute deadline at receipt: if it expires while the request is still
queued the server answers ``deadline`` (nothing was applied, safe to
retry), and a running ``run`` is stopped by the deadline-aware
watchdog (``stopped="deadline"`` in an ok response).

**Exactly-once.**  A mutating request may carry an idempotency
``key``.  Completed responses are recorded in a per-session journal
that is WAL-backed for durable sessions (an ``assert``'s key rides
inside its delta record; a ``run``'s summary is a ``j`` record), so a
retry after an ambiguous failure — connection torn down before the
terminal line arrived, a server crash mid-request — is answered from
the journal instead of re-applied, across eviction, resume, and crash
recovery.

**Graceful degradation.**  A per-session circuit breaker trips
repeatedly-failing sessions into quarantine (``busy`` with
``retry_after`` = remaining cooldown, then a half-open probe);
:meth:`RuleService.drain` stops accepting, finishes in-flight work,
and checkpoints every session for fast resume by the next server
generation.  The optional chaos layer (:mod:`repro.service.chaos`)
injects wire and lifecycle faults to prove all of the above under
fire.

See ``docs/SERVICE.md`` for the operator-facing story.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from time import monotonic

from repro.errors import (
    AdmissionError,
    DeadlineError,
    ReproError,
    ServiceError,
    WalError,
)
from repro.service import protocol
from repro.service.chaos import ChaosInjector
from repro.service.rulebase import RuleBaseCache
from repro.service.session import SessionRegistry, journal_put
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    encode_line,
    error_response,
    event_line,
    fact_event,
    firing_event,
    ok_response,
)

#: Ops served even while draining and never load-shed.
_CONTROL_OPS = frozenset({"ping", "health", "stats", "close"})

#: Session-scoped work ops whose failures feed the circuit breaker.
_SESSION_OPS = frozenset({"assert", "run", "facts", "checkpoint",
                          "add_rule", "remove_rule", "replace_rule"})


class ServiceConfig:
    """Configuration for one :class:`RuleService`.

    *host*/*port* — bind address (port 0 picks an ephemeral port);
    *wal_root* — per-session WAL directories live under it (None
    disables durability);
    *fsync* — the sessions' WAL fsync policy;
    *matcher*/*kernels*/*backend*/*strategy*/*on_error* — per-session
    defaults a ``create`` may override;
    *max_sessions*/*idle_ttl*/*sweep_interval* — registry sizing and
    the idle-eviction cadence (seconds);
    *session_queue*/*global_queue* — admission bounds (pending
    requests per session / server-wide);
    *engine_workers* — executor threads running engine calls;
    *run_limit*/*run_wall_clock* — per-request watchdog caps;
    *trace_limit* — per-session tracer ring bound;
    *chaos* — a :class:`~repro.service.chaos.ChaosConfig` (or spec
    string) enabling fault injection, None for a quiet server;
    *breaker_threshold*/*breaker_cooldown* — consecutive failures that
    trip a session's circuit breaker, and how long it stays open;
    *journal_limit* — idempotency-journal entries retained per session;
    *drain_grace* — seconds :meth:`RuleService.drain` waits for
    in-flight requests before checkpointing and closing sessions.
    """

    __slots__ = ("host", "port", "wal_root", "fsync", "matcher",
                 "kernels", "backend", "strategy", "on_error",
                 "max_sessions", "idle_ttl", "sweep_interval",
                 "session_queue", "global_queue", "engine_workers",
                 "run_limit", "run_wall_clock", "trace_limit",
                 "chaos", "breaker_threshold", "breaker_cooldown",
                 "journal_limit", "drain_grace")

    def __init__(self, host="127.0.0.1", port=0, wal_root=None,
                 fsync="batch", matcher="rete", kernels=None,
                 backend=None, strategy="lex", on_error="halt",
                 max_sessions=256, idle_ttl=300.0, sweep_interval=5.0,
                 session_queue=16, global_queue=128, engine_workers=4,
                 run_limit=10_000, run_wall_clock=30.0,
                 trace_limit=10_000, chaos=None, breaker_threshold=5,
                 breaker_cooldown=1.0, journal_limit=512,
                 drain_grace=10.0):
        self.host = host
        self.port = port
        self.wal_root = wal_root
        self.fsync = fsync
        self.matcher = matcher
        self.kernels = kernels
        self.backend = backend
        self.strategy = strategy
        self.on_error = on_error
        self.max_sessions = max_sessions
        self.idle_ttl = idle_ttl
        self.sweep_interval = sweep_interval
        self.session_queue = session_queue
        self.global_queue = global_queue
        self.engine_workers = engine_workers
        self.run_limit = run_limit
        self.run_wall_clock = run_wall_clock
        self.trace_limit = trace_limit
        self.chaos = chaos
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.journal_limit = journal_limit
        self.drain_grace = drain_grace


class _CircuitBreaker:
    """Per-session failure tracker: closed → open → half-open.

    ``threshold`` consecutive engine/internal/unavailable failures
    trip the breaker; while open, requests are rejected up front with
    ``busy`` + ``retry_after`` (the remaining cooldown) instead of
    burning an executor slot on a session that keeps failing.  After
    the cooldown one probe request is admitted: success closes the
    breaker, another failure re-opens it for a fresh cooldown.
    """

    __slots__ = ("failures", "open_until", "trips")

    def __init__(self):
        self.failures = 0
        self.open_until = None
        self.trips = 0

    @property
    def is_open(self):
        return self.open_until is not None

    def check(self, session_id, now):
        if self.open_until is not None and now < self.open_until:
            raise AdmissionError(
                f"session {session_id!r} is quarantined by its circuit "
                f"breaker ({self.failures} consecutive failures)",
                retry_after=max(0.001, round(self.open_until - now, 3)),
            )
        # Open but cooled down: fall through, admitting this request
        # as the half-open probe.

    def record_failure(self, threshold, cooldown, now):
        """Count one failure; returns True when the breaker (re)trips."""
        self.failures += 1
        if self.failures >= threshold:
            self.open_until = now + cooldown
            self.trips += 1
            return True
        return False

    def record_success(self):
        self.failures = 0
        self.open_until = None


class RuleService:
    """The server: connection handling, admission, dispatch."""

    def __init__(self, config=None):
        self.config = config if config is not None else ServiceConfig()
        self.chaos = (
            ChaosInjector(self.config.chaos)
            if self.config.chaos is not None else None
        )
        self.rule_bases = RuleBaseCache()
        self.registry = SessionRegistry(
            self.rule_bases,
            wal_root=self.config.wal_root,
            fsync=self.config.fsync,
            max_sessions=self.config.max_sessions,
            idle_ttl=self.config.idle_ttl,
            default_matcher=self.config.matcher,
            default_kernels=self.config.kernels,
            default_backend=self.config.backend,
            default_strategy=self.config.strategy,
            default_on_error=self.config.on_error,
            fault_factory=(
                self.chaos.fault_for_session
                if self.chaos is not None else None
            ),
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.engine_workers,
            thread_name_prefix="repro-service",
        )
        self._session_locks = {}
        self._breakers = {}
        self.global_pending = 0
        self.counters = Counter()
        self._server = None
        self._sweeper = None
        self._draining = False
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self):
        """Bind and start accepting connections (returns immediately)."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE_BYTES,
        )
        if self.config.sweep_interval and self.config.idle_ttl:
            self._sweeper = asyncio.create_task(self._sweep_loop())
        return self

    @property
    def address(self):
        """``(host, port)`` actually bound (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("service is not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def draining(self):
        return self._draining

    async def serve_forever(self):
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def begin_drain(self):
        """Enter drain mode: stop accepting connections and new work.

        Idempotent.  Control ops (``ping``/``health``/``stats``/
        ``close``) keep working on existing connections; everything
        else is rejected with ``busy`` so clients fail over.  In-flight
        requests are unaffected.
        """
        if self._draining:
            return
        self._draining = True
        self.counters["drains"] += 1
        await self._stop_sweeper()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def drain(self, grace=None):
        """Graceful shutdown: drain, finish in-flight, checkpoint all.

        Waits up to *grace* seconds (default ``config.drain_grace``)
        for in-flight requests to complete, then checkpoints and
        closes every session — so the next server generation resumes
        each durable tenant from a short WAL tail.
        """
        await self.begin_drain()
        grace = self.config.drain_grace if grace is None else grace
        deadline = monotonic() + grace
        while self.global_pending > 0 and monotonic() < deadline:
            await asyncio.sleep(0.02)
        if not self._closed:
            self._closed = True
            await asyncio.get_running_loop().run_in_executor(
                self._executor,
                lambda: self.registry.close_all(checkpoint=True),
            )
            self._executor.shutdown(wait=True)

    async def stop(self, drain=False):
        """Stop accepting, close every session cleanly, release pools.

        With *drain* the shutdown is graceful (see :meth:`drain`);
        without, sessions close immediately and un-checkpointed state
        survives only in their WALs.
        """
        if drain:
            await self.drain()
        await self._stop_sweeper()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if not self._closed:
            self._closed = True
            await asyncio.get_running_loop().run_in_executor(
                self._executor, self.registry.close_all
            )
            self._executor.shutdown(wait=True)

    async def _stop_sweeper(self):
        if self._sweeper is not None:
            self._sweeper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._sweeper
            self._sweeper = None

    async def _sweep_loop(self):
        while True:
            await asyncio.sleep(self.config.sweep_interval)
            evicted = await self._in_executor(self.registry.sweep_idle)
            if evicted:
                self.counters["sessions_swept"] += len(evicted)
                for session_id in evicted:
                    self._session_locks.pop(session_id, None)

    # -- plumbing ----------------------------------------------------------

    async def _in_executor(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    def _session_lock(self, session_id):
        lock = self._session_locks.get(session_id)
        if lock is None:
            lock = self._session_locks[session_id] = asyncio.Lock()
        return lock

    def _admit_global(self, tier="work"):
        """Tiered overload shedding: ``create`` sheds at 80% of the
        global queue so established sessions keep service while new
        tenants back off; ``retry_after`` grows with the overload."""
        cap = self.config.global_queue
        if tier == "create" and cap >= 5:
            cap = (cap * 4) // 5
        if self.global_pending >= cap:
            load = self.global_pending / max(1, self.config.global_queue)
            raise AdmissionError(
                f"server at capacity ({self.global_pending} requests "
                f"in flight, {tier} tier admits {cap})",
                retry_after=round(0.05 * (1.0 + load), 3),
            )

    # -- resilience plumbing -----------------------------------------------

    def _breaker_check(self, session_id):
        breaker = self._breakers.get(session_id)
        if breaker is not None:
            breaker.check(session_id, monotonic())

    def _breaker_failure(self, session_id):
        if not isinstance(session_id, str):
            return
        breaker = self._breakers.setdefault(session_id, _CircuitBreaker())
        if breaker.record_failure(self.config.breaker_threshold,
                                  self.config.breaker_cooldown,
                                  monotonic()):
            self.counters["breaker_trips"] += 1

    def _breaker_success(self, session_id):
        breaker = self._breakers.get(session_id)
        if breaker is not None:
            breaker.record_success()

    @staticmethod
    def _request_key(request):
        key = request.get("key")
        if key is None:
            return None
        if not isinstance(key, str) or not key or len(key) > 128:
            raise ServiceError(
                "'key' must be a non-empty string of at most 128 "
                "characters"
            )
        return key

    async def _chaos_kill(self, session_id):
        """Lifecycle fault: tear the session down mid-request."""
        def kill():
            with contextlib.suppress(ServiceError):
                self.registry.close_session(session_id)

        await self._in_executor(kill)
        self._session_locks.pop(session_id, None)
        self.counters["chaos_kills"] += 1

    # -- connection handling ----------------------------------------------

    async def _handle_connection(self, reader, writer):
        self.counters["connections"] += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Oversized line: unrecoverable framing, drop the
                    # connection after telling the client why.
                    self.counters["protocol_errors"] += 1
                    writer.write(encode_line(error_response(
                        None, "protocol",
                        f"request line exceeds {MAX_LINE_BYTES} bytes",
                    )))
                    await writer.drain()
                    break
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    request = protocol.decode_line(stripped)
                except ValueError as error:
                    self.counters["protocol_errors"] += 1
                    writer.write(encode_line(error_response(
                        None, "protocol", f"malformed request: {error}",
                    )))
                    await writer.drain()
                    continue
                await self._dispatch(request, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request, writer):
        request_id = request.get("id")
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if op else None
        self.counters["requests"] += 1
        if handler is None or not str(op).isidentifier():
            self.counters["protocol_errors"] += 1
            await self._send(writer, error_response(
                request_id, "bad_request", f"unknown op {op!r}",
            ))
            return
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is not None:
            try:
                # Anchor the relative deadline at receipt; queue waits
                # and the run watchdog all measure against this instant.
                request["_deadline"] = (
                    monotonic() + float(deadline_ms) / 1000.0
                )
            except (TypeError, ValueError):
                await self._send(writer, error_response(
                    request_id, "bad_request",
                    f"'deadline_ms' must be a number, "
                    f"got {deadline_ms!r}",
                ))
                return
        if self._draining and op not in _CONTROL_OPS:
            self.counters["drain_rejections"] += 1
            await self._send(writer, error_response(
                request_id, "busy", "server is draining",
                retry_after=1.0, draining=True,
            ))
            return
        session_id = (
            request.get("session") if op in _SESSION_OPS else None
        )
        try:
            await handler(request, request_id, writer)
            if session_id is not None:
                self._breaker_success(session_id)
        except DeadlineError as error:
            self.counters["deadline_rejections"] += 1
            await self._send(writer, error_response(
                request_id, "deadline", str(error), retry_after=0.0,
            ))
        except AdmissionError as error:
            self.counters["busy_rejections"] += 1
            await self._send(writer, error_response(
                request_id, "busy", str(error),
                retry_after=error.retry_after,
            ))
        except ServiceError as error:
            code = (
                "no_session" if "no session named" in str(error)
                else "bad_request"
            )
            await self._send(writer, error_response(
                request_id, code, str(error),
            ))
        except (ConnectionResetError, BrokenPipeError):
            raise
        except (WalError, OSError) as error:
            # Transient I/O (ENOSPC on a WAL append, a torn segment):
            # the mutation was rolled back, so the request is safe to
            # retry once the condition clears.
            self.counters["unavailable_errors"] += 1
            self._breaker_failure(session_id)
            await self._send(writer, error_response(
                request_id, "unavailable",
                f"{type(error).__name__}: {error}", retry_after=0.1,
            ))
        except ReproError as error:
            self.counters["engine_errors"] += 1
            self._breaker_failure(session_id)
            await self._send(writer, error_response(
                request_id, "engine",
                f"{type(error).__name__}: {error}",
            ))
        except Exception as error:  # keep the server alive per request
            self.counters["internal_errors"] += 1
            self._breaker_failure(session_id)
            await self._send(writer, error_response(
                request_id, "internal",
                f"{type(error).__name__}: {error}",
            ))

    async def _send(self, writer, obj):
        data = encode_line(obj)
        if self.chaos is not None:
            fault = self.chaos.wire_fault()
            if fault == "delay":
                await asyncio.sleep(self.chaos.delay_seconds())
            elif fault is not None:
                if fault == "partial":
                    writer.write(
                        data[:self.chaos.partial_prefix(len(data))]
                    )
                    with contextlib.suppress(Exception):
                        await writer.drain()
                writer.close()
                raise ConnectionResetError(f"chaos wire fault: {fault}")
        writer.write(data)
        await writer.drain()

    async def _with_session(self, request, fn):
        """Admit, check out, lock, and run ``fn(session)`` on the
        executor.

        Checkout (lookup + per-session admission + the ``pending``
        claim) is atomic under the registry lock, so the sweeper and
        LRU evictor can never checkpoint this session out from under
        an admitted request; a request that loses the race gets a
        clean ``no_session`` before any work happens.
        """
        session_id = request.get("session")
        if not isinstance(session_id, str):
            raise ServiceError("request needs a 'session' field")
        self._breaker_check(session_id)
        self._admit_global()
        if self.chaos is not None and self.chaos.should_kill_session():
            await self._chaos_kill(session_id)
            raise ServiceError(
                f"no session named {session_id!r} (killed by chaos)"
            )
        session = self.registry.checkout(
            session_id, self.config.session_queue
        )
        self.global_pending += 1
        try:
            async with self._session_lock(session_id):
                deadline = request.get("_deadline")
                if deadline is not None and monotonic() >= deadline:
                    raise DeadlineError(
                        f"deadline expired while the request for "
                        f"session {session_id!r} was queued"
                    )
                if session.closed:
                    # A close op slipped in while we waited on the lock.
                    raise ServiceError(
                        f"no session named {session_id!r}"
                    )
                session.requests += 1
                return await self._in_executor(fn, session)
        finally:
            self.global_pending -= 1
            self.registry.checkin(session)

    # -- ops ---------------------------------------------------------------

    async def _op_ping(self, request, request_id, writer):
        await self._send(writer, ok_response(
            request_id, pong=True, protocol=PROTOCOL_VERSION,
        ))

    async def _op_health(self, request, request_id, writer):
        """Readiness/liveness for load balancers and drain orchestration
        — never shed, served even while draining."""
        await self._send(writer, ok_response(
            request_id,
            healthy=True,
            ready=self._server is not None and not self._draining,
            draining=self._draining,
            sessions=len(self.registry),
            pending=self.global_pending,
            open_breakers=sum(
                1 for b in self._breakers.values() if b.is_open
            ),
            protocol=PROTOCOL_VERSION,
        ))

    async def _op_create(self, request, request_id, writer):
        program = request.get("program", "")
        resume = bool(request.get("resume", False))
        if not isinstance(program, str) or (not program and not resume):
            raise ServiceError("create needs a 'program' string")
        session_id = request.get("session")
        if not isinstance(session_id, str):
            raise ServiceError("create needs a 'session' field")
        key = self._request_key(request)
        self._breaker_check(session_id)
        self._admit_global(tier="create")
        self.global_pending += 1
        try:
            session, hit = await self._in_executor(
                lambda: self.registry.create(
                    session_id, program,
                    matcher=request.get("matcher"),
                    kernels=request.get("kernels"),
                    backend=request.get("backend"),
                    strategy=request.get("strategy"),
                    on_error=request.get("on_error"),
                    durable=bool(request.get("durable", True)),
                    resume=resume,
                    workers=request.get("workers"),
                    key=key,
                )
            )
        finally:
            self.global_pending -= 1
        deduped = hit == "deduped"
        if deduped:
            self.counters["deduped_requests"] += 1
        else:
            self.counters["sessions_created"] += 1
            if hit:
                self.counters["rulebase_hits"] += 1
        await self._send(writer, ok_response(
            request_id,
            session=session.id,
            rulebase_hit=bool(hit) and not deduped,
            resumed=session.resumed,
            rules=len(session.engine.rules),
            wm_size=len(session.engine.wm),
            durable=session.wal_dir is not None,
            **({"deduped": True} if deduped else {}),
        ))

    @staticmethod
    def _validate_facts(raw):
        if not isinstance(raw, list):
            raise ServiceError("'facts' must be a list of "
                               "[class, {attribute: value}] pairs")
        pairs = []
        for entry in raw:
            if (not isinstance(entry, (list, tuple)) or len(entry) != 2
                    or not isinstance(entry[0], str)
                    or not isinstance(entry[1], dict)):
                raise ServiceError(
                    f"bad fact entry {entry!r}: expected "
                    f"[class, {{attribute: value}}]"
                )
            pairs.append((entry[0], entry[1]))
        return pairs

    async def _op_assert(self, request, request_id, writer):
        pairs = self._validate_facts(request.get("facts"))
        key = self._request_key(request)
        journal_limit = self.config.journal_limit

        def ingest(session):
            return session.ingest_facts(
                pairs, key=key, journal_limit=journal_limit
            )

        response, deduped = await self._with_session(request, ingest)
        if deduped:
            self.counters["deduped_requests"] += 1
            response = dict(response, deduped=True)
        else:
            self.counters["facts_ingested"] += response.get("ingested", 0)
        await self._send(writer, ok_response(request_id, **response))

    async def _op_run(self, request, request_id, writer):
        limit = request.get("limit")
        wall_clock = request.get("wall_clock")
        parallel = bool(request.get("parallel", False))
        key = self._request_key(request)
        journal_limit = self.config.journal_limit
        deadline = request.get("_deadline")
        cap_limit = self.config.run_limit
        cap_clock = self.config.run_wall_clock
        limit = cap_limit if limit is None else min(int(limit), cap_limit)
        wall_clock = (
            cap_clock if wall_clock is None
            else min(float(wall_clock), cap_clock)
        )

        def execute(session):
            engine = session.engine
            if key is not None:
                cached = engine.request_journal.get(key)
                if cached is not None:
                    session.deduped += 1
                    return None, dict(cached)
            derived = []
            engine.wm.attach(derived.append)
            try:
                if parallel:
                    result = engine.run_parallel(
                        firing_budget=limit, wall_clock=wall_clock,
                        deadline=deadline,
                    )
                    fired = result.fired
                else:
                    fired = engine.run(
                        limit, wall_clock=wall_clock, deadline=deadline,
                    )
            finally:
                engine.wm.detach(derived.append)
            # The trace's new home is the response stream: drain it so
            # a long-lived session's memory stays bounded per-request.
            records = list(engine.tracer.firings)
            engine.tracer.firings.clear()
            outputs = list(engine.tracer.output)
            engine.tracer.output.clear()
            session.firings += fired
            report = engine.last_run_report
            summary = {
                "fired": fired,
                "halted": engine.halted,
                "stopped": getattr(report, "reason", None),
                "wm_size": len(engine.wm),
                "conflict_set": len(engine.conflict_set),
            }
            if key is not None:
                journal_put(engine, key, summary, journal_limit)
                if engine.durability is not None:
                    # Best-effort durable journal entry: if this append
                    # fails, the in-memory entry still dedups retries
                    # on the live session, and after a crash the WAL's
                    # refraction replay makes a re-run fire nothing new.
                    with contextlib.suppress(WalError, OSError):
                        engine.durability.log_request(key, summary)
            return (records, outputs, derived), summary

        events, summary = await self._with_session(request, execute)
        if events is None:
            self.counters["deduped_requests"] += 1
            await self._send(writer, ok_response(
                request_id, deduped=True, **summary,
            ))
            return
        records, outputs, derived = events
        self.counters["firings"] += summary["fired"]
        for record in records:
            await self._send(writer, firing_event(request_id, record))
        for text in outputs:
            await self._send(writer, event_line(
                request_id, "write", text=text,
            ))
        for event in derived:
            await self._send(writer, fact_event(
                request_id, event.sign, event.wme,
            ))
        await self._send(writer, ok_response(request_id, **summary))

    async def _op_facts(self, request, request_id, writer):
        wme_class = request.get("class")

        def dump(session):
            wm = session.engine.wm
            wmes = (
                wm.of_class(wme_class) if wme_class else list(wm)
            )
            return [(w.wme_class, w.time_tag, w.as_dict()) for w in wmes]

        rows = await self._with_session(request, dump)
        for wme_class_, tag, values in rows:
            await self._send(writer, event_line(
                request_id, "fact", sign="+",
                **{"class": wme_class_}, tag=tag, values=values,
            ))
        await self._send(writer, ok_response(request_id, count=len(rows)))

    # -- runtime rule surgery ----------------------------------------------
    #
    # Hot reload without restarting the tenant: the engine performs the
    # surgery (WAL-logging it so recovery replays the reload in order),
    # and the session re-keys onto a copy-on-write fork of its shared
    # rule base — untouched tenants keep sharing the parent entry and
    # its kernel pack, so a reload shared by N tenants compiles each
    # genuinely new alpha/join/scan chain exactly once.

    async def _surgery(self, request, request_id, writer, action,
                       counter, *, source=None, rule_name=None):
        key = self._request_key(request)
        journal_limit = self.config.journal_limit

        def operate(session):
            return session.rule_surgery(
                action, source=source, rule_name=rule_name, key=key,
                journal_limit=journal_limit, rule_bases=self.rule_bases,
            )

        response, deduped = await self._with_session(request, operate)
        if deduped:
            self.counters["deduped_requests"] += 1
            response = dict(response, deduped=True)
        else:
            self.counters[counter] += 1
            if response.get("forked"):
                self.counters["rulebase_forks"] += 1
        await self._send(writer, ok_response(request_id, **response))

    @staticmethod
    def _rule_source(request, op):
        source = request.get("source")
        if not isinstance(source, str) or not source.strip():
            raise ServiceError(f"{op} needs a 'source' rule string")
        return source

    @staticmethod
    def _rule_name(request, op):
        rule_name = request.get("rule")
        if not isinstance(rule_name, str) or not rule_name:
            raise ServiceError(f"{op} needs a 'rule' name")
        return rule_name

    async def _op_add_rule(self, request, request_id, writer):
        await self._surgery(
            request, request_id, writer, "add", "rules_added",
            source=self._rule_source(request, "add_rule"),
        )

    async def _op_remove_rule(self, request, request_id, writer):
        await self._surgery(
            request, request_id, writer, "remove", "rules_removed",
            rule_name=self._rule_name(request, "remove_rule"),
        )

    async def _op_replace_rule(self, request, request_id, writer):
        await self._surgery(
            request, request_id, writer, "replace", "rules_replaced",
            source=self._rule_source(request, "replace_rule"),
            rule_name=self._rule_name(request, "replace_rule"),
        )

    async def _op_checkpoint(self, request, request_id, writer):
        def checkpoint(session):
            if session.engine.durability is None:
                raise ServiceError(
                    f"session {session.id!r} is not durable "
                    f"(server has no wal_root, or created with "
                    f"durable=false)"
                )
            return session.engine.checkpoint()

        path = await self._with_session(request, checkpoint)
        self.counters["checkpoints"] += 1
        await self._send(writer, ok_response(request_id, path=str(path)))

    async def _op_close(self, request, request_id, writer):
        session_id = request.get("session")
        if not isinstance(session_id, str):
            raise ServiceError("close needs a 'session' field")
        checkpoint = bool(request.get("checkpoint", False))
        await self._in_executor(
            lambda: self.registry.close_session(
                session_id, checkpoint=checkpoint
            )
        )
        self._session_locks.pop(session_id, None)
        self._breakers.pop(session_id, None)
        self.counters["sessions_closed"] += 1
        await self._send(writer, ok_response(
            request_id, closed=session_id,
        ))

    async def _op_stats(self, request, request_id, writer):
        await self._send(writer, ok_response(
            request_id,
            server=dict(self.counters),
            pending=self.global_pending,
            draining=self._draining,
            registry=self.registry.stats(),
            rule_bases=self.rule_bases.stats(),
            sessions=[s.info() for s in self.registry.sessions()],
            breakers={
                "open": sum(
                    1 for b in self._breakers.values() if b.is_open
                ),
                "tracked": len(self._breakers),
            },
            **(
                {"chaos": self.chaos.stats()}
                if self.chaos is not None else {}
            ),
        ))


class ServiceThread:
    """A :class:`RuleService` on a background thread (tests, benches,
    and the load generator's self-serve mode).

    ::

        with ServiceThread(ServiceConfig(port=0)) as server:
            client = ServiceClient(*server.address)
            ...
    """

    def __init__(self, config=None):
        self.config = config if config is not None else ServiceConfig()
        self.service = None
        self.address = None
        self._thread = None
        self._loop = None
        self._stop_event = None
        self._ready = threading.Event()
        self._error = None

    def start(self):
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServiceError("service thread did not start in time")
        if self._error is not None:
            raise self._error
        return self

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.service = RuleService(self.config)
        try:
            await self.service.start()
            self.address = self.service.address
        except Exception as error:  # surface bind failures to start()
            self._error = error
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.service.stop()

    def begin_drain(self, timeout=30):
        """Enter drain mode from the caller's thread."""
        future = asyncio.run_coroutine_threadsafe(
            self.service.begin_drain(), self._loop
        )
        return future.result(timeout=timeout)

    def drain(self, grace=None, timeout=60):
        """Graceful shutdown from the caller's thread (see
        :meth:`RuleService.drain`); the thread itself keeps running
        until :meth:`stop`."""
        future = asyncio.run_coroutine_threadsafe(
            self.service.drain(grace), self._loop
        )
        return future.result(timeout=timeout)

    def stop(self):
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
        return self

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()
