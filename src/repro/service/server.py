"""The rule service: a long-lived, multi-tenant engine server.

:class:`RuleService` is an asyncio front end over the embedded engine:
clients connect over TCP, speak the NDJSON protocol
(:mod:`repro.service.protocol`), and drive per-session
:class:`~repro.engine.engine.RuleEngine` instances owned by a
:class:`~repro.service.session.SessionRegistry`.  Engine work —
parsing, matching, firing, checkpointing — is synchronous Python, so
every engine call runs on a bounded :class:`ThreadPoolExecutor` while
the event loop keeps accepting connections; a per-session asyncio lock
serialises each tenant's requests (the engine is not reentrant), and
fact batches ingest through ``load_facts`` so all service traffic
rides the batched propagation path.

**Admission control.**  Two bounded queues implement backpressure: a
global in-flight cap (``global_queue``) and a per-session pending cap
(``session_queue``).  A request arriving past either is rejected
immediately with a ``busy`` response carrying ``retry_after`` — the
server never buffers unbounded work, it tells the client to back off
(load shedding at the edge, the only stable answer once the executor
saturates).

**Watchdogs.**  Every ``run`` is guarded by the reliability layer's
firing limit and wall-clock budget, capped at the server's configured
maximums — a tenant may ask for less, never more — so one runaway
program cannot monopolise an executor thread.

See ``docs/SERVICE.md`` for the operator-facing story.
"""

from __future__ import annotations

import asyncio
import threading
from collections import Counter
from concurrent.futures import ThreadPoolExecutor

from repro.errors import AdmissionError, ReproError, ServiceError
from repro.service import protocol
from repro.service.rulebase import RuleBaseCache
from repro.service.session import SessionRegistry
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    encode_line,
    error_response,
    event_line,
    fact_event,
    firing_event,
    ok_response,
)


class ServiceConfig:
    """Configuration for one :class:`RuleService`.

    *host*/*port* — bind address (port 0 picks an ephemeral port);
    *wal_root* — per-session WAL directories live under it (None
    disables durability);
    *fsync* — the sessions' WAL fsync policy;
    *matcher*/*kernels*/*backend*/*strategy*/*on_error* — per-session
    defaults a ``create`` may override;
    *max_sessions*/*idle_ttl*/*sweep_interval* — registry sizing and
    the idle-eviction cadence (seconds);
    *session_queue*/*global_queue* — admission bounds (pending
    requests per session / server-wide);
    *engine_workers* — executor threads running engine calls;
    *run_limit*/*run_wall_clock* — per-request watchdog caps;
    *trace_limit* — per-session tracer ring bound.
    """

    __slots__ = ("host", "port", "wal_root", "fsync", "matcher",
                 "kernels", "backend", "strategy", "on_error",
                 "max_sessions", "idle_ttl", "sweep_interval",
                 "session_queue", "global_queue", "engine_workers",
                 "run_limit", "run_wall_clock", "trace_limit")

    def __init__(self, host="127.0.0.1", port=0, wal_root=None,
                 fsync="batch", matcher="rete", kernels=None,
                 backend=None, strategy="lex", on_error="halt",
                 max_sessions=256, idle_ttl=300.0, sweep_interval=5.0,
                 session_queue=16, global_queue=128, engine_workers=4,
                 run_limit=10_000, run_wall_clock=30.0,
                 trace_limit=10_000):
        self.host = host
        self.port = port
        self.wal_root = wal_root
        self.fsync = fsync
        self.matcher = matcher
        self.kernels = kernels
        self.backend = backend
        self.strategy = strategy
        self.on_error = on_error
        self.max_sessions = max_sessions
        self.idle_ttl = idle_ttl
        self.sweep_interval = sweep_interval
        self.session_queue = session_queue
        self.global_queue = global_queue
        self.engine_workers = engine_workers
        self.run_limit = run_limit
        self.run_wall_clock = run_wall_clock
        self.trace_limit = trace_limit


class RuleService:
    """The server: connection handling, admission, dispatch."""

    def __init__(self, config=None):
        self.config = config if config is not None else ServiceConfig()
        self.rule_bases = RuleBaseCache()
        self.registry = SessionRegistry(
            self.rule_bases,
            wal_root=self.config.wal_root,
            fsync=self.config.fsync,
            max_sessions=self.config.max_sessions,
            idle_ttl=self.config.idle_ttl,
            default_matcher=self.config.matcher,
            default_kernels=self.config.kernels,
            default_backend=self.config.backend,
            default_strategy=self.config.strategy,
            default_on_error=self.config.on_error,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.engine_workers,
            thread_name_prefix="repro-service",
        )
        self._session_locks = {}
        self.global_pending = 0
        self.counters = Counter()
        self._server = None
        self._sweeper = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self):
        """Bind and start accepting connections (returns immediately)."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE_BYTES,
        )
        if self.config.sweep_interval and self.config.idle_ttl:
            self._sweeper = asyncio.create_task(self._sweep_loop())
        return self

    @property
    def address(self):
        """``(host, port)`` actually bound (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("service is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self):
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self):
        """Stop accepting, close every session cleanly, release pools."""
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
            self._sweeper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await asyncio.get_running_loop().run_in_executor(
            self._executor, self.registry.close_all
        )
        self._executor.shutdown(wait=True)

    async def _sweep_loop(self):
        while True:
            await asyncio.sleep(self.config.sweep_interval)
            evicted = await self._in_executor(self.registry.sweep_idle)
            if evicted:
                self.counters["sessions_swept"] += len(evicted)
                for session_id in evicted:
                    self._session_locks.pop(session_id, None)

    # -- plumbing ----------------------------------------------------------

    async def _in_executor(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    def _session_lock(self, session_id):
        lock = self._session_locks.get(session_id)
        if lock is None:
            lock = self._session_locks[session_id] = asyncio.Lock()
        return lock

    def _admit_global(self):
        if self.global_pending >= self.config.global_queue:
            self.counters["busy_rejections"] += 1
            raise AdmissionError(
                f"server at capacity ({self.config.global_queue} "
                f"requests in flight)",
                retry_after=0.05,
            )

    def _admit(self, session):
        """Admission check for one session-scoped request."""
        self._admit_global()
        if session.pending >= self.config.session_queue:
            self.counters["busy_rejections"] += 1
            raise AdmissionError(
                f"session {session.id!r} queue full "
                f"({self.config.session_queue} pending)",
                retry_after=0.05,
            )

    # -- connection handling ----------------------------------------------

    async def _handle_connection(self, reader, writer):
        self.counters["connections"] += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Oversized line: unrecoverable framing, drop the
                    # connection after telling the client why.
                    self.counters["protocol_errors"] += 1
                    writer.write(encode_line(error_response(
                        None, "protocol",
                        f"request line exceeds {MAX_LINE_BYTES} bytes",
                    )))
                    await writer.drain()
                    break
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    request = protocol.decode_line(stripped)
                except ValueError as error:
                    self.counters["protocol_errors"] += 1
                    writer.write(encode_line(error_response(
                        None, "protocol", f"malformed request: {error}",
                    )))
                    await writer.drain()
                    continue
                await self._dispatch(request, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request, writer):
        request_id = request.get("id")
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if op else None
        self.counters["requests"] += 1
        if handler is None or not str(op).isidentifier():
            self.counters["protocol_errors"] += 1
            await self._send(writer, error_response(
                request_id, "bad_request", f"unknown op {op!r}",
            ))
            return
        try:
            await handler(request, request_id, writer)
        except AdmissionError as error:
            await self._send(writer, error_response(
                request_id, "busy", str(error),
                retry_after=error.retry_after,
            ))
        except ServiceError as error:
            code = (
                "no_session" if "no session named" in str(error)
                else "bad_request"
            )
            await self._send(writer, error_response(
                request_id, code, str(error),
            ))
        except ReproError as error:
            self.counters["engine_errors"] += 1
            await self._send(writer, error_response(
                request_id, "engine",
                f"{type(error).__name__}: {error}",
            ))
        except (ConnectionResetError, BrokenPipeError):
            raise
        except Exception as error:  # keep the server alive per request
            self.counters["internal_errors"] += 1
            await self._send(writer, error_response(
                request_id, "internal",
                f"{type(error).__name__}: {error}",
            ))

    async def _send(self, writer, obj):
        writer.write(encode_line(obj))
        await writer.drain()

    def _checked_out(self, session_id):
        """The session, re-validated under its lock (eviction race)."""
        session = self.registry.get(session_id)
        if session.closed:
            raise ServiceError(f"no session named {session_id!r}")
        return session

    async def _with_session(self, request, fn):
        """Admit, lock, and run ``fn(session)`` on the executor."""
        session_id = request.get("session")
        if not isinstance(session_id, str):
            raise ServiceError("request needs a 'session' field")
        session = self.registry.get(session_id)
        self._admit(session)
        session.pending += 1
        self.global_pending += 1
        try:
            async with self._session_lock(session_id):
                session = self._checked_out(session_id)
                session.requests += 1
                return await self._in_executor(fn, session)
        finally:
            session.pending -= 1
            self.global_pending -= 1
            session.touch()

    # -- ops ---------------------------------------------------------------

    async def _op_ping(self, request, request_id, writer):
        await self._send(writer, ok_response(
            request_id, pong=True, protocol=PROTOCOL_VERSION,
        ))

    async def _op_create(self, request, request_id, writer):
        program = request.get("program", "")
        resume = bool(request.get("resume", False))
        if not isinstance(program, str) or (not program and not resume):
            raise ServiceError("create needs a 'program' string")
        session_id = request.get("session")
        if not isinstance(session_id, str):
            raise ServiceError("create needs a 'session' field")
        self._admit_global()
        self.global_pending += 1
        try:
            session, hit = await self._in_executor(
                lambda: self.registry.create(
                    session_id, program,
                    matcher=request.get("matcher"),
                    kernels=request.get("kernels"),
                    backend=request.get("backend"),
                    strategy=request.get("strategy"),
                    on_error=request.get("on_error"),
                    durable=bool(request.get("durable", True)),
                    resume=resume,
                    workers=request.get("workers"),
                )
            )
        finally:
            self.global_pending -= 1
        self.counters["sessions_created"] += 1
        if hit:
            self.counters["rulebase_hits"] += 1
        await self._send(writer, ok_response(
            request_id,
            session=session.id,
            rulebase_hit=hit,
            resumed=session.resumed,
            rules=len(session.engine.rules),
            wm_size=len(session.engine.wm),
            durable=session.wal_dir is not None,
        ))

    @staticmethod
    def _validate_facts(raw):
        if not isinstance(raw, list):
            raise ServiceError("'facts' must be a list of "
                               "[class, {attribute: value}] pairs")
        pairs = []
        for entry in raw:
            if (not isinstance(entry, (list, tuple)) or len(entry) != 2
                    or not isinstance(entry[0], str)
                    or not isinstance(entry[1], dict)):
                raise ServiceError(
                    f"bad fact entry {entry!r}: expected "
                    f"[class, {{attribute: value}}]"
                )
            pairs.append((entry[0], entry[1]))
        return pairs

    async def _op_assert(self, request, request_id, writer):
        pairs = self._validate_facts(request.get("facts"))

        def ingest(session):
            made = session.engine.load_facts(pairs)
            session.facts_ingested += len(made)
            return len(made), len(session.engine.wm)

        ingested, wm_size = await self._with_session(request, ingest)
        self.counters["facts_ingested"] += ingested
        await self._send(writer, ok_response(
            request_id, ingested=ingested, wm_size=wm_size,
        ))

    async def _op_run(self, request, request_id, writer):
        limit = request.get("limit")
        wall_clock = request.get("wall_clock")
        parallel = bool(request.get("parallel", False))
        cap_limit = self.config.run_limit
        cap_clock = self.config.run_wall_clock
        limit = cap_limit if limit is None else min(int(limit), cap_limit)
        wall_clock = (
            cap_clock if wall_clock is None
            else min(float(wall_clock), cap_clock)
        )

        def execute(session):
            engine = session.engine
            derived = []
            engine.wm.attach(derived.append)
            try:
                if parallel:
                    result = engine.run_parallel(
                        firing_budget=limit, wall_clock=wall_clock,
                    )
                    fired = result.fired
                else:
                    fired = engine.run(limit, wall_clock=wall_clock)
            finally:
                engine.wm.detach(derived.append)
            # The trace's new home is the response stream: drain it so
            # a long-lived session's memory stays bounded per-request.
            records = list(engine.tracer.firings)
            engine.tracer.firings.clear()
            outputs = list(engine.tracer.output)
            engine.tracer.output.clear()
            session.firings += fired
            report = engine.last_run_report
            return fired, records, outputs, derived, report, engine

        fired, records, outputs, derived, report, engine = (
            await self._with_session(request, execute)
        )
        self.counters["firings"] += fired
        for record in records:
            await self._send(writer, firing_event(request_id, record))
        for text in outputs:
            await self._send(writer, event_line(
                request_id, "write", text=text,
            ))
        for event in derived:
            await self._send(writer, fact_event(
                request_id, event.sign, event.wme,
            ))
        await self._send(writer, ok_response(
            request_id,
            fired=fired,
            halted=engine.halted,
            stopped=getattr(report, "reason", None),
            wm_size=len(engine.wm),
            conflict_set=len(engine.conflict_set),
        ))

    async def _op_facts(self, request, request_id, writer):
        wme_class = request.get("class")

        def dump(session):
            wm = session.engine.wm
            wmes = (
                wm.of_class(wme_class) if wme_class else list(wm)
            )
            return [(w.wme_class, w.time_tag, w.as_dict()) for w in wmes]

        rows = await self._with_session(request, dump)
        for wme_class_, tag, values in rows:
            await self._send(writer, event_line(
                request_id, "fact", sign="+",
                **{"class": wme_class_}, tag=tag, values=values,
            ))
        await self._send(writer, ok_response(request_id, count=len(rows)))

    async def _op_checkpoint(self, request, request_id, writer):
        def checkpoint(session):
            if session.engine.durability is None:
                raise ServiceError(
                    f"session {session.id!r} is not durable "
                    f"(server has no wal_root, or created with "
                    f"durable=false)"
                )
            return session.engine.checkpoint()

        path = await self._with_session(request, checkpoint)
        self.counters["checkpoints"] += 1
        await self._send(writer, ok_response(request_id, path=str(path)))

    async def _op_close(self, request, request_id, writer):
        session_id = request.get("session")
        if not isinstance(session_id, str):
            raise ServiceError("close needs a 'session' field")
        checkpoint = bool(request.get("checkpoint", False))
        await self._in_executor(
            lambda: self.registry.close_session(
                session_id, checkpoint=checkpoint
            )
        )
        self._session_locks.pop(session_id, None)
        self.counters["sessions_closed"] += 1
        await self._send(writer, ok_response(
            request_id, closed=session_id,
        ))

    async def _op_stats(self, request, request_id, writer):
        await self._send(writer, ok_response(
            request_id,
            server=dict(self.counters),
            pending=self.global_pending,
            registry=self.registry.stats(),
            rule_bases=self.rule_bases.stats(),
            sessions=[s.info() for s in self.registry.sessions()],
        ))


class ServiceThread:
    """A :class:`RuleService` on a background thread (tests, benches,
    and the load generator's self-serve mode).

    ::

        with ServiceThread(ServiceConfig(port=0)) as server:
            client = ServiceClient(*server.address)
            ...
    """

    def __init__(self, config=None):
        self.config = config if config is not None else ServiceConfig()
        self.service = None
        self.address = None
        self._thread = None
        self._loop = None
        self._stop_event = None
        self._ready = threading.Event()
        self._error = None

    def start(self):
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServiceError("service thread did not start in time")
        if self._error is not None:
            raise self._error
        return self

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.service = RuleService(self.config)
        try:
            await self.service.start()
            self.address = self.service.address
        except Exception as error:  # surface bind failures to start()
            self._error = error
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.service.stop()

    def stop(self):
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
        return self

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()
