"""A blocking NDJSON client for the rule service, with retry semantics.

:class:`ServiceClient` is deliberately small — a socket, a buffered
line reader, and one method per protocol op — because it is what the
tests, the load generator, and the differential harness all drive the
server with.  It raises :class:`ServiceClientError` for any non-``ok``
terminal response *except* ``busy``, which raises
:class:`ServiceBusyError` carrying ``retry_after`` so callers can
implement backoff (``retry=True`` on the op methods does it for you).

Resilience semantics (``retry=True``):

* **Retryable responses** — ``busy``, ``deadline``, and
  ``unavailable`` mean "not applied, try again"; the client sleeps a
  jittered multiple of the server's ``retry_after`` hint and resends.
* **Connection failures** — a stale socket (server restarted), EOF
  mid-stream (injected disconnect), or a torn line reconnects
  transparently and resends *when that is safe*: always if the request
  never finished sending (the server only processes complete lines),
  and for completed sends only if the op is non-mutating or carries an
  idempotency ``key`` — an ambiguous mutating request without a key is
  surfaced to the caller rather than risking double application.
  Reconnect-path retries use jittered exponential backoff (there is no
  server hint to honour).
* **Budgets** — both a retry-count budget (*max_retries*) and a time
  budget (*retry_budget_s*) bound the total effort; whichever runs out
  first lets the last error escape.
* **Idempotency keys** — pass ``idempotent=True`` to a mutating op (or
  an explicit ``key=``) and the client attaches a unique key that
  stays fixed across retries, upgrading ambiguous-failure retries to
  exactly-once: the server answers a duplicate from its WAL-backed
  journal (response carries ``deduped: true``).  Keys are opt-in so a
  keyless client's WAL stream is byte-identical to an embedded
  engine's.

Streaming ops (``run``, ``facts``) collect the event lines that
precede the terminal response and return them alongside it; retries
clear and refill the event list (a deduplicated retry streams none).
"""

from __future__ import annotations

import os
import random
import socket
import time

from repro.service.protocol import (
    MAX_LINE_BYTES,
    RETRYABLE_CODES,
    decode_line,
    encode_line,
)

#: Ops that mutate session state; everything else can always be
#: resent after an ambiguous connection failure.
MUTATING_OPS = frozenset({"create", "assert", "run", "close",
                          "add_rule", "remove_rule", "replace_rule"})


class ServiceClientError(RuntimeError):
    """A terminal error response from the server."""

    def __init__(self, response):
        self.response = response
        self.code = response.get("error", "internal")
        super().__init__(
            f"[{self.code}] {response.get('message', 'unknown error')}"
        )

    @property
    def retry_after(self):
        return float(self.response.get("retry_after", 0.05))


class ServiceBusyError(ServiceClientError):
    """The server shed this request; retry after ``retry_after``
    (inherited from :class:`ServiceClientError`)."""


class AmbiguousRequestError(ServiceClientError):
    """The connection died after a mutating request was fully sent and
    before its terminal response arrived: the server may or may not
    have applied it.  Retry with an idempotency key (``idempotent=True``)
    to make this case safe, or reconcile out of band."""

    def __init__(self, op, cause):
        self.op = op
        self.cause = cause
        RuntimeError.__init__(
            self,
            f"connection lost mid-{op}; the request may or may not "
            f"have been applied ({cause}) — retry with an idempotency "
            f"key for exactly-once semantics"
        )
        self.response = {}
        self.code = "ambiguous"


class ServiceClient:
    """One connection to a :class:`~repro.service.server.RuleService`."""

    def __init__(self, host, port, timeout=30.0, *, max_retries=50,
                 retry_budget_s=30.0, backoff_base=0.02,
                 backoff_max=1.0, auto_reconnect=True, seed=None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries = max_retries
        self.retry_budget_s = retry_budget_s
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.auto_reconnect = auto_reconnect
        self._rng = random.Random(seed)
        self._sock = None
        self._reader = None
        self._next_id = 0
        self._key_counter = 0
        self._key_prefix = f"c{os.getpid():x}-{id(self) & 0xFFFFFF:x}"
        #: Total seconds slept honouring backpressure and backoff.
        self.backoff_s = 0.0
        self.busy_retries = 0
        #: Successful reconnects after a connection failure.
        self.reconnects = 0
        #: Resends after connection failures / retryable errors
        #: (``busy`` retries are counted separately).
        self.retries = 0
        #: Responses answered from the server's idempotency journal.
        self.deduped = 0
        self._connect()

    # -- connection management --------------------------------------------

    def _connect(self):
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        try:
            reader = sock.makefile("rb")
        except BaseException:
            sock.close()
            raise
        self._sock = sock
        self._reader = reader

    def _disconnect(self):
        reader, sock = self._reader, self._sock
        self._reader = None
        self._sock = None
        for handle in (reader, sock):
            if handle is not None:
                try:
                    handle.close()
                except OSError:
                    pass

    def _ensure_connected(self):
        if self._sock is None:
            self._connect()
            self.reconnects += 1

    def close(self):
        self._disconnect()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- plumbing ----------------------------------------------------------

    def _read_line(self):
        line = self._reader.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ConnectionError("server closed the connection")
        if not line.endswith(b"\n"):
            # A torn write: the server (or the chaos layer) dropped the
            # connection mid-line.  Never parse a partial line.
            raise ConnectionError("connection closed mid-line")
        return decode_line(line)

    def new_key(self):
        """A fresh idempotency key, unique within this process."""
        self._key_counter += 1
        return f"{self._key_prefix}-{self._key_counter}"

    def _sleep_backoff(self, delay):
        delay = min(delay, self.backoff_max) * (
            0.5 + self._rng.random() / 2
        )
        self.backoff_s += delay
        time.sleep(delay)

    def request(self, op, *, events=None, retry=False, max_retries=None,
                key=None, idempotent=False, deadline_ms=None, **fields):
        """Send one request; return the terminal response object.

        *events*, if a list, collects the event lines streamed before
        the terminal response.  *retry* resends through retryable
        error responses (``busy``/``deadline``/``unavailable``,
        honouring their ``retry_after``) within the retry budgets.
        Connection failures reconnect and resend independently of
        *retry* whenever resending is safe (see the module docstring).
        *idempotent* attaches a fresh idempotency key (fixed across
        this call's retries) to a mutating op; *key* supplies one
        explicitly.  *deadline_ms* asks the server to abandon the
        request if still queued after that many milliseconds.
        """
        if key is None and idempotent and op in MUTATING_OPS:
            key = self.new_key()
        budget = self.max_retries if max_retries is None else max_retries
        attempts = 0
        reconnect_attempts = 0
        started = time.monotonic()

        def spend(kind):
            nonlocal attempts
            attempts += 1
            if attempts > budget:
                return False
            if time.monotonic() - started > self.retry_budget_s:
                return False
            if events is not None:
                events.clear()
            return True

        while True:
            sent = False
            try:
                sent_flag = []
                response = self._request_once(
                    op, events=events, key=key, deadline_ms=deadline_ms,
                    sent_flag=sent_flag, **fields
                )
                if response.get("deduped"):
                    self.deduped += 1
                return response
            except ServiceBusyError as busy:
                if not retry or not spend("busy"):
                    raise
                self.busy_retries += 1
                self._sleep_backoff(max(busy.retry_after, 0.005))
            except ServiceClientError as error:
                if (error.code not in RETRYABLE_CODES or not retry
                        or not spend("retryable")):
                    raise
                self.retries += 1
                self._sleep_backoff(max(error.retry_after, 0.005))
            except (ConnectionError, socket.timeout, OSError) as error:
                sent = bool(sent_flag)
                self._disconnect()
                if not self.auto_reconnect:
                    raise
                # A fully-sent mutating request may have been applied
                # before the connection died; only a key (or a
                # non-mutating op) makes resending safe.
                if sent and op in MUTATING_OPS and key is None:
                    raise AmbiguousRequestError(op, error) from error
                if not spend("reconnect"):
                    raise
                self.retries += 1
                self._sleep_backoff(
                    self.backoff_base * (2 ** min(attempts, 10))
                )

    def _request_once(self, op, *, events=None, key=None,
                      deadline_ms=None, sent_flag=None, **fields):
        self._ensure_connected()
        self._next_id += 1
        request_id = self._next_id
        payload = {"op": op, "id": request_id}
        if key is not None:
            payload["key"] = key
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        payload.update(
            (k, v) for k, v in fields.items() if v is not None
        )
        self._sock.sendall(encode_line(payload))
        if sent_flag is not None:
            # sendall either delivered every byte (including the
            # trailing newline) or raised — so reaching this point
            # means the server can have processed the request and the
            # failure mode from here on is ambiguous.
            sent_flag.append(True)
        while True:
            line = self._read_line()
            if "event" in line:
                if events is not None:
                    events.append(line)
                continue
            if line.get("ok"):
                return line
            if line.get("error") == "busy":
                raise ServiceBusyError(line)
            raise ServiceClientError(line)

    # -- ops ---------------------------------------------------------------

    def ping(self):
        return self.request("ping")

    def health(self):
        """The server's readiness/drain state (never load-shed)."""
        return self.request("health")

    def create(self, session, program, *, matcher=None, kernels=None,
               backend=None, strategy=None, on_error=None, durable=True,
               resume=False, workers=None, retry=False, key=None,
               idempotent=False, deadline_ms=None):
        return self.request(
            "create", session=session, program=program, matcher=matcher,
            kernels=kernels, backend=backend, strategy=strategy,
            on_error=on_error, durable=durable, resume=resume or None,
            workers=workers, retry=retry, key=key,
            idempotent=idempotent, deadline_ms=deadline_ms,
        )

    def assert_facts(self, session, facts, *, retry=False, key=None,
                     idempotent=False, deadline_ms=None):
        """*facts* is a list of ``(wme_class, {attribute: value})``."""
        return self.request(
            "assert", session=session,
            facts=[[c, dict(v)] for c, v in facts], retry=retry,
            key=key, idempotent=idempotent, deadline_ms=deadline_ms,
        )

    def run(self, session, *, limit=None, wall_clock=None, parallel=False,
            retry=False, key=None, idempotent=False, deadline_ms=None):
        """``(terminal_response, event_lines)`` for one run request."""
        events = []
        response = self.request(
            "run", session=session, limit=limit, wall_clock=wall_clock,
            parallel=parallel or None, events=events, retry=retry,
            key=key, idempotent=idempotent, deadline_ms=deadline_ms,
        )
        return response, events

    def facts(self, session, wme_class=None, *, retry=False):
        events = []
        response = self.request(
            "facts", session=session, events=events, retry=retry,
            **({"class": wme_class} if wme_class else {}),
        )
        return response, events

    def add_rule(self, session, source, *, retry=False, key=None,
                 idempotent=False, deadline_ms=None):
        """Hot-add one ``(p ...)`` rule to a live session."""
        return self.request(
            "add_rule", session=session, source=source, retry=retry,
            key=key, idempotent=idempotent, deadline_ms=deadline_ms,
        )

    def remove_rule(self, session, rule, *, retry=False, key=None,
                    idempotent=False, deadline_ms=None):
        """Excise one rule (by name) from a live session."""
        return self.request(
            "remove_rule", session=session, rule=rule, retry=retry,
            key=key, idempotent=idempotent, deadline_ms=deadline_ms,
        )

    def replace_rule(self, session, rule, source, *, retry=False,
                     key=None, idempotent=False, deadline_ms=None):
        """Atomically swap the rule named *rule* for *source*."""
        return self.request(
            "replace_rule", session=session, rule=rule, source=source,
            retry=retry, key=key, idempotent=idempotent,
            deadline_ms=deadline_ms,
        )

    def checkpoint(self, session, *, retry=False):
        return self.request("checkpoint", session=session, retry=retry)

    def close_session(self, session, *, checkpoint=False, retry=False,
                      key=None, idempotent=False):
        return self.request(
            "close", session=session,
            checkpoint=checkpoint or None, retry=retry,
            key=key, idempotent=idempotent,
        )

    def stats(self):
        return self.request("stats")
