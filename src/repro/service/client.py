"""A blocking NDJSON client for the rule service.

:class:`ServiceClient` is deliberately small — a socket, a buffered
line reader, and one method per protocol op — because it is what the
tests, the load generator, and the differential harness all drive the
server with.  It raises :class:`ServiceClientError` for any non-``ok``
terminal response *except* ``busy``, which raises
:class:`ServiceBusyError` carrying ``retry_after`` so callers can
implement backoff (``retry=True`` on the op methods does it for you).

Streaming ops (``run``, ``facts``) collect the event lines that
precede the terminal response and return them alongside it.
"""

from __future__ import annotations

import socket
import time

from repro.service.protocol import MAX_LINE_BYTES, decode_line, encode_line


class ServiceClientError(RuntimeError):
    """A terminal error response from the server."""

    def __init__(self, response):
        self.response = response
        self.code = response.get("error", "internal")
        super().__init__(
            f"[{self.code}] {response.get('message', 'unknown error')}"
        )


class ServiceBusyError(ServiceClientError):
    """The server shed this request; retry after ``retry_after``."""

    def __init__(self, response):
        super().__init__(response)
        self.retry_after = float(response.get("retry_after", 0.05))


class ServiceClient:
    """One connection to a :class:`~repro.service.server.RuleService`."""

    def __init__(self, host, port, timeout=30.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0
        #: Total seconds slept honouring ``busy`` backpressure.
        self.backoff_s = 0.0
        self.busy_retries = 0

    def close(self):
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- plumbing ----------------------------------------------------------

    def _read_line(self):
        line = self._reader.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_line(line)

    def request(self, op, *, events=None, retry=False, max_retries=50,
                **fields):
        """Send one request; return the terminal response object.

        *events*, if a list, collects the event lines streamed before
        the terminal response.  *retry* sleeps through ``busy``
        responses (honouring their ``retry_after``) up to
        *max_retries* times before letting :class:`ServiceBusyError`
        escape.
        """
        attempts = 0
        while True:
            try:
                return self._request_once(op, events=events, **fields)
            except ServiceBusyError as busy:
                attempts += 1
                if not retry or attempts > max_retries:
                    raise
                self.busy_retries += 1
                self.backoff_s += busy.retry_after
                time.sleep(busy.retry_after)
                if events is not None:
                    events.clear()

    def _request_once(self, op, *, events=None, **fields):
        self._next_id += 1
        request_id = self._next_id
        payload = {"op": op, "id": request_id}
        payload.update(
            (k, v) for k, v in fields.items() if v is not None
        )
        self._sock.sendall(encode_line(payload))
        while True:
            line = self._read_line()
            if "event" in line:
                if events is not None:
                    events.append(line)
                continue
            if line.get("ok"):
                return line
            if line.get("error") == "busy":
                raise ServiceBusyError(line)
            raise ServiceClientError(line)

    # -- ops ---------------------------------------------------------------

    def ping(self):
        return self.request("ping")

    def create(self, session, program, *, matcher=None, kernels=None,
               backend=None, strategy=None, on_error=None, durable=True,
               resume=False, workers=None, retry=False):
        return self.request(
            "create", session=session, program=program, matcher=matcher,
            kernels=kernels, backend=backend, strategy=strategy,
            on_error=on_error, durable=durable, resume=resume or None,
            workers=workers, retry=retry,
        )

    def assert_facts(self, session, facts, *, retry=False):
        """*facts* is a list of ``(wme_class, {attribute: value})``."""
        return self.request(
            "assert", session=session,
            facts=[[c, dict(v)] for c, v in facts], retry=retry,
        )

    def run(self, session, *, limit=None, wall_clock=None, parallel=False,
            retry=False):
        """``(terminal_response, event_lines)`` for one run request."""
        events = []
        response = self.request(
            "run", session=session, limit=limit, wall_clock=wall_clock,
            parallel=parallel or None, events=events, retry=retry,
        )
        return response, events

    def facts(self, session, wme_class=None, *, retry=False):
        events = []
        response = self.request(
            "facts", session=session, events=events, retry=retry,
            **({"class": wme_class} if wme_class else {}),
        )
        return response, events

    def checkpoint(self, session, *, retry=False):
        return self.request("checkpoint", session=session, retry=retry)

    def close_session(self, session, *, checkpoint=False, retry=False):
        return self.request(
            "close", session=session,
            checkpoint=checkpoint or None, retry=retry,
        )

    def stats(self):
        return self.request("stats")
