"""Load generator for the rule service.

Drives N concurrent sessions against a live server — each worker
thread owns one connection and one session, ticking ``assert`` (a
batch of facts) + ``run`` (recognize-act to quiescence) at an optional
target rate — and reports latency percentiles (p50/p95/p99/max, per
op), throughput (events/sec, firings), busy-backoff totals, and an
error count.  The CI soak jobs run it against mixed-matcher servers
(one of them chaos-injected) and fail on any *real* error; the
benchmark harness records its output as the ``service_*`` scenarios.

Failure classification matters here: **shed load is not an error**.  A
request the server rejected with ``busy`` past the retry budget lands
in ``report["busy_shed"]`` (the worker skips that tick — the load was
shed, which is the server doing its job under overload), while
protocol/engine/connection failures land in ``report["errors"]`` and
fail ``--fail-on-error``.  A ``no_session`` mid-soak (chaos kill,
eviction) triggers a resume (durable sessions) or a fresh create and
is counted in ``report["session_restarts"]``.

Run standalone (spins up an in-process server when no ``--port``)::

    python -m repro.service.loadgen --sessions 8 --ticks 20 --facts 50

chaos-soak an in-process server with idempotent retries::

    python -m repro.service.loadgen --chaos "disconnect=0.05,seed=7" \
        --idempotent --durable --wal-root /tmp/wal --fail-on-error

or against an already-running ``repro serve``::

    python -m repro.service.loadgen --host 127.0.0.1 --port 7471
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time

from repro.service.client import (
    ServiceBusyError,
    ServiceClient,
    ServiceClientError,
)

#: The default workload: one set-oriented rule (the paper's department
#: roll-up shape) so every tick exercises S-node batch re-evaluation,
#: plus a per-employee rule so firing volume scales with fact volume.
DEFAULT_PROGRAM = """
(literalize dept name)
(literalize emp name dept salary)
(literalize seen name)
(p note-emp
  (emp ^name <n> ^salary {<s> > 1500})
  -(seen ^name <n>)
  -->
  (make seen ^name <n>))
(p dept-size
  (dept ^name <d>)
  { [emp ^dept <d>] <staff> }
  :test ((count <staff>) >= 1)
  -->
  (write staffed <d> (count <staff>)))
"""

N_DEPTS = 8

#: Replacement variants the ``--reload-every`` mode rotates the
#: ``note-emp`` rule through — each reload swaps the salary threshold,
#: exercising WAL-logged runtime surgery plus copy-on-write rule-base
#: divergence on a live tenant.  Each variant keeps the same rule name
#: so every reload is a pure ``replace_rule``.
RELOAD_VARIANTS = (
    """(p note-emp
  (emp ^name <n> ^salary {<s> > 1400})
  -(seen ^name <n>)
  -->
  (make seen ^name <n>))""",
    """(p note-emp
  (emp ^name <n> ^salary {<s> > 1500})
  -(seen ^name <n>)
  -->
  (make seen ^name <n>))""",
)


def percentile(sorted_values, fraction):
    """The *fraction* percentile of an ascending list (nearest-rank)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _latency_summary(samples_ms):
    ordered = sorted(samples_ms)
    return {
        "count": len(ordered),
        "p50_ms": round(percentile(ordered, 0.50), 3),
        "p95_ms": round(percentile(ordered, 0.95), 3),
        "p99_ms": round(percentile(ordered, 0.99), 3),
        "max_ms": round(ordered[-1], 3) if ordered else 0.0,
    }


class _Worker:
    """One session's drive loop, on its own thread + connection."""

    def __init__(self, index, host, port, *, program, matcher, ticks,
                 facts_per_tick, rate, durable, parallel,
                 session_prefix, idempotent=False, deadline_ms=None,
                 reload_every=None):
        self.index = index
        self.host = host
        self.port = port
        self.program = program
        self.matcher = matcher
        self.ticks = ticks
        self.facts_per_tick = facts_per_tick
        self.rate = rate
        self.durable = durable
        self.parallel = parallel
        self.idempotent = idempotent
        self.deadline_ms = deadline_ms
        self.reload_every = reload_every
        self.session_id = f"{session_prefix}-{index}"
        self.latencies = {"assert": [], "run": [], "reload": []}
        self.reloads = 0
        self.firings = 0
        self.events_sent = 0
        self.rulebase_hit = False
        self.busy_retries = 0
        self.backoff_s = 0.0
        self.reconnects = 0
        self.client_retries = 0
        self.deduped = 0
        self.shed = 0
        self.session_restarts = 0
        self.errors = []

    def _key(self, op):
        """Deterministic idempotency key for one logical op.

        Stable across the recover-and-retry path: if the op already
        applied before a wire fault or chaos kill ate its response,
        the retried request dedups against the journal and recovers
        the *exact* original summary — ingest and firing credit
        included — instead of silently re-running against an engine
        whose refraction makes it a no-op.
        """
        if not self.idempotent:
            return None
        return f"{self.session_id}-{op}"

    def _facts(self, tick):
        base = tick * self.facts_per_tick
        return [
            ("emp", {
                "name": f"s{self.index}-e{base + i}",
                "dept": f"d{(base + i) % N_DEPTS}",
                "salary": 1000 + ((base + i) % 1500),
            })
            for i in range(self.facts_per_tick)
        ]

    def run(self):
        client = None
        try:
            client = ServiceClient(self.host, self.port, seed=self.index)
            self._drive(client)
        except (ServiceClientError, ConnectionError, OSError) as error:
            self.errors.append(f"{self.session_id}: {error}")
        finally:
            if client is not None:
                self.busy_retries = client.busy_retries
                self.backoff_s = client.backoff_s
                self.reconnects = client.reconnects
                self.client_retries = client.retries
                self.deduped = client.deduped
                client.close()

    def _recover_session(self, client):
        """Re-establish the session after a chaos kill or eviction."""
        self.session_restarts += 1
        if self.durable:
            client.create(
                self.session_id, self.program, matcher=self.matcher,
                durable=True, resume=True, retry=True,
                idempotent=self.idempotent,
            )
        else:
            client.create(
                self.session_id, self.program, matcher=self.matcher,
                durable=False, retry=True, idempotent=self.idempotent,
            )

    def _call(self, client, fn):
        """One request with failure classification.

        Returns ``(result, ok)``.  Shed load (``busy`` past the retry
        budget) skips the op without recording an error; a vanished
        session is recovered and the op retried; anything else is a
        real error.
        """
        for attempt in range(3):
            try:
                return fn(), True
            except ServiceBusyError:
                self.shed += 1
                return None, False
            except ServiceClientError as error:
                if error.code == "no_session" and attempt < 2:
                    try:
                        self._recover_session(client)
                        continue
                    except ServiceBusyError:
                        self.shed += 1
                        return None, False
                    except (ServiceClientError, ConnectionError,
                            OSError) as recover_error:
                        self.errors.append(
                            f"{self.session_id}: recover failed: "
                            f"{recover_error}"
                        )
                        return None, False
                self.errors.append(f"{self.session_id}: {error}")
                return None, False
            except (ConnectionError, OSError) as error:
                self.errors.append(f"{self.session_id}: {error}")
                return None, False
        self.errors.append(
            f"{self.session_id}: session kept vanishing; giving up"
        )
        return None, False

    def _drive(self, client):
        response, ok = self._call(client, lambda: client.create(
            self.session_id, self.program, matcher=self.matcher,
            durable=self.durable, retry=True,
            idempotent=self.idempotent,
        ))
        if not ok:
            return
        self.rulebase_hit = bool(response.get("rulebase_hit"))
        self._call(client, lambda: client.assert_facts(
            self.session_id,
            [("dept", {"name": f"d{d}"}) for d in range(N_DEPTS)],
            retry=True, key=self._key("depts"),
            deadline_ms=self.deadline_ms,
        ))
        tick_interval = (
            self.facts_per_tick / self.rate if self.rate else 0.0
        )
        start = time.perf_counter()
        for tick in range(self.ticks):
            t0 = time.perf_counter()
            _response, sent = self._call(
                client,
                lambda: client.assert_facts(
                    self.session_id, self._facts(tick), retry=True,
                    key=self._key(f"a{tick}"),
                    deadline_ms=self.deadline_ms,
                ),
            )
            t1 = time.perf_counter()
            run_response, ran = self._call(
                client,
                lambda: client.run(
                    self.session_id, parallel=self.parallel, retry=True,
                    key=self._key(f"r{tick}"),
                    deadline_ms=self.deadline_ms,
                ),
            )
            t2 = time.perf_counter()
            if sent:
                self.latencies["assert"].append((t1 - t0) * 1000.0)
                self.events_sent += self.facts_per_tick
            if ran:
                self.latencies["run"].append((t2 - t1) * 1000.0)
                self.firings += int(run_response[0].get("fired", 0))
            if self.reload_every and (tick + 1) % self.reload_every == 0:
                variant = RELOAD_VARIANTS[
                    (tick // self.reload_every) % len(RELOAD_VARIANTS)
                ]
                t3 = time.perf_counter()
                _response, reloaded = self._call(
                    client,
                    lambda variant=variant: client.replace_rule(
                        self.session_id, "note-emp", variant,
                        retry=True, key=self._key(f"x{tick}"),
                        deadline_ms=self.deadline_ms,
                    ),
                )
                if reloaded:
                    self.latencies["reload"].append(
                        (time.perf_counter() - t3) * 1000.0
                    )
                    self.reloads += 1
            if tick_interval:
                deadline = start + (tick + 1) * tick_interval
                sleep_for = deadline - time.perf_counter()
                if sleep_for > 0:
                    time.sleep(sleep_for)
        try:
            client.close_session(
                self.session_id, retry=True,
                idempotent=self.idempotent,
            )
        except ServiceBusyError:
            self.shed += 1
        except ServiceClientError as error:
            # A chaos kill or eviction may have beaten us to it.
            if error.code != "no_session":
                self.errors.append(f"{self.session_id}: {error}")


def run_load(host, port, *, sessions=4, ticks=10, facts_per_tick=50,
             matchers=("rete",), program=DEFAULT_PROGRAM, rate=None,
             durable=False, parallel=False, session_prefix="load",
             idempotent=False, deadline_ms=None, reload_every=None,
             collect_server_stats=True):
    """Drive the server at ``host:port``; returns the report dict.

    *matchers* round-robins across the sessions, so a two-element
    tuple splits the fleet between match algorithms (and exercises two
    shared rule bases).  *rate* paces each session to that many
    events/sec (None = as fast as the server admits).  *idempotent*
    attaches idempotency keys to every mutating request — the chaos
    soak's exactly-once mode.  *reload_every* makes each session issue
    a ``replace_rule`` of the default program's ``note-emp`` rule every
    that many ticks (the hot-reload soak: WAL-logged runtime surgery
    interleaved with live traffic).  Real worker errors land in
    ``report["errors"]`` (the soak job's fail condition); shed load
    lands in ``report["busy_shed"]`` and does not fail the soak.
    """
    workers = [
        _Worker(
            i, host, port, program=program,
            matcher=matchers[i % len(matchers)],
            ticks=ticks, facts_per_tick=facts_per_tick, rate=rate,
            durable=durable, parallel=parallel,
            session_prefix=session_prefix, idempotent=idempotent,
            deadline_ms=deadline_ms, reload_every=reload_every,
        )
        for i in range(sessions)
    ]
    threads = [
        threading.Thread(target=w.run, name=w.session_id, daemon=True)
        for w in workers
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    events_total = sum(w.events_sent for w in workers)
    report = {
        "sessions": sessions,
        "matchers": list(matchers),
        "ticks": ticks,
        "facts_per_tick": facts_per_tick,
        "rate_events_per_s": rate,
        "durable": durable,
        "parallel": parallel,
        "idempotent": idempotent,
        "reload_every": reload_every,
        "duration_s": round(elapsed, 3),
        "events_total": events_total,
        "events_per_s": round(events_total / elapsed, 1) if elapsed else 0.0,
        "firings": sum(w.firings for w in workers),
        "rulebase_hits": sum(1 for w in workers if w.rulebase_hit),
        "busy_retries": sum(w.busy_retries for w in workers),
        "backoff_s": round(sum(w.backoff_s for w in workers), 3),
        "busy_shed": sum(w.shed for w in workers),
        "reconnects": sum(w.reconnects for w in workers),
        "retries": sum(w.client_retries for w in workers),
        "deduped": sum(w.deduped for w in workers),
        "session_restarts": sum(w.session_restarts for w in workers),
        "reloads": sum(w.reloads for w in workers),
        "latency": {
            op: _latency_summary(
                [ms for w in workers for ms in w.latencies[op]]
            )
            for op in (
                ("assert", "run", "reload") if reload_every
                else ("assert", "run")
            )
        },
        "errors": [e for w in workers for e in w.errors],
    }
    if collect_server_stats:
        try:
            with ServiceClient(host, port) as client:
                report["server"] = {
                    k: v for k, v in client.stats().items()
                    if k in ("server", "registry", "rule_bases", "chaos")
                }
        except (ServiceClientError, ConnectionError, OSError) as error:
            report["errors"].append(f"stats: {error}")
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description="drive a rule service with N concurrent sessions",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=None,
        help="server port (omit to start an in-process server)",
    )
    parser.add_argument("--sessions", type=int, default=4)
    parser.add_argument("--ticks", type=int, default=10)
    parser.add_argument(
        "--facts", type=int, default=50, dest="facts_per_tick",
        help="facts per assert batch (default 50)",
    )
    parser.add_argument(
        "--matchers", default="rete",
        help="comma-separated matcher list, round-robined (default rete)",
    )
    parser.add_argument(
        "--rate", type=float, default=None,
        help="per-session events/sec pacing (default: unpaced)",
    )
    parser.add_argument("--parallel", action="store_true",
                        help="use parallel-cycle runs")
    parser.add_argument("--durable", action="store_true",
                        help="create durable sessions (needs wal_root)")
    parser.add_argument(
        "--idempotent", action="store_true",
        help="attach idempotency keys to every mutating request "
             "(exactly-once retries under chaos)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-request deadline forwarded to the server",
    )
    parser.add_argument(
        "--reload-every", type=int, default=None,
        help="replace_rule the default program's note-emp rule every N "
             "ticks per session (hot-reload soak; needs the default "
             "program)",
    )
    parser.add_argument(
        "--session-prefix", default="load",
        help="session id prefix (default 'load')",
    )
    parser.add_argument(
        "--chaos", default=None,
        help="chaos spec for the in-process server, e.g. "
             "'disconnect=0.05,delay=0.05,kill=0.02,seed=7' "
             "(ignored with --port)",
    )
    parser.add_argument(
        "--wal-root", default=None,
        help="WAL root for the in-process server (implies durability "
             "support)",
    )
    parser.add_argument(
        "--engine-workers", type=int, default=4,
        help="executor threads for the in-process server (default 4)",
    )
    parser.add_argument(
        "--json", default=None,
        help="write the report to this path as JSON",
    )
    parser.add_argument(
        "--fail-on-error", action="store_true",
        help="exit 1 if any request hit a real error (shed load and "
             "chaos-recovered requests do not fail the soak)",
    )
    options = parser.parse_args(argv)
    matchers = tuple(
        m.strip() for m in options.matchers.split(",") if m.strip()
    )

    server = None
    host, port = options.host, options.port
    if port is None:
        from repro.service.server import ServiceConfig, ServiceThread

        server = ServiceThread(ServiceConfig(
            host="127.0.0.1", port=0, wal_root=options.wal_root,
            engine_workers=options.engine_workers,
            chaos=options.chaos,
        )).start()
        host, port = server.address
        print(f"started in-process service on {host}:{port}")
    elif options.chaos:
        print("--chaos only applies to the in-process server; "
              "start the remote server with 'serve --chaos'",
              file=sys.stderr)
    try:
        report = run_load(
            host, port,
            sessions=options.sessions,
            ticks=options.ticks,
            facts_per_tick=options.facts_per_tick,
            matchers=matchers,
            rate=options.rate,
            durable=options.durable,
            parallel=options.parallel,
            idempotent=options.idempotent,
            deadline_ms=options.deadline_ms,
            reload_every=options.reload_every,
            session_prefix=options.session_prefix,
        )
    finally:
        if server is not None:
            server.stop()

    print(json.dumps(report, indent=2, sort_keys=True))
    if options.json:
        with open(options.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if options.fail_on_error and report["errors"]:
        print(f"FAIL: {len(report['errors'])} error(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
