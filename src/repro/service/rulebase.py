"""Shared rule bases: parse once, kernel-compile once, serve N tenants.

A long-lived decision service runs one *program* for many concurrent
sessions — Knowledgenet's ``entrypoint(input_facts, rules)`` shape with
the rules fixed per service.  Building each session's engine from
source would pay the parse and every kernel compilation again per
tenant; at a thousand sessions that is a thousand network builds of
identical structure.

:class:`RuleBaseCache` removes the repetition:

* the program is **parsed once** per distinct ``(source, matcher,
  kernels, backend)`` key — sessions reuse the AST ``Rule`` objects
  (they are read-only to the matchers; each engine computes its own
  :class:`~repro.analysis.RuleAnalysis`);
* for Rete-family matchers a single ``shared=True``
  :class:`~repro.rete.kernels.KernelPack` is handed to every session's
  network, so the structural-key kernel cache spans tenants: the first
  session compiles each distinct alpha/join/scan chain, every later
  session hits the cache.  ``RuleBase.kernel_stats()`` exposes the
  counters the acceptance test pins (N sessions ⇒ 1 compile's worth of
  ``compiled``, the rest ``cache_hits``).

Cache keys hash the program source (SHA-256), so two tenants posting
byte-identical programs share a rule base even over separate
connections.  Matcher *instances* are never shared — alpha/beta
memories, tokens, and conflict sets are session state; only the
immutable artifacts (ASTs, compiled kernel functions) cross tenants.
"""

from __future__ import annotations

import hashlib
import threading

from repro.durability.checkpoint import build_matcher
from repro.lang.parser import parse_program
from repro.rete.kernels import KernelPack, resolve_kernels

#: Matchers whose networks consume compiled kernel packs.
KERNELIZED_MATCHERS = ("rete", "sharded")


def rule_base_key(source, matcher="rete", kernels=None, backend=None):
    """The cache key for one compiled rule base.

    The program source is content-hashed; matcher/kernel/backend specs
    are normalised so equivalent spellings collide.  Kernel mode is
    irrelevant to (and normalised away for) the interpreted matchers.
    """
    mode = resolve_kernels(kernels)
    if matcher not in KERNELIZED_MATCHERS:
        mode = "-"
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return (digest, matcher, mode, backend or "memory")


class RuleBase:
    """One parsed program + its shared kernel pack, ready to stamp
    engines out of."""

    __slots__ = ("key", "source", "matcher_name", "kernel_mode",
                 "backend", "literalizations", "rules", "kernel_pack",
                 "sessions_built", "_lock")

    def __init__(self, source, matcher="rete", kernels=None,
                 backend=None):
        self.key = rule_base_key(source, matcher, kernels, backend)
        self.source = source
        self.matcher_name = matcher
        self.kernel_mode = resolve_kernels(kernels)
        self.backend = backend
        self.literalizations, self.rules = parse_program(source)
        self.kernel_pack = None
        if (matcher in KERNELIZED_MATCHERS
                and self.kernel_mode != "off"):
            self.kernel_pack = KernelPack(self.kernel_mode, shared=True)
        self.sessions_built = 0
        self._lock = threading.Lock()

    @classmethod
    def forked(cls, parent, source):
        """Copy-on-write divergence: a rule base for *source* sharing
        *parent*'s kernel pack.

        A tenant that reloads rules at runtime gets a forked rule base
        under its own content key while untouched tenants keep sharing
        the parent entry.  The kernel pack is the *same object*: the
        structural-key cache spans the fork, so only genuinely new
        alpha/join/scan chains compile — replacing one rule shared by
        N tenants costs exactly one new compile, not N rebuilds.
        """
        base = cls.__new__(cls)
        base.key = rule_base_key(
            source, parent.matcher_name, parent.kernel_mode,
            parent.backend,
        )
        base.source = source
        base.matcher_name = parent.matcher_name
        base.kernel_mode = parent.kernel_mode
        base.backend = parent.backend
        base.literalizations, base.rules = parse_program(source)
        base.kernel_pack = parent.kernel_pack
        base.sessions_built = 0
        base._lock = threading.Lock()
        return base

    @property
    def version(self):
        """The rule-base version hash (matches checkpoint manifests)."""
        from repro.durability.checkpoint import rule_base_version

        return rule_base_version(self.source)

    def build_matcher(self):
        """A fresh matcher wired to the shared kernel pack (if any)."""
        kernels = (
            self.kernel_pack if self.kernel_pack is not None
            else self.kernel_mode
        )
        return build_matcher(
            self.matcher_name, backend=self.backend, kernels=kernels
        )

    def build_engine(self, **engine_kwargs):
        """A fresh :class:`~repro.engine.engine.RuleEngine` loaded with
        this rule base (no reparse, shared kernels).

        *engine_kwargs* pass through to the engine constructor
        (``strategy``, ``durability``, ``on_error``, ``workers``,
        ``stats``, ``trace_limit``).  With durability attached, the
        engine's WAL records the same literalize/rule records a
        ``load()`` of the source would — recovery does not care that
        the parse was shared.
        """
        from repro.engine.engine import RuleEngine

        engine = RuleEngine(matcher=self.build_matcher(),
                            **engine_kwargs)
        for wme_class, attributes in self.literalizations:
            engine.literalize(wme_class, *attributes)
        for rule in self.rules:
            engine.add_rule(rule)
        with self._lock:
            self.sessions_built += 1
        return engine

    def kernel_stats(self):
        """``{"compiled": n, "cache_hits": n}`` of the shared pack
        (zeros for interpreted matchers / kernels off)."""
        if self.kernel_pack is None:
            return {"compiled": 0, "cache_hits": 0}
        return {
            "compiled": self.kernel_pack.compiled,
            "cache_hits": self.kernel_pack.cache_hits,
        }

    def __repr__(self):
        return (
            f"RuleBase({len(self.rules)} rules, {self.matcher_name}, "
            f"kernels={self.kernel_mode}, "
            f"{self.sessions_built} session(s) built)"
        )


class RuleBaseCache:
    """Thread-safe cache of :class:`RuleBase` by structural key."""

    def __init__(self):
        self._bases = {}
        self._lock = threading.Lock()
        self.compiles = 0
        self.hits = 0
        self.forks = 0

    def get(self, source, matcher="rete", kernels=None, backend=None):
        """``(rule_base, hit)`` for the given program/configuration."""
        key = rule_base_key(source, matcher, kernels, backend)
        with self._lock:
            base = self._bases.get(key)
            if base is not None:
                self.hits += 1
                return base, True
        # Parse outside the lock (parse can be slow for big programs);
        # a concurrent miss on the same key keeps the first one in.
        base = RuleBase(source, matcher=matcher, kernels=kernels,
                        backend=backend)
        with self._lock:
            existing = self._bases.get(key)
            if existing is not None:
                self.hits += 1
                return existing, True
            self._bases[key] = base
            self.compiles += 1
            return base, False

    def fork(self, parent, source):
        """``(rule_base, hit)`` for a tenant diverging to *source*.

        Like :meth:`get`, but a miss builds the entry by forking
        *parent* (sharing its kernel pack) instead of compiling from
        scratch.  Two tenants reloading to byte-identical programs
        converge on one forked entry — the second is a hit.
        """
        key = rule_base_key(
            source, parent.matcher_name, parent.kernel_mode,
            parent.backend,
        )
        with self._lock:
            base = self._bases.get(key)
            if base is not None:
                self.hits += 1
                return base, True
        base = RuleBase.forked(parent, source)
        with self._lock:
            existing = self._bases.get(key)
            if existing is not None:
                self.hits += 1
                return existing, True
            self._bases[key] = base
            self.forks += 1
            return base, False

    def stats(self):
        """Cache-level and per-base counters, JSON-safe."""
        with self._lock:
            bases = list(self._bases.values())
            compiles, hits = self.compiles, self.hits
            forks = self.forks
        # Forked bases share their parent's kernel pack, so sum packs,
        # not bases — otherwise every fork would re-count the shared
        # pack's compilations.
        packs = {
            id(b.kernel_pack): b.kernel_pack
            for b in bases if b.kernel_pack is not None
        }
        return {
            "rule_bases": len(bases),
            "compiles": compiles,
            "hits": hits,
            "forks": forks,
            "kernels_compiled": sum(
                p.compiled for p in packs.values()
            ),
            "kernel_cache_hits": sum(
                p.cache_hits for p in packs.values()
            ),
            "sessions_built": sum(b.sessions_built for b in bases),
        }

    def __len__(self):
        with self._lock:
            return len(self._bases)
