"""Chaos layer for the rule service: injected wire and lifecycle faults.

The resilience story of ``docs/SERVICE.md`` is only as good as the
faults it has actually survived, so this module makes fault injection a
first-class, *deterministic* part of the service: a seeded
:class:`ChaosInjector` rolls per-event dice against the rates in a
:class:`ChaosConfig` and

* **wire faults** — tears the connection down mid-stream, delays a
  response line (slow-loris in reverse), or writes only a prefix of a
  line before dropping the socket.  The server consults
  :meth:`ChaosInjector.wire_fault` once per outbound line;
* **lifecycle faults** — kills a session outright between admission
  and execution (:meth:`should_kill_session`), and arms per-session
  :class:`~repro.durability.faultfs.FaultInjector` instances
  (:meth:`fault_for_session`) that crash an eviction checkpoint
  mid-write or fail a WAL append with ``ENOSPC`` — the existing
  durability fault points, driven from the service layer.

Everything is counted (``counters``) so soak reports can show the
faults that were actually injected, and everything derives from one
seed so a chaos run is reproducible.  The differential chaos suite
(``tests/service/test_differential_chaos.py``) drives a client
workload through these faults and asserts the final state is identical
to a fault-free run — the exactly-once contract.
"""

from __future__ import annotations

import random
import threading
from collections import Counter

from repro.errors import ServiceError

#: Rate-valued fields a spec string may set (probability per event).
_RATE_FIELDS = ("disconnect", "delay", "partial", "kill", "wal_error",
                "evict_crash")


class ChaosConfig:
    """Fault rates and knobs for one :class:`ChaosInjector`.

    Rates are probabilities in ``[0, 1]`` rolled once per opportunity:

    *disconnect* — tear the connection down instead of sending a line;
    *delay* — sleep up to *delay_s* seconds before sending a line;
    *partial* — send a prefix of the line, then tear down;
    *kill* — kill the target session between admission and execution;
    *wal_error* — arm a one-shot ``ENOSPC`` on a new session's WAL;
    *evict_crash* — arm a one-shot crash inside a new session's first
    checkpoint attempt (the eviction path swallows it, leaving a
    ``.tmp`` checkpoint for recovery to ignore);
    *delay_s* — the maximum injected delay;
    *seed* — the deterministic RNG seed.
    """

    __slots__ = ("disconnect", "delay", "partial", "kill", "wal_error",
                 "evict_crash", "delay_s", "seed")

    def __init__(self, disconnect=0.0, delay=0.0, partial=0.0,
                 kill=0.0, wal_error=0.0, evict_crash=0.0,
                 delay_s=0.05, seed=0):
        for name, value in (("disconnect", disconnect), ("delay", delay),
                            ("partial", partial), ("kill", kill),
                            ("wal_error", wal_error),
                            ("evict_crash", evict_crash)):
            value = float(value)
            if not 0.0 <= value <= 1.0:
                raise ServiceError(
                    f"chaos rate {name} must be in [0, 1], got {value}"
                )
            object.__setattr__(self, name, value)
        self.delay_s = float(delay_s)
        self.seed = int(seed)

    @property
    def enabled(self):
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    @classmethod
    def parse(cls, spec):
        """Build a config from ``"disconnect=0.1,delay=0.05,seed=7"``.

        Keys are the constructor's field names; ``kill`` is the
        session-kill rate.  Unknown keys and malformed values raise
        :class:`~repro.errors.ServiceError` (a ``bad_request`` at the
        CLI), so a typo'd chaos spec fails loudly instead of silently
        running fault-free.
        """
        if isinstance(spec, cls):
            return spec
        fields = {}
        for part in str(spec).split(","):
            part = part.strip()
            if not part:
                continue
            name, eq, value = part.partition("=")
            name = name.strip()
            if not eq or name not in cls.__slots__:
                raise ServiceError(
                    f"bad chaos spec entry {part!r}: expected "
                    f"name=value with name in "
                    f"{', '.join(cls.__slots__)}"
                )
            try:
                fields[name] = (
                    int(value) if name == "seed" else float(value)
                )
            except ValueError as error:
                raise ServiceError(
                    f"bad chaos spec value {part!r}: {error}"
                ) from None
        return cls(**fields)

    def describe(self):
        """JSON-safe view for the stats/health surfaces."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        active = ",".join(
            f"{name}={getattr(self, name)}"
            for name in _RATE_FIELDS if getattr(self, name) > 0.0
        )
        return f"ChaosConfig({active or 'inactive'}, seed={self.seed})"


class ChaosInjector:
    """Rolls the dice: one seeded RNG, thread-safe, fully counted."""

    def __init__(self, config):
        self.config = (
            config if isinstance(config, ChaosConfig)
            else ChaosConfig.parse(config)
        )
        self._rng = random.Random(self.config.seed)
        self._lock = threading.Lock()
        self.counters = Counter()

    def _roll(self, rate):
        if rate <= 0.0:
            return False
        with self._lock:
            return self._rng.random() < rate

    # -- wire faults -------------------------------------------------------

    def wire_fault(self):
        """``None`` or one of ``disconnect``/``partial``/``delay`` for
        the next outbound line (at most one fault per line)."""
        config = self.config
        if self._roll(config.disconnect):
            self.counters["disconnects"] += 1
            return "disconnect"
        if self._roll(config.partial):
            self.counters["partial_writes"] += 1
            return "partial"
        if self._roll(config.delay):
            self.counters["delays"] += 1
            return "delay"
        return None

    def delay_seconds(self):
        """A jittered sleep for one ``delay`` fault."""
        with self._lock:
            return self.config.delay_s * (0.5 + self._rng.random() / 2)

    def partial_prefix(self, size):
        """How many bytes of a *size*-byte line a torn write keeps."""
        with self._lock:
            return max(0, min(size - 1, int(size * self._rng.random())))

    # -- lifecycle faults --------------------------------------------------

    def should_kill_session(self):
        """Kill the session this request targets (before execution)?"""
        if self._roll(self.config.kill):
            self.counters["sessions_killed"] += 1
            return True
        return False

    def fault_for_session(self, session_id):
        """A durability :class:`FaultInjector` for a new session, or None.

        Rolled once per session creation: ``evict_crash`` arms a
        simulated crash inside the session's first checkpoint attempt
        (after members are written, before the rename — the window
        that leaves a ``.tmp`` directory behind); ``wal_error`` arms a
        one-shot ``ENOSPC`` on a later WAL append.  Both are one-shot,
        modelling transient infrastructure faults the session must
        survive or be recovered from.
        """
        from repro.durability.faultfs import FaultInjector

        crash_at = {}
        error_at = {}
        if self._roll(self.config.evict_crash):
            crash_at["checkpoint.files"] = 1
            self.counters["evict_crashes_armed"] += 1
        if self._roll(self.config.wal_error):
            with self._lock:
                error_at["wal.append.before"] = self._rng.randint(2, 12)
            self.counters["wal_errors_armed"] += 1
        if not crash_at and not error_at:
            return None
        return FaultInjector(crash_at=crash_at, error_at=error_at)

    def stats(self):
        """JSON-safe injected-fault counters plus the active config."""
        return {"config": self.config.describe(),
                "injected": dict(self.counters)}
