"""An OPS5-style command-line interpreter for the engine.

Usage::

    python -m repro.cli [program.ops]
                        [--matcher rete|treat|naive|dips|sharded]
                        [--backend memory|sqlite|sqlite:PATH]
                        [--kernels off|closure|exec]
                        [--strategy lex|mea] [--run N] [--watch LEVEL]
                        [--on-error POLICY] [--workers N]
                        [--profile] [--profile-json FILE]
                        [--wal-dir DIR] [--fsync always|batch|off]
                        [--checkpoint]
    python -m repro.cli recover DIR [--run N] [--no-wal] ...

``--backend`` picks the relational storage backend for the ``dips``
matcher's COND tables — ``memory`` (default), ``sqlite`` (private
in-memory database, queries pushed down to real SQL), or
``sqlite:PATH`` (out-of-core, file-backed).  The ``REPRO_RDB_BACKEND``
environment variable supplies the default; the flag wins.  Other
matchers ignore it.  See ``docs/STORAGE.md``.

``--kernels`` picks the compiled-match-kernel mode for the Rete-family
matchers — ``closure`` (default: per-node test chains composed into
specialized closures at build time), ``exec`` (test chains rendered to
Python source and exec-compiled), or ``off`` (the interpreted test
walk).  ``REPRO_KERNELS`` supplies the default; the flag wins.
Results are identical in every mode.  See ``docs/KERNELS.md``.

``--on-error`` sets the engine-wide firing error policy — ``halt``
(default), ``skip``, ``retry[:n[:backoff[:then]]]``, or
``quarantine[:k]`` — see ``docs/RELIABILITY.md``; the ``on-error``
REPL command changes it (optionally per rule) at runtime, and
``deadletters`` / ``quarantined`` / ``release`` inspect and undo what
containment did.

``--wal-dir`` enables the durability subsystem: every working-memory
delta-set and firing is appended to a write-ahead log in *DIR* (fsync
policy per ``--fsync``), the ``checkpoint`` REPL command (or
``--checkpoint`` in batch mode) writes an atomic snapshot, and the
``recover`` subcommand rebuilds the session from the log after a
crash.  See ``docs/DURABILITY.md``.

``--profile`` collects node-level match statistics (join tests, index
probes vs scans, token churn, S-node marks, per-rule timings) and
prints the per-rule/per-node profile tables when the session ends; the
``profile`` REPL command prints them on demand.  ``--profile-json``
additionally writes the structured snapshot to *FILE* on exit.

With a program file and ``--run``, executes in batch mode and prints
the ``write`` output.  Without ``--run`` it drops into a REPL:

========================  ====================================================
command                   effect
========================  ====================================================
``(p ...)``               define a rule (multi-line until parens balance)
``(literalize c a ...)``  declare a WME class
``make class ^a v ...``   add a WME
``remove N``              remove the WME with time tag N
``modify N ^a v ...``     modify the WME with time tag N
``run [N]``               fire until quiescence (or at most N firings)
``step``                  fire the dominant instantiation once
``wm [class]``            show working memory
``cs``                    show the conflict set, dominant first
``matches RULE``          show a rule's instantiations and their tokens
``watch LEVEL``           0 = silent, 1 = firings, 2 = + WM changes
``strategy lex|mea``      switch conflict resolution
``on-error P [RULE]``     set the error policy (engine-wide or per rule)
``deadletters``           show abandoned (skip/quarantine) firings
``quarantined``           show quarantined rules and why
``release RULE``          re-admit a quarantined rule
``excise RULE``           remove a rule at runtime (WAL-logged)
``replace RULE (p ...)``  atomically swap a rule for one-line source
``stats``                 matcher/engine counters
``profile``               per-rule/per-node match-work tables (--profile)
``checkpoint``            write a durability checkpoint (--wal-dir)
``load FILE``             load a program file
``exit``                  leave
========================  ====================================================
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.engine.conflict import strategy_named
from repro.engine.engine import RuleEngine
from repro.errors import ReproError
from repro.lang.printer import format_ce
from repro.symbols import coerce_literal


def _build_matcher(name, backend=None, kernels=None):
    if name == "rete":
        from repro.rete import ReteNetwork

        return ReteNetwork(kernels=kernels)
    if name == "sharded":
        from repro.rete import ShardedReteNetwork

        return ShardedReteNetwork(kernels=kernels)
    if name == "treat":
        from repro.match import TreatMatcher

        return TreatMatcher()
    if name == "naive":
        from repro.match import NaiveMatcher

        return NaiveMatcher()
    if name == "dips":
        from repro.dips import DipsMatcher

        return DipsMatcher(backend=backend)
    raise ValueError(f"unknown matcher {name!r}")


def _parse_attribute_args(tokens):
    """``^a v ^b w`` argument pairs into a dict of coerced values."""
    values = {}
    index = 0
    while index < len(tokens):
        attribute = tokens[index]
        if not attribute.startswith("^") or index + 1 >= len(tokens):
            raise ReproError(
                "expected ^attribute value pairs, e.g. ^team A ^name Jack"
            )
        values[attribute[1:]] = coerce_literal(tokens[index + 1])
        index += 2
    return values


class ReplSession:
    """One interactive session; ``execute`` returns printable output."""

    def __init__(self, matcher="rete", strategy="lex", watch=1,
                 profile=False, wal_dir=None, fsync="batch",
                 on_error="halt", engine=None, workers=None,
                 backend=None, kernels=None):
        from repro.engine.stats import MatchStats

        self.profile_stats = None
        if engine is not None:
            # A recovered engine: adopt it (and its stats) wholesale.
            self.engine = engine
            if isinstance(engine.stats, MatchStats):
                self.profile_stats = engine.stats
        else:
            if profile:
                self.profile_stats = MatchStats()
            durability = None
            if wal_dir:
                from repro.durability import DurabilityConfig

                durability = DurabilityConfig(wal_dir, fsync=fsync)
            self.engine = RuleEngine(matcher=_build_matcher(matcher,
                                                            backend,
                                                            kernels),
                                     strategy=strategy,
                                     stats=self.profile_stats,
                                     durability=durability,
                                     on_error=on_error,
                                     workers=workers)
        self.watch = watch
        self._pending = ""
        self.engine.wm.attach(self._wm_observer)

    def close(self):
        """Flush and close the durability log, if one is attached."""
        self.engine.close()

    def profile_report(self):
        """The per-rule/per-node profile tables (with tracer drops)."""
        if self.profile_stats is None:
            return "profiling is off (start with --profile)"
        report = self.profile_stats.format_report()
        tracer = self.engine.tracer
        if tracer.dropped_records:
            report += (
                f"\n\ntracer ring buffer dropped "
                f"{tracer.dropped_firings} firing record(s) and "
                f"{tracer.dropped_output} output line(s)"
            )
        return report

    # -- observation ------------------------------------------------------

    def _wm_observer(self, event):
        if self.watch >= 2:
            print(f"  {event.sign}{event.wme!r}")

    def _report_firing(self, instantiation):
        if self.watch >= 1 and instantiation is not None:
            tags = " ".join(str(t) for t in instantiation.recency_key())
            print(f"fire {instantiation.rule.name} [{tags}]")

    # -- command dispatch -----------------------------------------------------

    def execute(self, line):
        """Execute one input line; returns output text ('' for silent).

        Rule/literalize definitions may span lines: the session buffers
        until parentheses balance.
        """
        if self._pending:
            return self._continue_definition(line)
        stripped = line.strip()
        if not stripped or stripped.startswith(";"):
            return ""
        if stripped.startswith("("):
            return self._continue_definition(line)
        parts = stripped.split()
        command, arguments = parts[0], parts[1:]
        handler = getattr(self, f"_cmd_{command.replace('-', '_')}", None)
        if handler is None:
            return f"unknown command: {command} (try 'help')"
        try:
            return handler(arguments) or ""
        except ReproError as error:
            return f"error: {error}"

    def _continue_definition(self, line):
        self._pending += line + "\n"
        if self._pending.count("(") > self._pending.count(")"):
            return "..."
        source, self._pending = self._pending, ""
        try:
            rules = self.engine.load(source)
        except ReproError as error:
            return f"error: {error}"
        if rules:
            return "defined " + ", ".join(rule.name for rule in rules)
        return "ok"

    # -- commands ---------------------------------------------------------------

    def _cmd_help(self, arguments):
        return __doc__.split("========", 1)[0] + (
            "commands: make remove modify run step wm cs matches watch "
            "parallel excise replace strategy on-error deadletters "
            "quarantined release stats profile checkpoint network load "
            "exit"
        )

    def _cmd_make(self, arguments):
        if not arguments:
            return "usage: make class ^attr value ..."
        wme = self.engine.make(
            arguments[0], **_parse_attribute_args(arguments[1:])
        )
        return f"made {wme!r}"

    def _cmd_remove(self, arguments):
        for argument in arguments:
            self.engine.remove(int(argument))
        return f"removed {len(arguments)} element(s)"

    def _cmd_modify(self, arguments):
        if not arguments:
            return "usage: modify time-tag ^attr value ..."
        wme = self.engine.modify(
            int(arguments[0]), **_parse_attribute_args(arguments[1:])
        )
        return f"now {wme!r}"

    def _cmd_run(self, arguments):
        limit = int(arguments[0]) if arguments else None
        letters_before = len(self.engine.dead_letters)
        fired = 0
        while limit is None or fired < limit:
            letters = len(self.engine.dead_letters)
            instantiation = self.engine.step()
            if instantiation is None:
                break
            if len(self.engine.dead_letters) > letters:
                continue  # abandoned by its error policy, not a firing
            self._report_firing(instantiation)
            fired += 1
        lines = [f"{fired} firing(s)"]
        abandoned = len(self.engine.dead_letters) - letters_before
        if abandoned:
            lines.append(
                f"{abandoned} firing(s) abandoned (see deadletters)"
            )
        lines.extend(list(self.engine.tracer.output)[-20:])
        self.engine.tracer.output.clear()
        return "\n".join(lines)

    def _cmd_parallel(self, arguments):
        max_cycles = int(arguments[0]) if arguments else None
        result = self.engine.run_parallel(max_cycles)
        cycles, fired, conflicted, abandoned = result
        lines = [
            f"{cycles} cycle(s): {fired} fired, "
            f"{conflicted} invalidated, {abandoned} abandoned"
        ]
        lines.extend(list(self.engine.tracer.output)[-20:])
        self.engine.tracer.output.clear()
        return "\n".join(lines)

    def _cmd_step(self, arguments):
        instantiation = self.engine.step()
        if instantiation is None:
            return "nothing to fire"
        self._report_firing(instantiation)
        output = list(self.engine.tracer.output)
        self.engine.tracer.output.clear()
        return "\n".join([f"fired {instantiation.rule.name}"] + output)

    def _cmd_wm(self, arguments):
        wmes = (
            self.engine.wm.of_class(arguments[0])
            if arguments
            else list(self.engine.wm)
        )
        if not wmes:
            return "working memory is empty"
        return "\n".join(repr(wme) for wme in wmes)

    def _cmd_cs(self, arguments):
        ordered = self.engine.conflict_set.ordered(self.engine.strategy)
        if not ordered:
            return "conflict set is empty"
        lines = []
        for rank, instantiation in enumerate(ordered, start=1):
            tags = " ".join(str(t) for t in instantiation.recency_key())
            marker = "" if instantiation.eligible() else " (fired)"
            kind = "SOI" if instantiation.is_set_oriented else "inst"
            lines.append(
                f"{rank}. {instantiation.rule.name} [{tags}] "
                f"{kind}{marker}"
            )
        return "\n".join(lines)

    def _cmd_matches(self, arguments):
        if not arguments:
            return "usage: matches rule-name"
        rule_name = arguments[0]
        rule = self.engine.rules.get(rule_name)
        if rule is None:
            return f"no rule named {rule_name}"
        lines = [format_ce(ce) for ce in rule.ces]
        for instantiation in self.engine.conflict_set.of_rule(rule_name):
            lines.append("instantiation:")
            for token in instantiation.tokens():
                tags = ", ".join(
                    "-" if w is None else str(w.time_tag)
                    for w in token.wmes()
                )
                lines.append(f"  [{tags}]")
        return "\n".join(lines)

    def _cmd_watch(self, arguments):
        if arguments:
            self.watch = int(arguments[0])
        return f"watch level {self.watch}"

    def _cmd_strategy(self, arguments):
        if arguments:
            self.engine.strategy = strategy_named(arguments[0])
        return f"strategy {self.engine.strategy.name}"

    def _cmd_stats(self, arguments):
        lines = [
            f"rules: {len(self.engine.rules)}",
            f"wm size: {len(self.engine.wm)}",
            f"conflict set: {len(self.engine.conflict_set)}",
            f"firings: {self.engine.cycle_count}",
        ]
        stats = getattr(self.engine.matcher, "stats", None)
        if stats is not None:
            as_dict = stats.as_dict() if hasattr(stats, "as_dict") else stats
            lines.extend(f"{key}: {value}" for key, value in as_dict.items())
        return "\n".join(lines)

    def _cmd_profile(self, arguments):
        return self.profile_report()

    def _cmd_checkpoint(self, arguments):
        if self.engine.durability is None:
            return "durability is off (start with --wal-dir DIR)"
        path = self.engine.checkpoint()
        return f"checkpoint written to {path}"

    def _cmd_on_error(self, arguments):
        if not arguments:
            reliability = self.engine.reliability
            lines = [f"default: {reliability.default_policy!r}"]
            for rule_name, policy in sorted(
                reliability.rule_policies.items()
            ):
                lines.append(f"{rule_name}: {policy!r}")
            return "\n".join(lines)
        rule = arguments[1] if len(arguments) > 1 else None
        policy = self.engine.set_error_policy(arguments[0], rule=rule)
        scope = rule if rule is not None else "default"
        return f"on-error {scope}: {policy!r}"

    def _cmd_deadletters(self, arguments):
        letters = self.engine.dead_letters
        if not letters:
            return "no dead letters"
        return "\n".join(repr(letter) for letter in letters)

    def _cmd_quarantined(self, arguments):
        quarantined = self.engine.quarantined_rules()
        if not quarantined:
            return "no rules are quarantined"
        lines = []
        for rule_name, info in sorted(quarantined.items()):
            lines.append(
                f"{rule_name}: {info['failures']} failure(s), "
                f"quarantined at cycle {info['cycle']} "
                f"({info['reason']}); {info['parked']} parked"
            )
        return "\n".join(lines)

    def _cmd_release(self, arguments):
        if not arguments:
            return "usage: release rule-name"
        rule_name = arguments[0]
        if rule_name not in self.engine.quarantined_rules():
            return f"{rule_name} is not quarantined"
        restored = self.engine.release_rule(rule_name)
        return f"released {rule_name}: {restored} instantiation(s) back"

    def _cmd_excise(self, arguments):
        if not arguments:
            return "usage: excise rule-name"
        self.engine.excise(arguments[0])
        return f"excised {arguments[0]}"

    def _cmd_replace(self, arguments):
        if len(arguments) < 2:
            return "usage: replace rule-name (p new-rule ...)"
        rule_name, source = arguments[0], " ".join(arguments[1:])
        rule = self.engine.replace_rule(rule_name, source)
        if rule.name == rule_name:
            return f"replaced {rule_name}"
        return f"replaced {rule_name} with {rule.name}"

    def _cmd_network(self, arguments):
        from repro.rete import ReteNetwork
        from repro.rete.explain import describe_network

        if not isinstance(self.engine.matcher, ReteNetwork):
            return "network dump is only available with the rete matcher"
        return describe_network(self.engine.matcher)

    def _cmd_load(self, arguments):
        if not arguments:
            return "usage: load file.ops"
        try:
            with open(arguments[0]) as handle:
                source = handle.read()
        except OSError as error:
            return f"error: {error}"
        rules = self.engine.load(source)
        return f"loaded {len(rules)} rule(s)"

    def _cmd_exit(self, arguments):
        raise SystemExit(0)


def _run_session(session, options):
    """Batch-run or REPL-loop *session*; always closes the WAL cleanly.

    The ``finally`` matters for durability: an error exit (say, the
    stats snapshot failing to write) must still flush and fsync the
    log, or the tail of the session would be lost to a mere I/O error.
    """

    def finish():
        if session.profile_stats is None:
            return
        print()
        print(session.profile_report())
        if options.profile_json:
            try:
                with open(options.profile_json, "w") as handle:
                    handle.write(session.profile_stats.to_json(indent=2))
            except OSError as error:
                print(f"error: cannot write stats snapshot: {error}")
            else:
                print(
                    f"stats snapshot written to {options.profile_json}"
                )

    try:
        if getattr(options, "program", None):
            print(session.execute(f"load {options.program}"))
        if options.run is not None:
            print(session.execute(f"run {options.run}"))
            if getattr(options, "checkpoint", False):
                print(session.execute("checkpoint"))
            finish()
            return 0

        print("repro-ops — type 'help' for commands, 'exit' to leave")
        while True:
            try:
                line = input("ops> ")
            except (EOFError, KeyboardInterrupt):
                print()
                finish()
                return 0
            try:
                output = session.execute(line)
            except SystemExit:
                finish()
                return 0
            if output:
                print(output)
    finally:
        session.close()


def _recover_main(argv):
    parser = argparse.ArgumentParser(
        prog="repro-ops recover",
        description="rebuild a session from its write-ahead log",
    )
    parser.add_argument("wal_dir", help="WAL directory to recover from")
    parser.add_argument(
        "--matcher",
        choices=("rete", "treat", "naive", "dips", "sharded"),
        default=None,
        help="override the checkpointed matcher",
    )
    parser.add_argument(
        "--backend",
        metavar="SPEC",
        default=None,
        help="storage backend for the dips matcher "
        "(memory, sqlite, or sqlite:PATH; default: the checkpoint "
        "manifest's backend, else REPRO_RDB_BACKEND, else memory)",
    )
    parser.add_argument(
        "--kernels",
        choices=("off", "closure", "exec"),
        default=None,
        help="compiled match kernels for the recovered rete/sharded "
        "matcher (default: REPRO_KERNELS, else closure)",
    )
    parser.add_argument("--strategy", choices=("lex", "mea"), default=None)
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        default=None,
        help="firing-pool size for the `parallel` command "
        "(default: REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--on-error",
        metavar="POLICY",
        default=None,
        help="firing error policy for the recovered session "
        "(halt|skip|retry[:n[:backoff[:then]]]|quarantine[:k]); "
        "policies are not persisted, so restate yours here",
    )
    parser.add_argument("--run", type=int, metavar="N")
    parser.add_argument("--watch", type=int, default=1)
    parser.add_argument("--profile", action="store_true")
    parser.add_argument("--profile-json", metavar="FILE")
    parser.add_argument(
        "--checkpoint",
        action="store_true",
        help="write a checkpoint after --run completes",
    )
    parser.add_argument(
        "--no-wal",
        action="store_true",
        help="recover read-only: do not resume logging to the WAL",
    )
    options = parser.parse_args(argv)

    stats = None
    if options.profile or options.profile_json is not None:
        from repro.engine.stats import MatchStats

        stats = MatchStats()
    try:
        engine = RuleEngine.recover(
            options.wal_dir,
            matcher=options.matcher,
            backend=options.backend,
            kernels=options.kernels,
            strategy=options.strategy,
            stats=stats,
            durability=not options.no_wal,
            on_error=options.on_error,
            workers=options.workers,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    report = engine.recovery_report
    source = (
        f"checkpoint {report.checkpoint_path}"
        if report.checkpoint_path
        else "empty state (no checkpoint)"
    )
    notes = []
    if report.tail_damaged:
        notes.append("damaged tail dropped")
    if report.dropped_records:
        notes.append(
            f"incomplete firing rolled back, "
            f"{report.dropped_records} record(s)"
        )
    print(
        f"recovered from {source}: {report.restored_wmes} WME(s) "
        f"restored, {report.replayed_deltas} delta(s) and "
        f"{report.replayed_firings} firing(s) replayed"
        + (f" ({'; '.join(notes)})" if notes else "")
    )
    session = ReplSession(watch=options.watch, engine=engine)
    return _run_session(session, options)


def _serve_main(argv):
    parser = argparse.ArgumentParser(
        prog="repro-ops serve",
        description="run the multi-tenant rule service "
        "(NDJSON-over-TCP; see docs/SERVICE.md)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=7471,
        help="listen port (0 = ephemeral; default 7471)",
    )
    parser.add_argument(
        "--wal-root",
        metavar="DIR",
        default=None,
        help="enable per-session durability: each session logs to "
        "DIR/<session-id> (default: durability off)",
    )
    parser.add_argument(
        "--fsync", choices=("always", "batch", "off"), default="batch",
        help="session WAL fsync policy (default: batch)",
    )
    parser.add_argument(
        "--matcher",
        choices=("rete", "treat", "naive", "dips", "sharded"),
        default="rete",
        help="default matcher for sessions that do not choose one",
    )
    parser.add_argument(
        "--kernels", choices=("off", "closure", "exec"), default=None,
        help="default compiled-kernel mode (REPRO_KERNELS, else closure)",
    )
    parser.add_argument("--backend", metavar="SPEC", default=None,
                        help="default dips storage backend")
    parser.add_argument("--strategy", choices=("lex", "mea"),
                        default="lex")
    parser.add_argument(
        "--on-error", metavar="POLICY", default="halt",
        help="default per-session firing error policy",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=256,
        help="session table size; beyond it the LRU idle session is "
        "evicted (default 256)",
    )
    parser.add_argument(
        "--idle-ttl", type=float, default=300.0,
        help="seconds of inactivity before a session is checkpointed "
        "and evicted (default 300)",
    )
    parser.add_argument(
        "--session-queue", type=int, default=16,
        help="pending requests admitted per session (default 16)",
    )
    parser.add_argument(
        "--global-queue", type=int, default=128,
        help="pending requests admitted server-wide (default 128)",
    )
    parser.add_argument(
        "--engine-workers", type=int, default=None,
        help="threads running engine work (default: REPRO_WORKERS "
        "or 4)",
    )
    parser.add_argument(
        "--run-limit", type=int, default=10_000,
        help="firing-limit watchdog cap per run request (default 10000)",
    )
    parser.add_argument(
        "--run-wall-clock", type=float, default=30.0,
        help="wall-clock watchdog cap per run request, seconds "
        "(default 30)",
    )
    parser.add_argument(
        "--run-seconds", type=float, default=None, metavar="S",
        help="serve for S seconds then exit cleanly (smoke tests)",
    )
    parser.add_argument(
        "--chaos", metavar="SPEC", default=None,
        help="inject faults, e.g. 'disconnect=0.05,delay=0.05,"
        "kill=0.02,seed=7' (see repro.service.chaos; soak testing "
        "only)",
    )
    parser.add_argument(
        "--drain-grace", type=float, default=10.0,
        help="seconds a drain shutdown (SIGTERM) waits for in-flight "
        "requests before checkpointing sessions (default 10)",
    )
    parser.add_argument(
        "--journal-limit", type=int, default=512,
        help="idempotency keys remembered per session for "
        "request dedup (default 512)",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=5,
        help="consecutive engine failures that open a session's "
        "circuit breaker (default 5)",
    )
    parser.add_argument(
        "--breaker-cooldown", type=float, default=1.0,
        help="seconds an open breaker rejects requests before "
        "admitting a half-open probe (default 1)",
    )
    options = parser.parse_args(argv)

    import asyncio
    import signal

    from repro.service.server import RuleService, ServiceConfig

    workers = options.engine_workers
    if workers is None:
        workers = int(os.environ.get("REPRO_WORKERS", "0") or 0) or 4
    config = ServiceConfig(
        host=options.host,
        port=options.port,
        wal_root=options.wal_root,
        fsync=options.fsync,
        matcher=options.matcher,
        kernels=options.kernels,
        backend=options.backend,
        strategy=options.strategy,
        on_error=options.on_error,
        max_sessions=options.max_sessions,
        idle_ttl=options.idle_ttl,
        session_queue=options.session_queue,
        global_queue=options.global_queue,
        engine_workers=workers,
        run_limit=options.run_limit,
        run_wall_clock=options.run_wall_clock,
        chaos=options.chaos,
        drain_grace=options.drain_grace,
        journal_limit=options.journal_limit,
        breaker_threshold=options.breaker_threshold,
        breaker_cooldown=options.breaker_cooldown,
    )

    async def _serve():
        service = RuleService(config)
        await service.start()
        host, port = service.address
        durable = (
            f"wal_root={options.wal_root}" if options.wal_root
            else "durability off"
        )
        chaos = f", chaos={options.chaos}" if options.chaos else ""
        print(
            f"rule service listening on {host}:{port} "
            f"({durable}, {workers} engine worker(s), "
            f"max {options.max_sessions} sessions{chaos})",
            flush=True,
        )
        # SIGTERM → graceful drain: stop accepting, finish in-flight
        # requests, checkpoint every session for fast resume.
        drain_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(
                signal.SIGTERM, drain_requested.set
            )
        except (NotImplementedError, RuntimeError):
            pass  # platform without signal-handler support
        try:
            wait_drain = asyncio.create_task(drain_requested.wait())
            if options.run_seconds is not None:
                serving = asyncio.create_task(
                    asyncio.sleep(options.run_seconds)
                )
            else:
                serving = asyncio.create_task(service.serve_forever())
            done, _pending = await asyncio.wait(
                {serving, wait_drain},
                return_when=asyncio.FIRST_COMPLETED,
            )
            serving.cancel()
            wait_drain.cancel()
            for task in done:
                if not task.cancelled() and task.exception():
                    raise task.exception()
            if drain_requested.is_set():
                print(
                    "SIGTERM: draining (finishing in-flight requests, "
                    "checkpointing sessions)",
                    file=sys.stderr, flush=True,
                )
                await service.stop(drain=True)
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted; sessions closed", file=sys.stderr)
    return 0


def main(argv=None):
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "recover":
        return _recover_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-ops",
        description="OPS5/C5 interpreter with set-oriented constructs "
        "(Gordin & Pasik, SIGMOD 1991 reproduction)",
    )
    parser.add_argument("program", nargs="?", help="program file to load")
    parser.add_argument(
        "--matcher",
        choices=("rete", "treat", "naive", "dips", "sharded"),
        default="rete",
    )
    parser.add_argument(
        "--backend",
        metavar="SPEC",
        default=None,
        help="storage backend for the dips matcher: memory (default), "
        "sqlite (in-memory SQL pushdown), or sqlite:PATH (file-backed, "
        "out-of-core); REPRO_RDB_BACKEND sets the default",
    )
    parser.add_argument(
        "--kernels",
        choices=("off", "closure", "exec"),
        default=None,
        help="compiled match kernels for the rete/sharded matchers "
        "(default: REPRO_KERNELS, else closure); off restores the "
        "interpreted test walk — see docs/KERNELS.md",
    )
    parser.add_argument("--strategy", choices=("lex", "mea"), default="lex")
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        default=None,
        help="firing-pool size for the `parallel` command "
        "(default: REPRO_WORKERS or 1; 1 = sequential)",
    )
    parser.add_argument(
        "--on-error",
        metavar="POLICY",
        default="halt",
        help="firing error policy: halt (default), skip, "
        "retry[:n[:backoff[:then]]], or quarantine[:k]",
    )
    parser.add_argument(
        "--run",
        type=int,
        metavar="N",
        help="batch mode: run at most N firings and exit",
    )
    parser.add_argument("--watch", type=int, default=1)
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect match statistics; print the profile on exit",
    )
    parser.add_argument(
        "--profile-json",
        metavar="FILE",
        help="write the structured stats snapshot to FILE on exit "
        "(implies --profile)",
    )
    parser.add_argument(
        "--wal-dir",
        metavar="DIR",
        help="enable durability: write-ahead log WM changes and "
        "firings into DIR",
    )
    parser.add_argument(
        "--fsync",
        choices=("always", "batch", "off"),
        default="batch",
        help="WAL fsync policy (default: batch)",
    )
    parser.add_argument(
        "--checkpoint",
        action="store_true",
        help="write a durability checkpoint after --run completes",
    )
    options = parser.parse_args(argv)

    try:
        session = ReplSession(
            matcher=options.matcher,
            strategy=options.strategy,
            watch=options.watch,
            profile=options.profile or options.profile_json is not None,
            wal_dir=options.wal_dir,
            fsync=options.fsync,
            on_error=options.on_error,
            workers=options.workers,
            backend=options.backend,
            kernels=options.kernels,
        )
    except ReproError as error:
        # E.g. --wal-dir pointing at a previous session's log: a fresh
        # engine refuses it and directs the user to `recover`.
        print(f"error: {error}", file=sys.stderr)
        return 1
    return _run_session(session, options)


if __name__ == "__main__":
    sys.exit(main())
