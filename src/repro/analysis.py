"""Static analysis of rules: binding sites and match tests.

Every matcher (Rete, TREAT, naive, DIPS) needs the same decomposition of
a rule's LHS:

* **constant tests** — checks against literals/disjunctions, evaluable
  on a lone WME (they parameterise the alpha network);
* **intra-CE tests** — two occurrences of one variable inside the same
  CE, also evaluable on a lone WME;
* **join tests** — a variable occurrence whose *binding site* lies in an
  earlier CE, evaluated between the candidate WME and a partial match;
* **binding sites** — for each pattern variable, the first ``=``
  occurrence in a non-negated CE (``(level, attribute)``); the RHS
  executor reads scalar values and set domains through these.

The analysis also validates OPS5 binding discipline: a variable must be
bound (``=`` in a positive CE) before it is used with another predicate
or in a later CE; variables bound only inside a negated CE stay local to
it.
"""

from __future__ import annotations

from repro import symbols
from repro.errors import RuleError
from repro.lang import ast


class ConstantCheck:
    """A check against a literal value or disjunction, local to one WME."""

    __slots__ = ("attribute", "predicate", "operand")

    def __init__(self, attribute, predicate, operand):
        self.attribute = attribute
        self.predicate = predicate
        self.operand = operand  # a raw value or tuple of values (disjunction)

    def matches(self, wme):
        value = wme.get(self.attribute)
        if isinstance(self.operand, tuple):
            return any(
                symbols.values_equal(value, candidate)
                for candidate in self.operand
            )
        return symbols.apply_predicate(self.predicate, value, self.operand)

    def key(self):
        return ("const", self.attribute, self.predicate, self.operand)

    def __repr__(self):
        return f"ConstantCheck(^{self.attribute} {self.predicate} {self.operand!r})"


class IntraTest:
    """Two attributes of the same WME compared to each other."""

    __slots__ = ("attribute", "predicate", "other_attribute")

    def __init__(self, attribute, predicate, other_attribute):
        self.attribute = attribute
        self.predicate = predicate
        self.other_attribute = other_attribute

    def matches(self, wme):
        return symbols.apply_predicate(
            self.predicate,
            wme.get(self.attribute),
            wme.get(self.other_attribute),
        )

    def key(self):
        return ("intra", self.attribute, self.predicate, self.other_attribute)

    def __repr__(self):
        return (
            f"IntraTest(^{self.attribute} {self.predicate} "
            f"^{self.other_attribute})"
        )


class JoinTest:
    """Candidate WME attribute compared against an earlier binding site."""

    __slots__ = ("attribute", "predicate", "bound_level", "bound_attribute")

    def __init__(self, attribute, predicate, bound_level, bound_attribute):
        self.attribute = attribute
        self.predicate = predicate
        self.bound_level = bound_level
        self.bound_attribute = bound_attribute

    def matches(self, wme, lookup):
        """*lookup(level, attribute)* resolves the bound value."""
        bound = lookup(self.bound_level, self.bound_attribute)
        return symbols.apply_predicate(
            self.predicate, wme.get(self.attribute), bound
        )

    def key(self):
        return (
            "join",
            self.attribute,
            self.predicate,
            self.bound_level,
            self.bound_attribute,
        )

    def __repr__(self):
        return (
            f"JoinTest(^{self.attribute} {self.predicate} "
            f"ce{self.bound_level}.^{self.bound_attribute})"
        )


class CEAnalysis:
    """The decomposed tests of one condition element."""

    __slots__ = (
        "level",
        "ce",
        "constant_checks",
        "intra_tests",
        "join_tests",
    )

    def __init__(self, level, ce, constant_checks, intra_tests, join_tests):
        self.level = level
        self.ce = ce
        self.constant_checks = tuple(constant_checks)
        self.intra_tests = tuple(intra_tests)
        self.join_tests = tuple(join_tests)

    def alpha_key(self):
        """Key identifying this CE's alpha memory (enables sharing)."""
        local = tuple(
            sorted(
                [check.key() for check in self.constant_checks]
                + [test.key() for test in self.intra_tests]
            )
        )
        return (self.ce.wme_class,) + local

    def wme_passes_alpha(self, wme):
        """True when *wme* satisfies class + constant + intra tests."""
        if wme.wme_class != self.ce.wme_class:
            return False
        return all(
            check.matches(wme) for check in self.constant_checks
        ) and all(test.matches(wme) for test in self.intra_tests)

    def wme_passes_joins(self, wme, lookup):
        """True when *wme* satisfies every join test against *lookup*."""
        return all(test.matches(wme, lookup) for test in self.join_tests)


class RuleAnalysis:
    """Full static analysis of one rule."""

    def __init__(self, rule):
        self.rule = rule
        self.binding_sites = {}
        self.ce_analyses = []
        self._analyse()
        self.set_variable_sites = {
            name: self.binding_sites[name]
            for name in rule.set_variables()
            if name in self.binding_sites
        }
        self.scalar_ce_levels = tuple(
            index
            for index, ce in enumerate(rule.ces)
            if not ce.set_oriented and not ce.negated
        )
        self.set_ce_levels = tuple(
            index for index, ce in enumerate(rule.ces) if ce.set_oriented
        )

    # -- construction ------------------------------------------------------

    def _analyse(self):
        rule = self.rule
        for level, ce in enumerate(rule.ces):
            constant_checks = []
            intra_tests = []
            join_tests = []
            local_sites = {}
            for test in ce.tests:
                for check in test.checks:
                    self._classify_check(
                        level,
                        ce,
                        test.attribute,
                        check,
                        constant_checks,
                        intra_tests,
                        join_tests,
                        local_sites,
                    )
            if not ce.negated:
                for name, attribute in local_sites.items():
                    if name not in self.binding_sites:
                        self.binding_sites[name] = (level, attribute)
            self.ce_analyses.append(
                CEAnalysis(level, ce, constant_checks, intra_tests, join_tests)
            )
        self._validate_rhs_variables()

    def _classify_check(
        self,
        level,
        ce,
        attribute,
        check,
        constant_checks,
        intra_tests,
        join_tests,
        local_sites,
    ):
        operand = check.operand
        if isinstance(operand, ast.Const):
            constant_checks.append(
                ConstantCheck(attribute, check.predicate, operand.value)
            )
            return
        if isinstance(operand, ast.Disjunction):
            constant_checks.append(
                ConstantCheck(attribute, "=", tuple(operand.values))
            )
            return
        # A variable occurrence.
        name = operand.name
        if name in local_sites:
            intra_tests.append(
                IntraTest(attribute, check.predicate, local_sites[name])
            )
            return
        if name in self.binding_sites:
            bound_level, bound_attribute = self.binding_sites[name]
            join_tests.append(
                JoinTest(
                    attribute, check.predicate, bound_level, bound_attribute
                )
            )
            # A second '=' site in this CE also lets later local uses
            # compare against this attribute directly.
            if check.predicate == "=":
                local_sites.setdefault(name, attribute)
            return
        # First occurrence anywhere.
        if check.predicate != "=":
            raise RuleError(
                f"rule {self.rule.name}: variable <{name}> used with "
                f"'{check.predicate}' before being bound"
            )
        local_sites[name] = attribute

    def _validate_rhs_variables(self):
        """Negated-CE-local variables must not leak into later CEs/RHS."""
        rule = self.rule
        for level, ce in enumerate(rule.ces):
            if not ce.negated:
                continue
            for name in ce.variables():
                if name in self.binding_sites:
                    continue
                # Bound only inside negated CEs: any use elsewhere is an
                # error.  Later CEs would have raised "used before bound"
                # already (their first sight has no site), unless they
                # bind it themselves, which is fine.  Check the RHS.
                if self._rhs_mentions(name):
                    raise RuleError(
                        f"rule {rule.name}: variable <{name}> is bound only "
                        f"inside a negated CE and cannot be used on the RHS"
                    )

    def _rhs_mentions(self, name):
        element_vars = set(self.rule.element_vars())
        bound_names = set()
        for action in ast.walk_actions(self.rule.actions):
            if isinstance(action, ast.BindAction):
                bound_names.add(action.name)
            for expression in _action_expressions(action):
                for node in ast.walk_expr(expression):
                    if isinstance(node, ast.Var) and node.name == name:
                        if name in element_vars or name in bound_names:
                            continue
                        return True
        return False

    # -- runtime helpers -----------------------------------------------------

    def variable_value(self, name, wme_at):
        """Resolve a scalar variable via its binding site.

        *wme_at(level)* returns the WME filling a CE slot.
        """
        site = self.binding_sites.get(name)
        if site is None:
            raise RuleError(
                f"rule {self.rule.name}: no binding site for <{name}>"
            )
        level, attribute = site
        wme = wme_at(level)
        if wme is None:
            raise RuleError(
                f"rule {self.rule.name}: <{name}> is bound at negated "
                f"CE {level + 1}"
            )
        return wme.get(attribute)


def _action_expressions(action):
    """The expression operands of one action (non-recursive)."""
    if isinstance(action, ast.MakeAction):
        return [expr for _, expr in action.assignments]
    if isinstance(action, (ast.ModifyAction, ast.SetModifyAction)):
        return [expr for _, expr in action.assignments]
    if isinstance(action, ast.WriteAction):
        return list(action.arguments)
    if isinstance(action, ast.BindAction):
        return [action.expression]
    if isinstance(action, ast.IfAction):
        return [action.condition]
    return []
