"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Subsystems define narrower classes:
parsing (:class:`ParseError`), rule semantics (:class:`RuleError`),
working-memory misuse (:class:`WorkingMemoryError`), the inference engine
(:class:`EngineError`), the relational substrate (:class:`DatabaseError`),
and the DIPS layer (:class:`DipsError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ParseError(ReproError):
    """A rule or SQL source string could not be parsed.

    Carries the ``line`` and ``column`` (1-based) where parsing failed,
    when known, so error messages point at the offending token.
    """

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class RuleError(ReproError):
    """A rule is syntactically valid but semantically ill-formed.

    Examples: a ``:scalar`` clause naming a variable that never appears,
    an aggregate over a non-set variable, an RHS referencing an unbound
    pattern variable, or a ``foreach`` over a scalar.
    """


class WorkingMemoryError(ReproError):
    """Invalid working-memory operation.

    Examples: making a WME of an undeclared class, referencing an
    undeclared attribute, or removing a time tag that is not present.
    """


class EngineError(ReproError):
    """Runtime failure inside the recognize-act cycle or RHS execution."""


class ConflictResolutionError(EngineError):
    """An unknown or inapplicable conflict-resolution strategy was chosen."""


class FiringError(EngineError):
    """A rule firing failed and was rolled back atomically.

    Raised (under the ``halt`` error policy) after the engine has
    restored working memory, the conflict set, and the refraction
    stamp to their exact pre-fire state.  Carries enough context to
    diagnose the poison instantiation:

    ``rule_name``, ``cycle``, ``attempt`` (1-based), ``action_path``
    (indexes into the RHS action tree, outermost first; empty when the
    failure preceded the first action), ``stage`` (``"rhs"`` for an
    action failure, ``"commit"`` for a write-ahead-log failure while
    publishing the firing's effects), and ``__cause__`` — the original
    exception.
    """

    def __init__(self, message, *, rule_name, cycle, attempt=1,
                 action_path=(), stage="rhs"):
        super().__init__(message)
        self.rule_name = rule_name
        self.cycle = cycle
        self.attempt = attempt
        self.action_path = tuple(action_path)
        self.stage = stage

    @property
    def action_index(self):
        """Top-level index of the failed RHS action (None if before any)."""
        return self.action_path[0] if self.action_path else None


class LivelockError(EngineError):
    """A run watchdog detected a refire cycle and ``on_livelock='raise'``.

    The same instantiation identity (rule plus WME *contents*, not time
    tags) fired more than the configured threshold with no net change
    to working-memory contents between firings.
    """


class DatabaseError(ReproError):
    """Base error for the relational substrate (:mod:`repro.rdb`)."""


class SchemaError(DatabaseError):
    """A table/schema definition or row violates declared structure."""


class StorageError(DatabaseError):
    """A storage backend failed or rejected an operation.

    Raised for unknown backend specs, values outside the backend's
    storable domain (the substrate's value domain is strings, numbers,
    and NULL), and unexpected errors surfaced by an out-of-core engine
    (e.g. sqlite).  Batch operations that raise this guarantee the
    table is unchanged — writes are all-or-nothing per statement.
    """


class QueryError(DatabaseError):
    """A logical query plan is invalid or cannot be evaluated."""


class SqlError(QueryError):
    """The mini-SQL dialect parser rejected a statement."""


class TransactionError(DatabaseError):
    """Illegal transaction state transition (e.g. commit after abort)."""


class TransactionConflict(TransactionError):
    """Two transactions made conflicting accesses; the loser aborts.

    This is the mechanism DIPS relies on (paper section 8.1): concurrently
    executed instantiations that touch the same WMEs invalidate each other.
    """


class DipsError(ReproError):
    """Failure in the DIPS DBMS-based matcher (:mod:`repro.dips`)."""


class DurabilityError(ReproError):
    """Base error for the durability subsystem (:mod:`repro.durability`)."""


class WalError(DurabilityError):
    """The write-ahead log cannot be appended to or is malformed.

    Raised when opening a log directory for append finds mid-log
    corruption (use :meth:`RuleEngine.recover` instead), or when a
    configuration value (fsync policy, segment size) is invalid.
    """


class RecoveryError(DurabilityError):
    """Recovery cannot reconstruct a consistent state.

    Raised for silently-corrupt WAL middles (a CRC-failed record with
    valid records after it), missing segments, damaged checkpoints, and
    log records that reference state the replay does not have.  A
    torn or truncated *final* record is NOT an error — recovery drops
    the unflushed tail and proceeds.
    """


class ServiceError(ReproError):
    """Failure in the rule-service layer (:mod:`repro.service`).

    Raised for session-registry misuse (unknown or duplicate session
    ids, ids unsafe to map onto a WAL directory name) and for server
    configuration problems.  Protocol-level failures are reported to
    the client as error responses, not exceptions.
    """


class AdmissionError(ServiceError):
    """A request was rejected by admission control (backpressure).

    Carries ``retry_after`` (seconds), surfaced to clients as a
    ``busy`` response so they can back off and retry instead of piling
    onto a saturated session or server.
    """

    def __init__(self, message, retry_after=0.05):
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineError(ServiceError):
    """A request's deadline expired before the server could serve it.

    Raised when a ``deadline_ms``-carrying request is still queued (on
    admission, the session lock, or the executor) when its deadline
    passes.  Surfaced to clients as a ``deadline`` error response; by
    construction the request was *not* applied, so retrying with a
    fresh deadline is always safe.  A deadline that expires mid-run
    does not raise — the run watchdog stops the run and reports
    ``stopped="deadline"`` in an ok response instead.
    """
