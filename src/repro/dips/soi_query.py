"""Generation of the Figure 6 SOI-retrieval query for arbitrary rules.

The paper shows, for its two-CE ``rule-1``, the query::

    select COND-E.WME-TAG, COND-W.WME-TAG
    from COND-E, COND-W
    where COND-E.RULE-ID = COND-W.RULE-ID
      and COND-E.WME-TAGs is not NULL
      and COND-W.WME-TAGs is not NULL
    group-by COND-E.WME-TAGS

"All matching instantiations of a set-oriented rule are initially
selected.  These are then formed into groups based on the WME
identifiers of the non-set-oriented CEs and the set-oriented PVs
specified in the scalar clause" (§8.2).  :func:`soi_query_sql`
generalises this to any rule: one COND-table alias per CE, restricted
to the rule and ordinal, shared-variable join conditions, NOT NULL tag
filters, and a GROUP BY over the scalar CEs' tags plus the ``:scalar``
variables' value columns, collecting the set CEs' tags per group.
"""

from __future__ import annotations

from repro.analysis import RuleAnalysis
from repro.dips.cond import cond_table_name


def _alias(level):
    return f"c{level + 1}"


def _quote(name):
    """Quote a column name: rule attributes may collide with keywords."""
    return f'"{name}"'


_SQL_PREDICATES = {
    "=": "=",
    "<>": "<>",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}


def _join_conditions(rule, analysis):
    """Cross-CE conditions, straight from the analysed join tests."""
    from repro.errors import DipsError

    conditions = []
    for ce_analysis in analysis.ce_analyses:
        if ce_analysis.ce.negated:
            # Negated CEs are applied as a residual blocker check by
            # the matcher, not in the positive join query.
            continue
        for test in ce_analysis.join_tests:
            sql_op = _SQL_PREDICATES.get(test.predicate)
            if sql_op is None:
                raise DipsError(
                    f"rule {rule.name}: predicate {test.predicate!r} has "
                    f"no SQL translation in the DIPS matcher"
                )
            conditions.append(
                f"{_alias(ce_analysis.level)}.{_quote(test.attribute)} "
                f"{sql_op} "
                f"{_alias(test.bound_level)}.{_quote(test.bound_attribute)}"
            )
    return conditions


def soi_query_sql(rule, analysis=None):
    """The SQL statement retrieving this rule's (set) instantiations.

    For a set-oriented rule the result has one row per SOI: the scalar
    CEs' tags and ``:scalar`` values as grouping columns, and a
    ``collect``-ed tag list per set-oriented CE.  For a tuple-oriented
    rule there is no GROUP BY and each row is one instantiation.
    """
    if analysis is None:
        analysis = RuleAnalysis(rule)

    from_parts = []
    where_parts = []
    for level, ce in enumerate(rule.ces):
        if ce.negated:
            continue
        alias = _alias(level)
        from_parts.append(f'"{cond_table_name(ce.wme_class)}" AS {alias}')
        where_parts.append(f"{alias}.rule_id = '{rule.name}'")
        where_parts.append(f"{alias}.cen = {level + 1}")
        where_parts.append(f"{alias}.wme_tag IS NOT NULL")
    where_parts.extend(_join_conditions(rule, analysis))

    group_keys = []
    select_parts = []
    for level in analysis.scalar_ce_levels:
        column = f"{_alias(level)}.wme_tag"
        select_parts.append(f"{column} AS tag_{level + 1}")
        group_keys.append(column)
    scalar_pv_sites = [
        (name, analysis.binding_sites[name])
        for name in rule.scalar_vars
        if name in analysis.binding_sites
        and rule.ces[analysis.binding_sites[name][0]].set_oriented
    ]
    for name, (level, attribute) in scalar_pv_sites:
        column = f"{_alias(level)}.{_quote(attribute)}"
        select_parts.append(f'{column} AS "{name}"')
        group_keys.append(column)

    if rule.is_set_oriented:
        for level in analysis.set_ce_levels:
            select_parts.append(
                f"COLLECT({_alias(level)}.wme_tag) AS tags_{level + 1}"
            )
        select_clause = ", ".join(select_parts)
        group_clause = (
            f" GROUP BY {', '.join(group_keys)}" if group_keys else ""
        )
        if not group_keys:
            # Pure-set rule: one SOI of everything -> aggregate query.
            return (
                f"SELECT {select_clause} FROM {', '.join(from_parts)} "
                f"WHERE {' AND '.join(where_parts)}"
            )
        return (
            f"SELECT {select_clause} FROM {', '.join(from_parts)} "
            f"WHERE {' AND '.join(where_parts)}{group_clause}"
        )

    select_clause = ", ".join(
        f"{_alias(level)}.wme_tag AS tag_{level + 1}"
        for level, ce in enumerate(rule.ces)
        if not ce.negated
    )
    return (
        f"SELECT {select_clause} FROM {', '.join(from_parts)} "
        f"WHERE {' AND '.join(where_parts)}"
    )
