"""A Matcher that matches by querying COND tables (set-oriented DIPS).

Where Rete pushes deltas through a compiled network, the DIPS matcher
does what the paper's section 8 describes: working-memory changes
update the COND tables (instance rows keyed by WME identifier), and the
conflict set is obtained by running each rule's SOI-retrieval query
(:func:`repro.dips.soi_query.soi_query_sql`) and diffing the result
against the previous cycle.  SOIs found this way reuse the grouped-SOI
semantics of :class:`repro.match.grouping.SoiGrouper`, so ``:test``
evaluation, ordering, and refire versions match the other matchers —
the differential tests hold DIPS to the same behaviour as Rete.
"""

from __future__ import annotations

from repro.core.instantiation import MatchToken
from repro.dips.cond import CondStore
from repro.dips.soi_query import soi_query_sql
from repro.errors import DipsError
from repro.match.base import Matcher
from repro.match.grouping import SoiGrouper
from repro.core.instantiation import Instantiation
from repro.rdb.sql import run_sql


class _DipsRule:
    __slots__ = ("rule", "analysis", "grouper", "sql", "tokens",
                 "instantiations")

    def __init__(self, rule, analysis, grouper, sql):
        self.rule = rule
        self.analysis = analysis
        self.grouper = grouper
        self.sql = sql
        self.tokens = set()
        self.instantiations = {}


class DipsMatcher(Matcher):
    """Match through the relational substrate, per paper section 8."""

    def __init__(self, db=None, backend=None):
        super().__init__()
        self.store = CondStore(db, backend=backend)
        self._rules = {}
        self._restoring = False
        self.stats = {"queries_run": 0, "rows_retrieved": 0}

    @property
    def db(self):
        return self.store.db

    @property
    def storage_backend(self):
        """The rdb storage backend the COND tables live on."""
        return self.store.db.backend

    def close(self):
        """Release the storage backend (sqlite connections)."""
        self.store.db.close()

    # -- checkpoint restore --------------------------------------------------

    def begin_restore(self):
        """Enter restore mode: COND tables were primed from a checkpoint
        member, so WM events replayed by the restore must not repopulate
        them (or refresh rules row-by-row)."""
        self._restoring = True

    def end_restore(self):
        """Leave restore mode and run every rule's SOI query once."""
        self._restoring = False
        for state in self._rules.values():
            self._refresh(state)

    def add_rule(self, rule):
        if rule.name in self._rules:
            raise DipsError(f"rule {rule.name} already added")
        analysis = self.store.add_rule(rule)
        grouper = None
        if rule.is_set_oriented:
            grouper = SoiGrouper(rule, analysis, self.listener)
        sql = soi_query_sql(rule, analysis)
        self._rules[rule.name] = _DipsRule(rule, analysis, grouper, sql)
        if self.wm is not None:
            # Backfill only the NEW rule's instance rows: wme_added
            # spans every registered rule and would duplicate the
            # existing rules' rows (corrupting the Figure 6 grouped
            # aggregates, which COUNT/SUM over instance rows).
            self.store.backfill_rule(rule.name, list(self.wm))
            self._refresh(self._rules[rule.name])

    def remove_rule(self, rule_name):
        """Excise a rule: drop its COND rows and live instantiations."""
        state = self._rules.pop(rule_name, None)
        if state is None:
            raise DipsError(f"no rule named {rule_name}")
        self.store.remove_rule(rule_name)
        if state.grouper is not None:
            for instantiation in list(
                state.grouper._instantiations.values()
            ):
                self.listener.retract(instantiation)
        else:
            for instantiation in state.instantiations.values():
                self.listener.retract(instantiation)

    def set_listener(self, listener):
        super().set_listener(listener)
        for state in self._rules.values():
            if state.grouper is not None:
                state.grouper.listener = listener

    # -- events ------------------------------------------------------------

    def on_event(self, event):
        if self._restoring:
            return
        if event.is_add:
            self.store.wme_added(event.wme)
        else:
            self.store.wme_removed(event.wme)
        for state in self._rules.values():
            self._refresh(state)

    def on_batch(self, events):
        """One set-oriented pass per delta-set (paper section 8).

        The whole batch updates the COND tables as one grouped
        DELETE/INSERT per table (:meth:`CondStore.apply_batch`), then
        each rule's SOI query runs *once* against the settled tables —
        instead of table-update plus full refresh per event.
        """
        if not events or self._restoring:
            return
        statements = self.store.apply_batch(events)
        self.match_stats.incr("dips_batch_statements", statements)
        for state in self._rules.values():
            self._refresh(state)

    # -- query-and-diff ------------------------------------------------------

    def _refresh(self, state):
        fresh = set(self._query_tokens(state))
        stale = state.tokens - fresh
        new = fresh - state.tokens
        # Keep the ORIGINAL objects for surviving tokens: the grouper
        # removes by identity, so handing it freshly-built equal tokens
        # later would not match.
        state.tokens = (state.tokens - stale) | new
        if state.grouper is not None:
            for token in stale:
                state.grouper.remove_token(token)
            for token in sorted(new, key=lambda t: t.time_tags()):
                state.grouper.add_token(token)
            return
        for token in stale:
            instantiation = state.instantiations.pop(token, None)
            if instantiation is not None:
                self.listener.retract(instantiation)
        for token in new:
            instantiation = Instantiation(state.rule, token)
            state.instantiations[token] = instantiation
            self.listener.insert(instantiation)

    def _query_tokens(self, state):
        """Run the rule's instantiation query; decode rows into tokens.

        For set-oriented rules we deliberately query the *ungrouped*
        instantiation relation (the grouping and :test live in the
        shared SoiGrouper); the grouped Figure 6 query is exposed via
        :meth:`soi_rows` for inspection and the figure's reproduction.
        """
        rule = state.rule
        sql = _ungrouped_query(rule, state.analysis)
        self.stats["queries_run"] += 1
        self.match_stats.incr("dips_queries_run")
        rows = run_sql(self.db, sql)
        self.stats["rows_retrieved"] += len(rows)
        self.match_stats.incr("dips_rows_retrieved", len(rows))
        tokens = []
        for row in rows:
            wmes = []
            for level, ce in enumerate(rule.ces):
                if ce.negated:
                    wmes.append(None)
                    continue
                tag = row[f"tag_{level + 1}"]
                wme = self.wm.get(tag) if self.wm is not None else None
                if wme is None:
                    break
                wmes.append(wme)
            else:
                token = MatchToken(wmes)
                if not self._blocked(state, token):
                    tokens.append(token)
        return tokens

    def _blocked(self, state, token):
        """Residual negation: does any COND instance row block *token*?

        For each negated CE the blocker candidates are exactly its
        instance rows (rule_id, cen, wme_tag NOT NULL) in the class's
        COND table; the CE's join tests are evaluated between the row's
        stored attribute values and the token's bindings.
        """
        for ce_analysis in state.analysis.ce_analyses:
            if not ce_analysis.ce.negated:
                continue
            table = self.store.cond_table(ce_analysis.ce.wme_class)
            for row in table.select(
                lambda r, level=ce_analysis.level: (
                    r.get("rule_id") == state.rule.name
                    and r.get("cen") == level + 1
                    and r.get("wme_tag") is not None
                )
            ):
                blocker = _RowView(row)
                if ce_analysis.wme_passes_joins(
                    blocker, lambda lvl, attr: (
                        None
                        if token.wme_at(lvl) is None
                        else token.wme_at(lvl).get(attr)
                    )
                ):
                    return True
        return False

    def soi_rows(self, rule_name):
        """Run the rule's Figure 6 grouped query; returns its rows."""
        state = self._rules[rule_name]
        return run_sql(self.db, state.sql)

    def soi_query(self, rule_name):
        """The SQL text of the rule's SOI-retrieval query."""
        return self._rules[rule_name].sql


class _RowView:
    """Adapts a COND instance row to the WME ``get`` protocol."""

    __slots__ = ("row",)

    def __init__(self, row):
        self.row = row

    def get(self, attribute):
        value = self.row.get(attribute)
        return "nil" if value is None else value


def _ungrouped_query(rule, analysis):
    """The pre-grouping instantiation query (one row per match)."""
    from repro.dips.soi_query import _alias, _join_conditions
    from repro.dips.cond import cond_table_name

    from_parts = []
    where_parts = []
    for level, ce in enumerate(rule.ces):
        if ce.negated:
            continue
        alias = _alias(level)
        from_parts.append(f'"{cond_table_name(ce.wme_class)}" AS {alias}')
        where_parts.append(f"{alias}.rule_id = '{rule.name}'")
        where_parts.append(f"{alias}.cen = {level + 1}")
        where_parts.append(f"{alias}.wme_tag IS NOT NULL")
    where_parts.extend(_join_conditions(rule, analysis))
    select_clause = ", ".join(
        f"{_alias(level)}.wme_tag AS tag_{level + 1}"
        for level, ce in enumerate(rule.ces)
        if not ce.negated
    )
    return (
        f"SELECT {select_clause} FROM {', '.join(from_parts)} "
        f"WHERE {' AND '.join(where_parts)}"
    )
