"""DIPS: production matching inside the relational substrate (paper §8).

Reimplements the DIPS idea (Sellis, Lin & Raschid 1988/89) with the
paper's set-oriented extension:

* :mod:`repro.dips.cond` — COND tables, one per WME class, holding a
  template row per (rule, CE) plus one instance row per matched WME;
  section 8.2's change is built in: instead of per-CE mark *bits*, each
  instance row stores the matched **WME identifier** (time tag), "which
  gives the ability to have multi-sets in WM as OPS5 does";
* :mod:`repro.dips.soi_query` — generates, for any rule, the SQL query
  of Figure 6: join the rule's COND tables on shared variables, keep
  rows whose WME-TAGS are NOT NULL, and GROUP BY the scalar CEs' tags
  and the ``:scalar`` variables to carve out the SOIs;
* :mod:`repro.dips.matcher` — a full :class:`repro.match.base.Matcher`
  that matches *by running that query*, so the engine can run whole
  programs on the DBMS back end (negated CEs — which section 8 leaves
  untreated — are applied as residual blocker checks over the negated
  pattern's own COND instance rows);
* :mod:`repro.dips.concurrency` — the concurrent-firing simulator for
  the paper's critique: tuple-oriented instantiations executed as
  parallel transactions "frequently conflict … multiple instantiations
  of a single rule invalidate each other", while one set-oriented
  instantiation per group does not (experiment C5).
"""

from repro.dips.cond import CondStore
from repro.dips.matcher import DipsMatcher
from repro.dips.soi_query import soi_query_sql
from repro.dips.concurrency import (
    ConcurrentFiringResult,
    run_concurrent_firings,
)

__all__ = [
    "ConcurrentFiringResult",
    "CondStore",
    "DipsMatcher",
    "run_concurrent_firings",
    "soi_query_sql",
]
