"""Concurrent instantiation firing: the paper's DIPS critique (§8.1).

DIPS "attempts to execute all satisfied instantiations concurrently,
relying on transaction semantics to block inconsistent updates".  The
paper's objection: *"Instantiations frequently conflict.  A special
case of this is where multiple instantiations of a single rule
invalidate each other (e.g. try to remove the same WME)."*  Set-oriented
constructs fix this because one SOI covers the whole group — one
transaction where tuple orientation needed many mutually-conflicting
ones.

:func:`run_concurrent_firings` simulates one parallel firing round:
every instantiation becomes an optimistic transaction whose actions
(reads + buffered writes over a WM table) are validated
first-committer-wins.  The result counts commits and conflicts, the
series experiment C5 reports.
"""

from __future__ import annotations

from repro.errors import TransactionConflict
from repro.rdb.transaction import TransactionManager


class ConcurrentFiringResult:
    """Outcome of one parallel firing round."""

    __slots__ = ("attempted", "committed", "aborted", "actions_applied")

    def __init__(self, attempted, committed, aborted, actions_applied):
        self.attempted = attempted
        self.committed = committed
        self.aborted = aborted
        self.actions_applied = actions_applied

    @property
    def conflict_rate(self):
        if not self.attempted:
            return 0.0
        return self.aborted / self.attempted

    def __repr__(self):
        return (
            f"ConcurrentFiringResult(attempted={self.attempted}, "
            f"committed={self.committed}, aborted={self.aborted})"
        )


def run_concurrent_firings(wm_table, firings, manager=None):
    """Execute *firings* as concurrently-started optimistic transactions.

    Each firing is a callable ``firing(txn, table)`` that performs its
    reads and buffers its writes through the transaction.  All
    transactions begin before any commits (maximal overlap, as DIPS's
    parallel execution intends), then commit in order; conflicting ones
    abort.  Returns a :class:`ConcurrentFiringResult`.
    """
    if manager is None:
        manager = TransactionManager()
    transactions = []
    for firing in firings:
        txn = manager.begin()
        firing(txn, wm_table)
        transactions.append(txn)
    committed = 0
    aborted = 0
    actions = 0
    for txn in transactions:
        try:
            txn.commit()
            committed += 1
            actions += len(txn._operations)
        except TransactionConflict:
            aborted += 1
    return ConcurrentFiringResult(
        attempted=len(transactions),
        committed=committed,
        aborted=aborted,
        actions_applied=actions,
    )


def remove_duplicates_tuple_firings(wm_table):
    """Tuple-oriented duplicate removal: one firing per *ordered pair*.

    Mirrors what a tuple-oriented ``RemoveDups`` produces: for every
    pair of rows with the same (name, team), one instantiation wants to
    remove the older row.  Distinct pairs over the same duplicate group
    read overlapping rows and frequently remove the same one — the
    paper's mutual-invalidation case.
    """
    rows = wm_table.rows()
    firings = []
    for index, (row_id_a, row_a) in enumerate(rows):
        for row_id_b, row_b in rows[index + 1 :]:
            if (
                row_a.get("name") == row_b.get("name")
                and row_a.get("team") == row_b.get("team")
            ):
                older = min(row_id_a, row_id_b)
                newer = max(row_id_a, row_id_b)

                def firing(txn, table, older=older, newer=newer):
                    txn.read(table, older)
                    txn.read(table, newer)
                    txn.delete(table, older)

                firings.append(firing)
    return firings


def remove_duplicates_set_firings(wm_table):
    """Set-oriented duplicate removal: one firing per duplicate group.

    One SOI per (name, team) group with count > 1; its single
    transaction reads the group and removes all but the newest member —
    no two firings touch the same rows.
    """
    groups = {}
    for row_id, row in wm_table.rows():
        key = (row.get("name"), row.get("team"))
        groups.setdefault(key, []).append(row_id)
    firings = []
    for row_ids in groups.values():
        if len(row_ids) < 2:
            continue
        doomed = sorted(row_ids)[:-1]
        members = list(row_ids)

        def firing(txn, table, members=members, doomed=doomed):
            for row_id in members:
                txn.read(table, row_id)
            for row_id in doomed:
                txn.delete(table, row_id)

        firings.append(firing)
    return firings
