"""COND tables: the DIPS representation of partial matches (paper §8).

One COND table exists per WME class that appears in any rule.  Its
columns are (paper section 8.1):

* ``rule_id`` — which rule the row belongs to;
* ``cen`` — the ordinal number of the CE within the rule (1-based);
* one column per attribute referenced by any CE of that class (the
  union across rules; NULL where a CE does not reference it);
* ``rce`` — the classes and ordinals of the rule's other CEs (stored
  as a rendered string, as DIPS normalises it);
* ``wme_tag`` — section 8.2's replacement of the mark bit: the matched
  WME's identifier, NULL in template rows.

A *template row* (``wme_tag IS NULL``) holds the CE's pattern: constant
tests as constants, variables as ``<name>`` markers.  When a WME is
created it is compared against each template of its class; each
successful comparison inserts an *instance row* with the variables
replaced by the WME's values and ``wme_tag`` set — exactly the table
state Figure 6 displays.
"""

from __future__ import annotations

from repro.analysis import RuleAnalysis
from repro.errors import DipsError
from repro.lang import ast
from repro.rdb.database import Database
from repro.rdb.schema import Column, Schema


def cond_table_name(wme_class):
    """DIPS names COND tables after the class: ``COND-<class>``."""
    return f"COND-{wme_class}"


def _variable_marker(name):
    return f"<{name}>"


class _CondCE:
    """Static info for one (rule, CE) pair."""

    __slots__ = ("rule", "level", "ce", "attributes", "pattern", "rce")

    def __init__(self, rule, level, ce):
        self.rule = rule
        self.level = level
        self.ce = ce
        self.attributes = tuple(test.attribute for test in ce.tests)
        self.pattern = self._build_pattern(ce)
        self.rce = ", ".join(
            f"({other.wme_class},{index + 1})"
            for index, other in enumerate(rule.ces)
            if index != level
        )

    @staticmethod
    def _build_pattern(ce):
        """attribute -> constant value or '<var>' marker (first = check)."""
        pattern = {}
        for test in ce.tests:
            for check in test.checks:
                if check.predicate != "=":
                    continue
                if isinstance(check.operand, ast.Const):
                    pattern.setdefault(test.attribute, check.operand.value)
                elif isinstance(check.operand, ast.Var):
                    pattern.setdefault(
                        test.attribute, _variable_marker(check.operand.name)
                    )
        return pattern

    def matches(self, wme, analysis):
        """Full single-WME test (constants, predicates, intra tests)."""
        return analysis.ce_analyses[self.level].wme_passes_alpha(wme)


class CondStore:
    """Builds and maintains the COND tables for a set of rules."""

    def __init__(self, db=None, backend=None):
        self.db = db if db is not None else Database(backend)
        self._class_attributes = {}
        self._cond_ces = {}  # wme_class -> [(rule, analysis, _CondCE)]
        self._rules = {}

    # -- schema construction ------------------------------------------------

    def add_rule(self, rule):
        if rule.name in self._rules:
            raise DipsError(f"rule {rule.name} already added to DIPS")
        analysis = RuleAnalysis(rule)
        self._rules[rule.name] = (rule, analysis)
        for level, ce in enumerate(rule.ces):
            cond_ce = _CondCE(rule, level, ce)
            self._register_class(ce.wme_class, cond_ce.attributes)
            self._cond_ces.setdefault(ce.wme_class, []).append(
                (rule, analysis, cond_ce)
            )
            self._insert_template(cond_ce)
        return analysis

    def _register_class(self, wme_class, attributes):
        known = self._class_attributes.setdefault(wme_class, [])
        new = [attr for attr in attributes if attr not in known]
        table_name = cond_table_name(wme_class)
        if not self.db.has_table(table_name):
            known.extend(new)
            columns = (
                [Column("rule_id", "str"), Column("cen", "int")]
                + [Column(attr) for attr in known]
                + [Column("rce", "str"), Column("wme_tag", "int")]
            )
            table = self.db.create_table(table_name, Schema(columns))
            table.create_index("wme_tag")
            table.create_index("rule_id")
        elif new:
            # A later rule references attributes the table lacks: widen
            # the schema (rebuild; existing rows read NULL in new cols).
            known.extend(new)
            old_table = self.db.table(table_name)
            rows = old_table.scan()
            self.db.drop_table(table_name)
            columns = (
                [Column("rule_id", "str"), Column("cen", "int")]
                + [Column(attr) for attr in known]
                + [Column("rce", "str"), Column("wme_tag", "int")]
            )
            table = self.db.create_table(table_name, Schema(columns))
            table.create_index("wme_tag")
            table.create_index("rule_id")
            table.insert_many(rows)

    def _insert_template(self, cond_ce):
        table = self.cond_table(cond_ce.ce.wme_class)
        row = {
            "rule_id": cond_ce.rule.name,
            "cen": cond_ce.level + 1,
            "rce": cond_ce.rce,
            "wme_tag": None,
        }
        for attribute in cond_ce.attributes:
            row[attribute] = cond_ce.pattern.get(attribute)
        table.insert(row)

    def remove_rule(self, rule_name):
        """Delete a rule's template and instance rows from every table."""
        entry = self._rules.pop(rule_name, None)
        if entry is None:
            raise DipsError(f"no rule named {rule_name} in DIPS")
        rule, _ = entry
        for wme_class, registrations in list(self._cond_ces.items()):
            self._cond_ces[wme_class] = [
                registration
                for registration in registrations
                if registration[0].name != rule_name
            ]
        for ce in rule.ces:
            table_name = cond_table_name(ce.wme_class)
            if self.db.has_table(table_name):
                self.db.table(table_name).delete_in(
                    "rule_id", [rule_name]
                )

    # -- WME maintenance -------------------------------------------------------

    @staticmethod
    def _instance_row(rule, cond_ce, wme):
        row = {
            "rule_id": rule.name,
            "cen": cond_ce.level + 1,
            "rce": cond_ce.rce,
            "wme_tag": wme.time_tag,
        }
        for attribute in cond_ce.attributes:
            row[attribute] = wme.get(attribute)
        return row

    def wme_added(self, wme):
        """Compare *wme* against its class's templates; insert instances."""
        inserted = 0
        for rule, analysis, cond_ce in self._cond_ces.get(
            wme.wme_class, ()
        ):
            if not cond_ce.matches(wme, analysis):
                continue
            self.cond_table(wme.wme_class).insert(
                self._instance_row(rule, cond_ce, wme)
            )
            inserted += 1
        return inserted

    def backfill_rule(self, rule_name, wmes):
        """Insert instance rows for *one* rule's CEs from live WMEs.

        The dynamic-add path: the new rule's templates are in place and
        every other rule's instance rows already exist, so re-running
        :meth:`wme_added` (which spans *every* registered rule) would
        duplicate them — one grouped INSERT per table, restricted to
        *rule_name*, is the set-oriented backfill.  Returns the number
        of instance rows inserted.
        """
        entry = self._rules.get(rule_name)
        if entry is None:
            raise DipsError(f"no rule named {rule_name} in DIPS")
        by_class = {}
        for wme in wmes:
            by_class.setdefault(wme.wme_class, []).append(wme)
        inserted = 0
        for wme_class, group in by_class.items():
            registrations = [
                registration
                for registration in self._cond_ces.get(wme_class, ())
                if registration[0].name == rule_name
            ]
            if not registrations:
                continue
            rows = []
            for wme in group:
                for rule, analysis, cond_ce in registrations:
                    if cond_ce.matches(wme, analysis):
                        rows.append(self._instance_row(rule, cond_ce, wme))
            if rows:
                self.cond_table(wme_class).insert_many(rows)
                inserted += len(rows)
        return inserted

    def wme_removed(self, wme):
        """Delete every instance row carrying this WME's tag."""
        table_name = cond_table_name(wme.wme_class)
        if not self.db.has_table(table_name):
            return 0
        table = self.db.table(table_name)
        return table.delete_in("wme_tag", [wme.time_tag])

    def apply_batch(self, events):
        """Apply one flushed delta-set as set-oriented statements.

        This is the paper's section 8 story made literal: instead of
        one INSERT/DELETE per WME event, the batch becomes *one*
        ``DELETE ... WHERE wme_tag IN (...)`` per affected COND table
        and *one* multi-row INSERT per (class, tables') template scan.
        Returns the number of statements issued.
        """
        removed_tags = {}
        added = {}
        for event in events:
            if event.is_add:
                added.setdefault(event.wme.wme_class, []).append(event.wme)
            else:
                removed_tags.setdefault(event.wme.wme_class, set()).add(
                    event.wme.time_tag
                )
        statements = 0
        for wme_class, tags in removed_tags.items():
            table_name = cond_table_name(wme_class)
            if not self.db.has_table(table_name):
                continue
            self.db.table(table_name).delete_in("wme_tag", sorted(tags))
            statements += 1
        for wme_class, wmes in added.items():
            registrations = self._cond_ces.get(wme_class, ())
            if not registrations:
                continue
            rows = []
            for wme in wmes:
                for rule, analysis, cond_ce in registrations:
                    if cond_ce.matches(wme, analysis):
                        rows.append(self._instance_row(rule, cond_ce, wme))
            if rows:
                self.cond_table(wme_class).insert_many(rows)
                statements += 1
        return statements

    # -- access -------------------------------------------------------------------

    def cond_table(self, wme_class):
        return self.db.table(cond_table_name(wme_class))

    def rules(self):
        return [rule for rule, _ in self._rules.values()]

    def analysis_of(self, rule_name):
        return self._rules[rule_name][1]

    def templates(self, wme_class):
        """Template rows (wme_tag IS NULL) of a class's COND table."""
        return self.cond_table(wme_class).select(
            lambda row: row.get("wme_tag") is None
        )

    def instances(self, wme_class):
        """Instance rows (wme_tag NOT NULL) of a class's COND table."""
        return self.cond_table(wme_class).select(
            lambda row: row.get("wme_tag") is not None
        )
