"""Classic DIPS COND tables with *mark bits* (the §8.1 baseline).

Before the paper's change, DIPS stored "mark bits for each CE in the
rule to indicate whether it has been matched".  Section 8.2 replaces
the bit with the WME identifier precisely because a bit cannot tell two
identical WMEs apart: "This gives the ability to have multi-sets in WM
as OPS5 does."

:class:`MarkBitCondStore` implements the old scheme so the difference
is demonstrable (``tests/dips/test_marks.py``, and the F6 narrative in
EXPERIMENTS.md): a duplicate WME leaves the mark-bit table unchanged,
so the match state under-counts and removing *one* of the duplicates
wrongly clears the mark entirely.
"""

from __future__ import annotations

from repro.analysis import RuleAnalysis
from repro.dips.cond import _CondCE, cond_table_name
from repro.errors import DipsError
from repro.rdb.database import Database
from repro.rdb.schema import Column, Schema


class MarkBitCondStore:
    """COND tables storing a boolean ``mark`` instead of a WME tag."""

    def __init__(self, db=None):
        self.db = db if db is not None else Database()
        self._class_attributes = {}
        self._cond_ces = {}
        self._rules = {}

    def add_rule(self, rule):
        if rule.name in self._rules:
            raise DipsError(f"rule {rule.name} already added")
        analysis = RuleAnalysis(rule)
        self._rules[rule.name] = (rule, analysis)
        for level, ce in enumerate(rule.ces):
            cond_ce = _CondCE(rule, level, ce)
            self._register_class(ce.wme_class, cond_ce.attributes)
            self._cond_ces.setdefault(ce.wme_class, []).append(
                (rule, analysis, cond_ce)
            )
            self._insert_template(cond_ce)
        return analysis

    def _register_class(self, wme_class, attributes):
        known = self._class_attributes.setdefault(wme_class, [])
        new = [attr for attr in attributes if attr not in known]
        table_name = cond_table_name(wme_class)
        if not self.db.has_table(table_name):
            known.extend(new)
            columns = (
                [Column("rule_id", "str"), Column("cen", "int")]
                + [Column(attr) for attr in known]
                + [Column("rce", "str"), Column("mark", "int")]
            )
            self.db.create_table(table_name, Schema(columns))
        elif new:
            known.extend(new)
            old_table = self.db.table(table_name)
            rows = old_table.scan()
            self.db.drop_table(table_name)
            columns = (
                [Column("rule_id", "str"), Column("cen", "int")]
                + [Column(attr) for attr in known]
                + [Column("rce", "str"), Column("mark", "int")]
            )
            table = self.db.create_table(table_name, Schema(columns))
            for row in rows:
                table.insert(row)

    def _insert_template(self, cond_ce):
        table = self.cond_table(cond_ce.ce.wme_class)
        row = {
            "rule_id": cond_ce.rule.name,
            "cen": cond_ce.level + 1,
            "rce": cond_ce.rce,
            "mark": 0,
        }
        for attribute in cond_ce.attributes:
            row[attribute] = cond_ce.pattern.get(attribute)
        table.insert(row)

    # -- maintenance --------------------------------------------------------

    def wme_added(self, wme):
        """Mark (or insert-and-mark) the matching instance rows.

        The §8.2 deficiency on display: a *duplicate* WME finds its
        instance row already present and merely leaves ``mark = 1`` —
        the multiplicity is lost.
        """
        changed = 0
        for rule, analysis, cond_ce in self._cond_ces.get(
            wme.wme_class, ()
        ):
            if not cond_ce.matches(wme, analysis):
                continue
            table = self.cond_table(wme.wme_class)
            values = {
                attribute: wme.get(attribute)
                for attribute in cond_ce.attributes
            }
            existing = [
                (row_id, row)
                for row_id, row in table.rows()
                if row.get("rule_id") == rule.name
                and row.get("cen") == cond_ce.level + 1
                and row.get("mark") == 1
                and all(
                    row.get(attr) == value for attr, value in values.items()
                )
            ]
            if existing:
                continue  # the bit is already set; duplicate is invisible
            row = {
                "rule_id": rule.name,
                "cen": cond_ce.level + 1,
                "rce": cond_ce.rce,
                "mark": 1,
            }
            row.update(values)
            table.insert(row)
            changed += 1
        return changed

    def wme_removed(self, wme):
        """Clear the mark — wrongly, when duplicates remain in WM."""
        table_name = cond_table_name(wme.wme_class)
        if not self.db.has_table(table_name):
            return 0
        table = self.db.table(table_name)
        removed = 0
        for rule, analysis, cond_ce in self._cond_ces.get(
            wme.wme_class, ()
        ):
            if not cond_ce.matches(wme, analysis):
                continue
            values = {
                attribute: wme.get(attribute)
                for attribute in cond_ce.attributes
            }
            removed += table.delete_where(
                lambda row: row.get("rule_id") == rule.name
                and row.get("cen") == cond_ce.level + 1
                and row.get("mark") == 1
                and all(
                    row.get(attr) == value for attr, value in values.items()
                )
            )
        return removed

    # -- access ---------------------------------------------------------------

    def cond_table(self, wme_class):
        return self.db.table(cond_table_name(wme_class))

    def marked_instances(self, wme_class):
        return self.cond_table(wme_class).select(
            lambda row: row.get("mark") == 1
        )
