"""Sharded batched match: rule-subnetwork partitions on a worker pool.

:class:`ShardedReteNetwork` implements the
:class:`~repro.match.base.Matcher` contract by partitioning the rule
base across N full :class:`~repro.rete.network.ReteNetwork` shards and
fanning each flushed :class:`~repro.wm.events.DeltaBatch` out to the
interested shards on a thread pool.  Within a shard, propagation is the
ordinary (deterministic) batched Rete path; across shards there is no
shared mutable state — alpha/beta memories, tokens, and S-nodes are
all shard-private, and WMEs are immutable — so shards can propagate
concurrently.

**Shard key.**  A rule is assigned by the CRC-32 of its sorted
referenced WME-class names modulo the shard count — the alpha-class
partition the batched alpha network (PR 2's ``add_batch``) already
groups deltas by.  Rules over the same class set land on the same
shard (keeping their alpha/beta sharing); the hash is content-defined,
so the assignment is independent of rule-addition order *and* of
``PYTHONHASHSEED`` (the CI soak job randomises it).

**Deterministic merge.**  Each shard's conflict-set deltas collect in
a private :class:`_DeltaBuffer`; after every propagation — and only
after all pool futures complete (a barrier) — the buffers drain into
the real listener in shard-index order.  Buffer contents are the
shard's own deterministic propagation order, and shard membership of a
rule is deterministic, so the merged delta stream is bit-identical run
to run and to an unsharded network modulo rule-interleaving the
conflict set is insensitive to (it orders by strategy key at
selection, not arrival).

**Caveats** (see ``docs/PARALLELISM.md``): constant tests and joins
are pure Python, so under the GIL thread-level sharding overlaps
little CPU; ``executor="process"`` opts the pure alpha-filter stage
into a process pool (constant tests evaluated out-of-process, results
injected via the ``alpha_filter`` hook).  When a live
:class:`~repro.engine.stats.MatchStats` hook is attached, shards
propagate serially — the collector is not thread-safe and counter
determinism is part of the bench gate's contract.
"""

from __future__ import annotations

import zlib

from repro.engine.stats import NULL_STATS
from repro.errors import RuleError
from repro.match.base import ConflictListener, Matcher
from repro.rete.kernels import alpha_spec, columnar_mask, spec_attributes
from repro.rete.network import ReteNetwork, ReteStats


def shard_of(class_names, shards):
    """The shard index for a rule referencing *class_names*.

    Content-defined (CRC-32 of the sorted class names), so stable
    across processes, insertion orders, and hash-seed randomisation.
    """
    blob = ",".join(sorted(class_names)).encode("utf-8")
    return zlib.crc32(blob) % shards


class _DeltaBuffer(ConflictListener):
    """Collects one shard's conflict-set deltas until the merge."""

    __slots__ = ("ops",)

    def __init__(self):
        self.ops = []

    def insert(self, instantiation):
        self.ops.append(("+", instantiation))

    def retract(self, instantiation):
        self.ops.append(("-", instantiation))

    def reposition(self, instantiation):
        self.ops.append(("t", instantiation))

    def drain_into(self, listener):
        """Replay buffered deltas into *listener*, oldest first."""
        ops, self.ops = self.ops, []
        for sign, instantiation in ops:
            if sign == "+":
                listener.insert(instantiation)
            elif sign == "-":
                listener.retract(instantiation)
            else:
                listener.reposition(instantiation)
        return len(ops)


def _alpha_mask(analysis, wmes):
    """Process-pool worker: evaluate one memory's constant tests."""
    return [analysis.wme_passes_alpha(wme) for wme in wmes]


class ShardedReteNetwork(Matcher):
    """N Rete shards behind one Matcher facade (see module docstring)."""

    def __init__(self, shards=2, workers=None, executor="thread",
                 stats=None, **network_options):
        super().__init__()
        if shards < 1:
            raise RuleError(f"need at least 1 shard, got {shards}")
        if executor not in ("thread", "process"):
            raise RuleError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        self.match_stats = stats if stats is not None else NULL_STATS
        self.executor_kind = executor
        self.workers = workers if workers is not None else shards
        self.shards = [
            ReteNetwork(stats=self.match_stats, **network_options)
            for _ in range(shards)
        ]
        self._buffers = [_DeltaBuffer() for _ in range(shards)]
        for shard, buffer in zip(self.shards, self._buffers):
            shard.set_listener(buffer)
        self._rule_shard = {}
        self._pool = None
        self._process_pool = None

    # -- pools ---------------------------------------------------------

    def _thread_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-shard",
            )
        return self._pool

    def _processes(self):
        if self._process_pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._process_pool = ProcessPoolExecutor(
                max_workers=self.workers
            )
        return self._process_pool

    def close(self):
        """Shut down the worker pools (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)
            self._process_pool = None

    # -- Matcher contract ----------------------------------------------

    def set_stats(self, stats):
        self.match_stats = stats
        for shard in self.shards:
            shard.set_stats(stats)

    def attach(self, wm):
        self.wm = wm
        for shard in self.shards:
            # Shards read WM for rule back-fill but never subscribe:
            # only the facade observes, so a delta is routed once.
            shard.wm = wm
        wm.attach(self.on_event, on_batch=self.on_batch)
        from repro.wm.events import ADD, WMEvent

        for wme in wm:
            self.on_event(WMEvent(ADD, wme))

    def add_rule(self, rule):
        if rule.name in self._rule_shard:
            raise RuleError(f"rule {rule.name} already in the network")
        index = shard_of(
            {ce.wme_class for ce in rule.ces}, len(self.shards)
        )
        shard = self.shards[index]
        # Back-fill invariant: the shard reads live WM directly when a
        # rule's alpha memories are created, so a shard gaining interest
        # in a WME class it previously filtered out via interested_in
        # still starts fully populated.  attach() propagates wm to every
        # shard; re-assert it here so a facade attached after
        # construction (or re-attached) can never leave a shard blind.
        if shard.wm is not self.wm:
            shard.wm = self.wm
        analysis = shard.add_rule(rule)
        self._rule_shard[rule.name] = index
        self._merge()
        return analysis

    def remove_rule(self, rule_name):
        index = self._rule_shard.pop(rule_name, None)
        if index is None:
            raise RuleError(f"no rule named {rule_name} in the network")
        self.shards[index].remove_rule(rule_name)
        self._merge()

    def on_event(self, event):
        wme_class = event.wme.wme_class
        for shard in self.shards:
            if shard.interested_in(wme_class):
                shard.on_event(event)
        self._merge()

    def on_batch(self, events):
        """Fan one flushed delta-set out to the interested shards.

        Shards propagate concurrently on the thread pool (serially
        when only one shard is interested, the pool is sized 1, or a
        live stats hook is attached); the barrier below guarantees
        every shard finished before the deterministic merge runs.
        """
        live = []
        for shard, buffer in zip(self.shards, self._buffers):
            part = [
                event for event in events
                if shard.interested_in(event.wme.wme_class)
            ]
            if part:
                live.append((shard, part))
        self.match_stats.shard_batch(
            len(live), sum(len(part) for _, part in live)
        )
        parallel = (
            len(live) > 1
            and self.workers > 1
            and not self.match_stats.enabled
        )
        if not parallel:
            for shard, part in live:
                shard.on_batch(part)
            self._merge()
            return
        alpha_filter = None
        if self.executor_kind == "process":
            alpha_filter = self._prefilter(live)
        pool = self._thread_pool()
        futures = [
            pool.submit(shard.on_batch, part, alpha_filter)
            for shard, part in live
        ]
        failure = None
        for future in futures:  # the barrier
            try:
                future.result()
            except BaseException as exc:
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure
        self._merge()

    def _merge(self):
        """Drain per-shard delta buffers in shard-index order."""
        for buffer in self._buffers:
            buffer.drain_into(self.listener)

    def _prefilter(self, live):
        """Evaluate the alpha constant tests on the process pool.

        Returns an ``alpha_filter`` callable for
        :meth:`~repro.rete.alpha.AlphaNetwork.add_batch` mapping each
        alpha memory to its precomputed passing subset, or None when
        the work cannot be shipped (unpicklable values, dead pool) —
        the shards then filter inline, which is always correct.

        Kernelized shards ship the **columnar** form: the memory's
        structural :func:`~repro.rete.kernels.alpha_spec` plus parallel
        per-attribute value arrays for just the attributes the tests
        read, evaluated by :func:`~repro.rete.kernels.columnar_mask`
        (compiled once per worker process, cached by spec).  Shards
        without kernels ship the analysis + WME objects as before.
        """
        tasks = []
        for shard, part in live:
            by_class = {}
            for event in part:
                if event.is_add:
                    by_class.setdefault(
                        event.wme.wme_class, []
                    ).append(event.wme)
            for wme_class, group in by_class.items():
                for memory in shard.alpha.memories_of_class(wme_class):
                    tasks.append((memory, group, shard.kernels is not None))
        if not tasks:
            return None
        try:
            pool = self._processes()
            futures = []
            for memory, group, kernelized in tasks:
                if kernelized:
                    spec = alpha_spec(memory.analysis)
                    columns = {
                        attribute: [wme.get(attribute) for wme in group]
                        for attribute in spec_attributes(spec)
                    }
                    futures.append(pool.submit(
                        columnar_mask, spec, columns, len(group)
                    ))
                else:
                    futures.append(pool.submit(
                        _alpha_mask, memory.analysis, group
                    ))
            table = {}
            for (memory, group, _), future in zip(tasks, futures):
                mask = future.result()
                table[id(memory)] = [
                    wme for wme, passed in zip(group, mask) if passed
                ]
        except Exception:
            return None

        def alpha_filter(memory, group):
            passing = table.get(id(memory))
            if passing is None:  # a memory added mid-flight: inline
                passes = memory.passes
                passing = [w for w in group if passes(w)]
            return passing

        return alpha_filter

    # -- inspection ----------------------------------------------------

    @property
    def stats(self):
        """Aggregated :class:`ReteStats` across the shards."""
        total = ReteStats()
        for shard in self.shards:
            for field in ReteStats.__slots__:
                setattr(
                    total, field,
                    getattr(total, field) + getattr(shard.stats, field),
                )
        return total

    def shard_for(self, rule_name):
        """The shard index hosting *rule_name* (KeyError if absent)."""
        return self._rule_shard[rule_name]

    def snode_for(self, rule_name):
        """The S-node of a set-oriented rule (KeyError if none)."""
        return self.shards[self._rule_shard[rule_name]].snode_for(
            rule_name
        )

    def production_node(self, rule_name):
        return self.shards[
            self._rule_shard[rule_name]
        ].production_node(rule_name)

    def __repr__(self):
        rules = len(self._rule_shard)
        return (
            f"ShardedReteNetwork({len(self.shards)} shards, "
            f"{rules} rules, {self.executor_kind} pool x{self.workers})"
        )
