"""Incremental aggregate maintenance for S-nodes (paper section 4.2/5).

The paper stores each aggregate as "the aggregate's current value
followed by a list of (value, counter) pairs representing the values in
the WMEs used in the computation".  :class:`AggregateState` implements
exactly that: contributions keyed by their source with a multiplicity
counter (tokens can share WMEs/values across the join product), and the
current value maintained incrementally — ``count``/``sum``/``avg`` in
O(1), ``min``/``max`` recomputed only when the extremum's counter drops
to zero.

Two target kinds (mirroring the paper's APVs and ACEs):

* a **set-oriented pattern variable** — the aggregate ranges over the
  PV's *domain*, i.e. the distinct values it takes in the SOI;
* a **set-oriented condition element** — the aggregate ranges over the
  distinct member WMEs (``count``), or over a named attribute of those
  WMEs (``sum``/``min``/``max``/``avg``).
"""

from __future__ import annotations

from repro import symbols
from repro.errors import EngineError


class AggregateSpec:
    """Static description of one aggregate operation in a ``:test``.

    ``kind`` is ``"pv"`` or ``"ce"``.  For a PV target, ``level`` and
    ``attribute`` give the variable's binding site.  For a CE target,
    ``level`` is the CE's position and ``attribute`` the optional value
    attribute (required for numeric aggregates).
    """

    __slots__ = ("op", "target", "kind", "level", "attribute")

    def __init__(self, op, target, kind, level, attribute=None):
        if kind not in ("pv", "ce"):
            raise ValueError(f"aggregate kind must be 'pv' or 'ce': {kind!r}")
        if kind == "ce" and attribute is None and op != "count":
            raise EngineError(
                f"aggregate ({op} <{target}>) over a condition element "
                f"needs an ^attribute to aggregate"
            )
        self.op = op
        self.target = target
        self.kind = kind
        self.level = level
        self.attribute = attribute

    def contribution(self, token):
        """(key, value) this token contributes, or None if inapplicable.

        For a PV spec the key *is* the value (domain semantics: distinct
        values).  For a CE spec the key is the member WME's time tag
        (distinct WMEs), the value its aggregated attribute.
        """
        wme = token.wme_at(self.level)
        if wme is None:
            return None
        if self.kind == "pv":
            value = wme.get(self.attribute)
            return (value, value)
        value = wme.get(self.attribute) if self.attribute else None
        return (wme.time_tag, value)

    def matches(self, op, target, attribute=None):
        return (
            self.op == op
            and self.target == target
            and (attribute is None or attribute == self.attribute)
        )

    def __repr__(self):
        attr = f" ^{self.attribute}" if self.attribute else ""
        return f"AggregateSpec({self.op} <{self.target}>{attr} [{self.kind}])"


class AggregateState:
    """Incrementally maintained value of one aggregate over one SOI."""

    __slots__ = (
        "spec",
        "contributions",
        "_sum",
        "_extremum",
        "_dirty",
        "_non_numeric",
    )

    def __init__(self, spec):
        self.spec = spec
        # key -> [value, counter]
        self.contributions = {}
        self._sum = 0
        self._extremum = None
        self._dirty = False
        self._non_numeric = 0

    # -- updates -----------------------------------------------------------

    def add_token(self, token):
        contribution = self.spec.contribution(token)
        if contribution is None:
            return
        key, value = contribution
        entry = self.contributions.get(key)
        if entry is not None:
            entry[1] += 1
            return
        self.contributions[key] = [value, 1]
        self._on_key_added(value)

    def remove_token(self, token):
        contribution = self.spec.contribution(token)
        if contribution is None:
            return
        key, _ = contribution
        entry = self.contributions.get(key)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] <= 0:
            value = entry[0]
            del self.contributions[key]
            self._on_key_removed(value)

    def _on_key_added(self, value):
        op = self.spec.op
        if op in ("sum", "avg"):
            if symbols.is_number(value):
                self._sum += value
            else:
                self._non_numeric += 1
        elif op in ("min", "max") and not self._dirty:
            if self._extremum is None or self._beats(value, self._extremum):
                self._extremum = value

    def _on_key_removed(self, value):
        op = self.spec.op
        if op in ("sum", "avg"):
            if symbols.is_number(value):
                self._sum -= value
            else:
                self._non_numeric -= 1
        elif op in ("min", "max"):
            # Recompute lazily only when the current extremum left —
            # the paper's (value, counter) bookkeeping makes this exact.
            if self._extremum is not None and value == self._extremum:
                self._dirty = True

    def _beats(self, candidate, incumbent):
        if self.spec.op == "min":
            return symbols.sort_key(candidate) < symbols.sort_key(incumbent)
        return symbols.sort_key(candidate) > symbols.sort_key(incumbent)

    # -- reads -------------------------------------------------------------

    def value(self):
        """The aggregate's current value (None for empty min/max/avg)."""
        op = self.spec.op
        if op == "count":
            return len(self.contributions)
        if op == "sum":
            self._check_numeric()
            return self._sum
        if op == "avg":
            self._check_numeric()
            if not self.contributions:
                return None
            return self._sum / len(self.contributions)
        # min / max
        if not self.contributions:
            self._extremum = None
            self._dirty = False
            return None
        if self._dirty or self._extremum is None:
            values = (entry[0] for entry in self.contributions.values())
            chooser = min if op == "min" else max
            self._extremum = chooser(values, key=symbols.sort_key)
            self._dirty = False
        return self._extremum

    def _check_numeric(self):
        # Tracked incrementally so value() stays O(1) (see F3b bench).
        if self._non_numeric:
            raise EngineError(
                f"aggregate {self.spec.op} over non-numeric value(s)"
            )

    def snapshot(self):
        """The paper's γ-memory AV entry: (current value, [(value, counter)])."""
        pairs = [
            (entry[0], entry[1]) for entry in self.contributions.values()
        ]
        return (self.value(), pairs)

    def __repr__(self):
        return f"AggregateState({self.spec!r}, value={self.value()!r})"
