"""The beta network: tokens, beta memories, and join nodes.

Tokens form the classic parent-linked chains: a token at level *i* pairs
its parent (levels ``< i``) with the WME matching CE *i* (``None`` at a
negated level).  Deletion is tree-structured — removing a WME deletes
every token carrying it plus all descendants — following the
Rete/UL-style bookkeeping of child lists and per-WME token indexes kept
by :class:`repro.rete.network.ReteNetwork`.
"""

from __future__ import annotations

from repro.core.instantiation import recency_key


class Token:
    """A partial (or full) match: a chain of one WME per CE level."""

    __slots__ = (
        "parent",
        "wme",
        "node",
        "level",
        "children",
        "neg_results",
        "active",
        "_tags",
    )

    def __init__(self, parent, wme, node, level):
        self.parent = parent
        self.wme = wme
        self.node = node
        self.level = level
        self.children = []
        # For tokens owned by a negative node: the alpha WMEs currently
        # blocking this token (the "join results").
        self.neg_results = []
        # For negative-node tokens: propagated downstream iff active.
        self.active = True
        self._tags = None
        if parent is not None:
            parent.children.append(self)

    # -- instantiation protocol ------------------------------------------

    def wme_at(self, level):
        """The WME matched at CE *level* (None for negated levels)."""
        token = self
        while token is not None and token.level >= 0:
            if token.level == level:
                return token.wme
            token = token.parent
        return None

    def wmes(self):
        """All WMEs in CE order (None at negated levels)."""
        chain = []
        token = self
        while token is not None and token.level >= 0:
            chain.append(token.wme)
            token = token.parent
        chain.reverse()
        return tuple(chain)

    def time_tags(self):
        """Sorted-descending time tags (the LEX recency key), cached."""
        if self._tags is None:
            self._tags = recency_key(
                [w.time_tag for w in self.wmes() if w is not None]
            )
        return self._tags

    def lookup(self, level, attribute):
        """Join-test resolver: the value bound at (level, attribute)."""
        wme = self.wme_at(level)
        return None if wme is None else wme.get(attribute)

    def __repr__(self):
        tags = ",".join(
            "-" if w is None else str(w.time_tag) for w in self.wmes()
        )
        return f"Token[{tags}]@L{self.level}"


class DummyToken(Token):
    """The root token seeding the dummy top memory."""

    def __init__(self):
        super().__init__(None, None, None, -1)


class BetaMemory:
    """Stores the tokens matching a prefix of a rule's CEs.

    ``successors`` are join/negative nodes using this memory as their
    left input; ``observers`` are terminal nodes (P-nodes / S-nodes)
    notified of token arrival and departure.
    """

    __slots__ = ("parent_join", "level", "items", "successors", "observers",
                 "indexes")

    def __init__(self, parent_join, level):
        self.parent_join = parent_join
        self.level = level
        self.items = {}
        self.successors = []
        self.observers = []
        # (level, attribute) -> {binding value -> {token: None}}; built
        # on demand by joins whose first test is an equality, so
        # right activations probe instead of scanning (see the
        # join-index ablation benchmark).
        self.indexes = {}

    def active_tokens(self):
        return list(self.items)

    def ensure_index(self, site):
        """Create (once) the token index keyed by *site*'s binding value."""
        if site in self.indexes:
            return
        index = {}
        for token in self.items:
            index.setdefault(token.lookup(*site), {})[token] = None
        self.indexes[site] = index

    def indexed_tokens(self, site, value):
        """Tokens whose binding at *site* equals *value* (index probe)."""
        return list(self.indexes[site].get(value, ()))

    def left_activate(self, parent_token, wme, network):
        """A (token, wme) pair survived the parent join: store + propagate."""
        token = Token(parent_token, wme, self, self.level)
        network.register_token(token)
        self.items[token] = None
        for site, index in self.indexes.items():
            index.setdefault(token.lookup(*site), {})[token] = None
        for successor in self.successors:
            successor.left_activate(token)
        for observer in self.observers:
            observer.token_added(token)
        return token

    def remove_token(self, token):
        """Called by the deletion cascade; descendants are already gone."""
        self.items.pop(token, None)
        for site, index in self.indexes.items():
            bucket = index.get(token.lookup(*site))
            if bucket is not None:
                bucket.pop(token, None)
                if not bucket:
                    del index[token.lookup(*site)]
        for observer in self.observers:
            observer.token_removed(token)

    def __len__(self):
        return len(self.items)

    def __repr__(self):
        return f"BetaMemory(level={self.level}, {len(self.items)} tokens)"


class JoinNode:
    """Joins a left beta memory with a right alpha memory.

    ``tests`` are :class:`repro.analysis.JoinTest` instances comparing
    the candidate WME against values bound in the left token.  Output
    flows into exactly one :class:`BetaMemory` (created by the network
    compiler; shared when two rules have an identical join prefix).
    """

    __slots__ = ("left", "amem", "tests", "level", "output", "network",
                 "index_test")

    def __init__(self, left, amem, tests, level, network):
        self.left = left
        self.amem = amem
        self.tests = tuple(tests)
        self.level = level
        self.network = network
        self.output = None  # set by the compiler
        # When the first equality test can be probed instead of scanned,
        # remember it and build the two side indexes (left memory by
        # binding value, alpha memory by attribute value).
        self.index_test = None
        if getattr(network, "indexed_joins", False):
            equalities = [t for t in tests if t.predicate == "="]
            if equalities and isinstance(left, BetaMemory):
                self.index_test = equalities[0]
                left.ensure_index(
                    (self.index_test.bound_level,
                     self.index_test.bound_attribute)
                )
                amem.ensure_index(self.index_test.attribute)

    def _passes(self, token, wme):
        return all(test.matches(wme, token.lookup) for test in self.tests)

    def left_activate(self, token):
        """A new token arrived in the left memory."""
        if not token.active:
            return
        if self.index_test is not None:
            candidates = self.amem.indexed_wmes(
                self.index_test.attribute,
                token.lookup(
                    self.index_test.bound_level,
                    self.index_test.bound_attribute,
                ),
            )
        else:
            candidates = list(self.amem.items)
        for wme in candidates:
            if self._passes(token, wme):
                self.output.left_activate(token, wme, self.network)

    def right_activate(self, wme):
        """A new WME arrived in the right alpha memory."""
        if self.index_test is not None:
            candidates = self.left.indexed_tokens(
                (self.index_test.bound_level,
                 self.index_test.bound_attribute),
                wme.get(self.index_test.attribute),
            )
        else:
            candidates = self.left.active_tokens()
        for token in candidates:
            if self._passes(token, wme):
                self.output.left_activate(token, wme, self.network)

    def right_retract(self, wme):
        """WME left the alpha memory; the token cascade handles cleanup."""

    def share_key(self):
        """Key for beta-level sharing of identical joins."""
        return (id(self.amem), tuple(test.key() for test in self.tests))

    def __repr__(self):
        return f"JoinNode(level={self.level}, {len(self.tests)} tests)"
