"""The beta network: tokens, beta memories, and join nodes.

Tokens form the classic parent-linked chains: a token at level *i* pairs
its parent (levels ``< i``) with the WME matching CE *i* (``None`` at a
negated level).  Deletion is tree-structured — removing a WME deletes
every token carrying it plus all descendants — following the
Rete/UL-style bookkeeping of child lists and per-WME token indexes kept
by :class:`repro.rete.network.ReteNetwork`.

Join nodes with an equality test probe hash indexes on both inputs
(see :class:`repro.rete.alpha.AlphaMemory`); an unhashable probe value
falls back to a full memory scan instead of raising mid-propagation,
and unhashable stored values live in a sentinel bucket every probe
also returns (candidates are post-filtered by the full test list, so
this only costs, never changes, results).
"""

from __future__ import annotations

from repro import symbols
from repro.core.instantiation import recency_key
from repro.engine.stats import NULL_STATS
from repro.rete.alpha import UNHASHABLE, _index_add, _index_discard


def _interpreted_matcher(tests):
    """Uncompiled fallback with the kernel calling convention.

    Gives nodes one uniform ``fn(wme, lookup) -> bool`` entry point
    whether or not a kernel pack is attached.
    """
    if not tests:
        return lambda wme, lookup: True

    def matcher(wme, lookup, _tests=tests):
        return all(test.matches(wme, lookup) for test in _tests)

    return matcher


class Token:
    """A partial (or full) match: a chain of one WME per CE level."""

    __slots__ = (
        "parent",
        "wme",
        "node",
        "level",
        "children",
        "neg_results",
        "active",
        "_tags",
    )

    def __init__(self, parent, wme, node, level):
        self.parent = parent
        self.wme = wme
        self.node = node
        self.level = level
        self.children = []
        # For tokens owned by a negative node: the alpha WMEs currently
        # blocking this token (the "join results").
        self.neg_results = []
        # For negative-node tokens: propagated downstream iff active.
        self.active = True
        self._tags = None
        if parent is not None:
            parent.children.append(self)

    # -- instantiation protocol ------------------------------------------

    def wme_at(self, level):
        """The WME matched at CE *level* (None for negated levels)."""
        token = self
        while token is not None and token.level >= 0:
            if token.level == level:
                return token.wme
            token = token.parent
        return None

    def wmes(self):
        """All WMEs in CE order (None at negated levels)."""
        chain = []
        token = self
        while token is not None and token.level >= 0:
            chain.append(token.wme)
            token = token.parent
        chain.reverse()
        return tuple(chain)

    def time_tags(self):
        """Sorted-descending time tags (the LEX recency key), cached."""
        if self._tags is None:
            self._tags = recency_key(
                [w.time_tag for w in self.wmes() if w is not None]
            )
        return self._tags

    def lookup(self, level, attribute):
        """Join-test resolver: the value bound at (level, attribute)."""
        wme = self.wme_at(level)
        return None if wme is None else wme.get(attribute)

    def __repr__(self):
        tags = ",".join(
            "-" if w is None else str(w.time_tag) for w in self.wmes()
        )
        return f"Token[{tags}]@L{self.level}"


class DummyToken(Token):
    """The root token seeding the dummy top memory."""

    def __init__(self):
        super().__init__(None, None, None, -1)


class BetaMemory:
    """Stores the tokens matching a prefix of a rule's CEs.

    ``successors`` are join/negative nodes using this memory as their
    left input; ``observers`` are terminal nodes (P-nodes / S-nodes)
    notified of token arrival and departure.
    """

    __slots__ = ("parent_join", "level", "items", "successors", "observers",
                 "indexes", "stats", "stats_key")

    def __init__(self, parent_join, level, stats=None):
        self.parent_join = parent_join
        self.level = level
        self.items = {}
        self.successors = []
        self.observers = []
        # (level, attribute) -> {binding value -> {token: None}}; built
        # on demand by joins whose first test is an equality, so
        # right activations probe instead of scanning (see the
        # join-index ablation benchmark).
        self.indexes = {}
        self.attach_stats(stats if stats is not None else NULL_STATS)

    def attach_stats(self, stats):
        self.stats = stats
        self.stats_key = stats.register_node("beta", f"L{self.level}")

    def active_tokens(self):
        return list(self.items)

    def ensure_index(self, site):
        """Create (once) the token index keyed by *site*'s binding value."""
        if site in self.indexes:
            return
        index = {}
        for token in self.items:
            _index_add(index, token.lookup(*site), token)
        self.indexes[site] = index

    def indexed_tokens(self, site, value):
        """Tokens whose binding at *site* equals *value* (index probe).

        Raises ``TypeError`` for unhashable *value* (callers fall back
        to a scan); always includes the sentinel bucket of tokens whose
        own binding was unhashable.
        """
        index = self.indexes[site]
        matches = list(index.get(value, ()))
        extra = index.get(UNHASHABLE)
        if extra:
            matches.extend(extra)
        return matches

    def left_activate(self, parent_token, wme, network):
        """A (token, wme) pair survived the parent join: store + propagate."""
        token = Token(parent_token, wme, self, self.level)
        network.register_token(token)
        self.items[token] = None
        for site, index in self.indexes.items():
            _index_add(index, token.lookup(*site), token)
        self.stats.memory_size(self.stats_key, len(self.items))
        for successor in self.successors:
            successor.left_activate(token)
        for observer in self.observers:
            observer.token_added(token)
        return token

    def remove_token(self, token):
        """Called by the deletion cascade; descendants are already gone."""
        self.items.pop(token, None)
        for site, index in self.indexes.items():
            _index_discard(index, token.lookup(*site), token)
        for observer in self.observers:
            observer.token_removed(token)

    def __len__(self):
        return len(self.items)

    def __repr__(self):
        return f"BetaMemory(level={self.level}, {len(self.items)} tokens)"


class JoinNode:
    """Joins a left beta memory with a right alpha memory.

    ``tests`` are :class:`repro.analysis.JoinTest` instances comparing
    the candidate WME against values bound in the left token.  Output
    flows into exactly one :class:`BetaMemory` (created by the network
    compiler; shared when two rules have an identical join prefix).

    When the network carries a :class:`~repro.rete.kernels.KernelPack`,
    the test list (and its index-residual subset) is compiled once into
    a match kernel at construction; ``_match``/``_match_residual`` are
    then single specialized functions instead of an interpreted walk of
    the test objects, and full scans over a columnar alpha memory run
    through a columnar scan kernel with the token's bindings hoisted
    out of the candidate loop.  Candidate order, pass/fail results, and
    every stats counter are identical to the interpreted path.
    """

    __slots__ = ("left", "amem", "tests", "level", "output", "network",
                 "index_test", "residual_tests", "stats", "stats_key",
                 "_match", "_match_residual", "_scan", "_scan_attrs")

    def __init__(self, left, amem, tests, level, network):
        self.left = left
        self.amem = amem
        self.tests = tuple(tests)
        self.level = level
        self.network = network
        self.output = None  # set by the compiler
        # When the first equality test can be probed instead of scanned,
        # remember it and build the two side indexes (left memory by
        # binding value, alpha memory by attribute value).
        self.index_test = None
        self.residual_tests = self.tests
        if getattr(network, "indexed_joins", False):
            equalities = [t for t in tests if t.predicate == "="]
            if equalities and isinstance(left, BetaMemory):
                self.index_test = equalities[0]
                self.residual_tests = tuple(
                    t for t in self.tests if t is not self.index_test
                )
                left.ensure_index(
                    (self.index_test.bound_level,
                     self.index_test.bound_attribute)
                )
                amem.ensure_index(self.index_test.attribute)
        kernels = getattr(network, "kernels", None)
        if kernels is not None:
            self._match = kernels.join(self.tests)
            self._match_residual = (
                self._match
                if self.residual_tests is self.tests
                else kernels.join(self.residual_tests)
            )
        else:
            self._match = _interpreted_matcher(self.tests)
            self._match_residual = (
                self._match
                if self.residual_tests is self.tests
                else _interpreted_matcher(self.residual_tests)
            )
        self._scan = None
        self._scan_attrs = ()
        if (kernels is not None and self.index_test is None
                and getattr(amem, "columnar", False)):
            self._scan = kernels.scan(self.tests)
            self._scan_attrs = tuple(
                dict.fromkeys(t.attribute for t in self.tests)
            )
        self.attach_stats(network.match_stats)

    def attach_stats(self, stats):
        self.stats = stats
        self.stats_key = stats.register_node("join", f"L{self.level}")

    def _passes(self, token, wme):
        return self._match(wme, token.lookup)

    def left_activate(self, token):
        """A new token arrived in the left memory."""
        if not token.active:
            return
        probed = False
        scanned = None
        if self.index_test is not None:
            try:
                candidates = self.amem.indexed_wmes(
                    self.index_test.attribute,
                    token.lookup(
                        self.index_test.bound_level,
                        self.index_test.bound_attribute,
                    ),
                )
                probed = True
            except TypeError:
                # Unhashable probe value: fall back to the scan.
                candidates = list(self.amem.items)
        elif self._scan is not None:
            candidates, columns = self.amem.scan_view(self._scan_attrs)
            scanned = self._scan(token.lookup, candidates, columns)
        else:
            candidates = list(self.amem.items)
        output = self.output
        network = self.network
        if scanned is not None:
            passed = len(scanned)
            for wme in scanned:
                output.left_activate(token, wme, network)
        else:
            match = self._match
            lookup = token.lookup
            passed = 0
            for wme in candidates:
                if match(wme, lookup):
                    passed += 1
                    output.left_activate(token, wme, network)
        stats = self.stats
        if stats.enabled:
            stats.left_activation(self.stats_key)
            if probed:
                stats.index_probe(self.stats_key, len(candidates))
            else:
                stats.full_scan(self.stats_key, len(candidates))
            stats.join_batch(self.stats_key, len(candidates), passed)

    def right_activate(self, wme):
        """A new WME arrived in the right alpha memory."""
        probed = False
        if self.index_test is not None:
            try:
                candidates = self.left.indexed_tokens(
                    (self.index_test.bound_level,
                     self.index_test.bound_attribute),
                    wme.get(self.index_test.attribute),
                )
                probed = True
            except TypeError:
                candidates = self.left.active_tokens()
        else:
            candidates = self.left.active_tokens()
        match = self._match
        passed = 0
        for token in candidates:
            if match(wme, token.lookup):
                passed += 1
                self.output.left_activate(token, wme, self.network)
        stats = self.stats
        if stats.enabled:
            stats.right_activation(self.stats_key)
            if probed:
                stats.index_probe(self.stats_key, len(candidates))
            else:
                stats.full_scan(self.stats_key, len(candidates))
            stats.join_batch(self.stats_key, len(candidates), passed)

    def right_retract(self, wme):
        """WME left the alpha memory; the token cascade handles cleanup."""

    def right_activate_batch(self, wmes):
        """A group of WMEs arrived in the right alpha memory at once.

        With an index test the batch is partitioned by the indexed
        attribute's value; the left token index is probed *once per
        group* instead of once per WME.  Tokens from a group's exact
        bucket whose own binding is a plain number or symbol are
        *probe-verified* — the bucket key equality coincides with
        ``values_equal`` for those types, so only the residual tests
        run.  Sentinel-bucket tokens (unhashable bindings) and tokens
        with exotic bindings always run the full test list, and WMEs
        whose probe value is neither number nor symbol fall back to the
        per-event path — so results never change, only work.
        """
        if self.index_test is None:
            for wme in wmes:
                self.right_activate(wme)
            return
        site = (self.index_test.bound_level,
                self.index_test.bound_attribute)
        attribute = self.index_test.attribute
        groups = {}
        leftovers = []
        for wme in wmes:
            value = wme.get(attribute)
            if symbols.is_number(value) or symbols.is_symbol(value):
                groups.setdefault(value, []).append(wme)
            else:
                leftovers.append(wme)
        index = self.left.indexes[site]
        residual = self.residual_tests
        match_full = self._match
        match_residual = self._match_residual
        output = self.output
        network = self.network
        candidates_total = 0
        attempted = 0
        passed = 0
        for value, group in groups.items():
            exact = list(index.get(value, ()))
            extras = index.get(UNHASHABLE)
            extras = list(extras) if extras else ()
            candidates_total += len(exact) + len(extras)
            for token in exact:
                bound = token.lookup(*site)
                verified = (
                    symbols.is_number(bound) or symbols.is_symbol(bound)
                )
                if verified and not residual:
                    passed += len(group)
                    for wme in group:
                        output.left_activate(token, wme, network)
                    continue
                check = match_residual if verified else match_full
                lookup = token.lookup
                for wme in group:
                    attempted += 1
                    if check(wme, lookup):
                        passed += 1
                        output.left_activate(token, wme, network)
            for token in extras:
                lookup = token.lookup
                for wme in group:
                    attempted += 1
                    if match_full(wme, lookup):
                        passed += 1
                        output.left_activate(token, wme, network)
        stats = self.stats
        if stats.enabled:
            stats.right_activation(self.stats_key)
            stats.group_probe(self.stats_key, len(groups), candidates_total)
            stats.join_batch(self.stats_key, attempted, passed)
        for wme in leftovers:
            self.right_activate(wme)

    def share_key(self):
        """Key for beta-level sharing of identical joins."""
        return (id(self.amem), tuple(test.key() for test in self.tests))

    def __repr__(self):
        return f"JoinNode(level={self.level}, {len(self.tests)} tests)"
