"""S-nodes: aggregation of regular instantiations into SOIs (paper §5).

An S-node is "placed after the last test node of a rule containing set
clauses".  Its static, rule-derived data is the paper's five-tuple
``(C, P, APVs, ACEs, T)``:

* ``C`` — the non-set-oriented (scalar) CEs: here ``scalar_levels``;
* ``P`` — the set-oriented PVs named in ``:scalar``: here ``p_specs``
  as ``(name, level, attribute)`` binding sites;
* ``APVs``/``ACEs`` — aggregate operations, unified as
  :class:`~repro.rete.aggregates.AggregateSpec`;
* ``T`` — the ``:test`` expression.

Its γ-memory is a list of candidate SOIs, each a ``(Tokens, Status,
AV)`` triple: :class:`SetOrientedInstance` keeps the token list ordered
like the conflict set (head = dominant), the active/inactive status,
and one :class:`~repro.rete.aggregates.AggregateState` per aggregate.

The token-arrival algorithm is the paper's Figure 3 verbatim — find the
SOI and the token's place in it, update aggregates and re-evaluate the
test, then decide whether to flow ``<S,+>``, ``<S,->`` or ``<S,time>``
to the P-node — with one documented amendment: when a ``same-time``
change flips the test expression from false to true (reachable only
when two tokens of one WM change share the newest time tag), the SOI is
activated; the paper's figure leaves it inactive, which contradicts its
own test semantics.  Set ``strict_paper_decide=True`` to get the
figure's literal behaviour.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.engine.stats import NULL_STATS
from repro.errors import EngineError
from repro.core.expr import evaluate, is_truthy as _is_truthy
from repro.lang import ast
from repro.rete.aggregates import AggregateSpec, AggregateState

# Status values (paper: active / inactive).
ACTIVE = "active"
INACTIVE = "inactive"

# chg values from Figure 3.
CHG_NEW = "new"
CHG_DELETE = "delete"
CHG_FAIL = "fail"
CHG_NEW_TIME = "new-time"
CHG_SAME_TIME = "same-time"

# Marks sent to the P-node.
MARK_ADD = "+"
MARK_REMOVE = "-"
MARK_TIME = "time"


class SetOrientedInstance:
    """One candidate SOI in an S-node's γ-memory.

    Implements the protocol expected by
    :class:`repro.core.instantiation.SetInstantiation`: ``tokens``
    (head first), ``version``, ``key_wme(level)``, ``p_value(name)``.
    """

    __slots__ = (
        "key",
        "tokens",
        "status",
        "version",
        "agg_states",
        "_key_wmes",
        "_p_values",
        "_neg_keys",
    )

    def __init__(self, key, key_wmes, p_values, agg_states):
        self.key = key
        self.tokens = []
        self.status = INACTIVE
        self.version = 0
        self.agg_states = agg_states
        self._key_wmes = key_wmes
        self._p_values = p_values
        # Parallel list of cached, sign-flipped recency keys: the token
        # list is descending by recency, so the flipped keys ascend and
        # bisect finds insertion/removal points in O(log n) instead of
        # the former O(n) scan calling time_tags() per comparison.
        self._neg_keys = []

    @staticmethod
    def _neg_key(token):
        return tuple(-tag for tag in token.time_tags())

    def key_wme(self, level):
        """The WME matched by scalar CE *level* (None if not scalar)."""
        return self._key_wmes.get(level)

    def p_value(self, name):
        """The partition value of ``:scalar`` variable *name*."""
        return self._p_values[name]

    def insert_token(self, token):
        """Insert ordered like the conflict set; True if it became head.

        Ties on recency keep arrival order (the new token goes after
        existing equals), matching the original linear-scan semantics.
        """
        neg_key = self._neg_key(token)
        index = bisect_right(self._neg_keys, neg_key)
        self._neg_keys.insert(index, neg_key)
        self.tokens.insert(index, token)
        return index == 0

    def remove_token(self, token):
        """Remove by identity; True if it was the head token."""
        neg_key = self._neg_key(token)
        lo = bisect_left(self._neg_keys, neg_key)
        hi = bisect_right(self._neg_keys, neg_key, lo=lo)
        for index in range(lo, hi):
            if self.tokens[index] is token:
                del self.tokens[index]
                del self._neg_keys[index]
                return index == 0
        raise EngineError("token not present in SOI")

    def gamma_entry(self):
        """The paper's (Tokens, Status, AV) triple, for inspection/tests."""
        return (
            list(self.tokens),
            self.status,
            [state.snapshot() for state in self.agg_states],
        )

    def __repr__(self):
        return (
            f"SOI(key={self.key!r}, {len(self.tokens)} tokens, "
            f"{self.status}, v{self.version})"
        )


class _TestResolver:
    """Resolves variables/aggregates while evaluating an SOI's ``:test``."""

    __slots__ = ("snode", "soi")

    def __init__(self, snode, soi):
        self.snode = snode
        self.soi = soi

    def var(self, name):
        if name in self.soi._p_values:
            return self.soi._p_values[name]
        site = self.snode.analysis.binding_sites.get(name)
        if site is not None and site[0] in self.snode.scalar_levels:
            wme = self.soi.key_wme(site[0])
            return wme.get(site[1])
        raise EngineError(
            f"rule {self.snode.rule.name}: :test references <{name}>, "
            f"which is not a scalar binding"
        )

    def aggregate(self, node):
        for spec, state in zip(self.snode.agg_specs, self.soi.agg_states):
            if spec.matches(node.op, node.target, node.attribute):
                return state.value()
        raise EngineError(
            f"rule {self.snode.rule.name}: no aggregate state for "
            f"({node.op} <{node.target}>)"
        )


class SNode:
    """The S-node proper: γ-memory plus the Figure 3 algorithm."""

    def __init__(self, rule, analysis, agg_specs, emit,
                 strict_paper_decide=False, stats=None):
        self.rule = rule
        self.analysis = analysis
        self.scalar_levels = analysis.scalar_ce_levels
        self.p_specs = self._build_p_specs(rule, analysis)
        self.agg_specs = tuple(agg_specs)
        self.test = rule.test
        self.emit = emit
        self.strict_paper_decide = strict_paper_decide
        self.gamma = {}
        self._token_total = 0
        # Batched-propagation staging: while _batch_depth > 0, token
        # arrivals update γ-memory and aggregates immediately but defer
        # test evaluation and decide-flow to flush_batch(), which runs
        # them once per touched SOI.  _staged maps each touched SOI
        # (insertion order) to its pre-batch snapshot.
        self._batch_depth = 0
        self._staged = {}
        self.attach_stats(stats if stats is not None else NULL_STATS)

    def attach_stats(self, stats):
        self.stats = stats
        self.stats_key = stats.register_node("snode", self.rule.name)

    @staticmethod
    def _build_p_specs(rule, analysis):
        """Binding sites for the :scalar PVs that are truly set-located."""
        specs = []
        for name in rule.scalar_vars:
            site = analysis.binding_sites.get(name)
            if site is None:
                continue
            level, attribute = site
            # A :scalar var whose binding site is already a scalar CE is
            # scalar anyway; only set-CE sites partition the relation.
            if rule.ces[level].set_oriented:
                specs.append((name, level, attribute))
        # Scalar vars computed from the rule (not listed, but occurring
        # in regular CEs) are covered by C (scalar levels) already.
        return tuple(specs)

    # -- observer protocol (terminal node) --------------------------------

    def token_added(self, token):
        if self._batch_depth:
            self._process_staged(token, "+")
        else:
            self._process(token, "+")

    def token_removed(self, token):
        if self._batch_depth:
            self._process_staged(token, "-")
        else:
            self._process(token, "-")

    # -- Figure 3 ---------------------------------------------------------

    def _key_of(self, token):
        parts = [
            token.wme_at(level).time_tag for level in self.scalar_levels
        ]
        parts.extend(
            token.wme_at(level).get(attribute)
            for _, level, attribute in self.p_specs
        )
        return tuple(parts)

    def _new_soi(self, key, token):
        key_wmes = {
            level: token.wme_at(level) for level in self.scalar_levels
        }
        p_values = {
            name: token.wme_at(level).get(attribute)
            for name, level, attribute in self.p_specs
        }
        agg_states = [AggregateState(spec) for spec in self.agg_specs]
        return SetOrientedInstance(key, key_wmes, p_values, agg_states)

    def _process(self, token, sign):
        # Stage 1: find the SOI and place the token within it.
        key = self._key_of(token)
        soi = self.gamma.get(key)
        if sign == "+":
            if soi is None:
                soi = self._new_soi(key, token)
                self.gamma[key] = soi
                soi.insert_token(token)
                chg = CHG_NEW
                soi.status = INACTIVE
            else:
                at_head = soi.insert_token(token)
                chg = CHG_NEW_TIME if at_head else CHG_SAME_TIME
        else:
            if soi is None:
                return
            was_head = soi.remove_token(token)
            if not soi.tokens:
                chg = CHG_DELETE
                del self.gamma[key]
            elif was_head:
                chg = CHG_NEW_TIME
            else:
                chg = CHG_SAME_TIME
        soi.version += 1

        # Stage 2: update the aggregates and re-evaluate the test.
        if chg != CHG_DELETE:
            for state in soi.agg_states:
                if sign == "+":
                    state.add_token(token)
                else:
                    state.remove_token(token)
            if self.test is not None and not self._eval_test(soi):
                chg = CHG_FAIL

        # Stage 3: decide the flow of the SOI.
        self._decide(soi, chg)
        self._token_total += 1 if sign == "+" else -1
        if self.stats.enabled:
            self.stats.gamma_size(
                self.stats_key, len(self.gamma), self._token_total
            )

    # -- batched propagation ----------------------------------------------

    def begin_batch(self):
        """Enter staged mode: defer decide-flow until :meth:`flush_batch`."""
        self._batch_depth += 1

    def _process_staged(self, token, sign):
        """Figure 3, stages 1-2 only: place the token, fold aggregates.

        The SOI's pre-batch snapshot (existed?, status, head token) is
        captured at first touch; stage 3 runs once per SOI at flush.
        An SOI emptied mid-batch leaves γ-memory immediately, so a
        later same-key arrival builds a fresh SOI — exactly the
        delete-then-recreate a per-event replay would produce.
        """
        key = self._key_of(token)
        soi = self.gamma.get(key)
        if sign == "+":
            if soi is None:
                soi = self._new_soi(key, token)
                self.gamma[key] = soi
                if soi not in self._staged:
                    self._staged[soi] = (False, INACTIVE, None)
            elif soi not in self._staged:
                self._staged[soi] = (True, soi.status, soi.tokens[0])
            soi.insert_token(token)
            for state in soi.agg_states:
                state.add_token(token)
            self._token_total += 1
        else:
            if soi is None:
                return
            if soi not in self._staged:
                self._staged[soi] = (True, soi.status, soi.tokens[0])
            soi.remove_token(token)
            for state in soi.agg_states:
                state.remove_token(token)
            if not soi.tokens:
                del self.gamma[key]
            self._token_total -= 1

    def flush_batch(self):
        """Leave staged mode: run test + decide once per touched SOI.

        The per-SOI outcome is computed from the pre-batch snapshot and
        the post-batch state, reproducing what a per-event replay of
        the net delta-set would leave behind: status, membership, and
        a single ``+``/``-``/``time`` mark (the version is bumped once,
        which is refire-equivalent to the replay's k bumps).
        """
        self._batch_depth -= 1
        if self._batch_depth > 0:
            return
        staged, self._staged = self._staged, {}
        reevals = 0
        for soi, (existed, status0, head0) in staged.items():
            soi.version += 1
            if not soi.tokens:
                # Emptied (and already evicted from γ-memory).
                if status0 == ACTIVE:
                    self._send(MARK_REMOVE, soi)
                continue
            passes = True
            if self.test is not None:
                reevals += 1
                passes = self._eval_test(soi)
            if passes:
                if status0 == ACTIVE:
                    if soi.tokens[0] is not head0:
                        self._send(MARK_TIME, soi)
                else:
                    soi.status = ACTIVE
                    self._send(MARK_ADD, soi)
            elif status0 == ACTIVE:
                soi.status = INACTIVE
                self._send(MARK_REMOVE, soi)
        if self.stats.enabled and staged:
            self.stats.snode_batch(self.stats_key, len(staged), reevals)
            self.stats.gamma_size(
                self.stats_key, len(self.gamma), self._token_total
            )

    def _eval_test(self, soi):
        resolver = _TestResolver(self, soi)
        result = evaluate(self.test, resolver)
        return _is_truthy(result)

    def _send(self, kind, soi):
        """Forward one mark to the P-node, counting it by kind."""
        self.stats.snode_mark(self.stats_key, kind)
        self.emit(kind, soi)

    def _decide(self, soi, chg):
        if chg == CHG_NEW:
            soi.status = ACTIVE
            self._send(MARK_ADD, soi)
        elif chg == CHG_DELETE:
            if soi.status == ACTIVE:
                self._send(MARK_REMOVE, soi)
        elif chg == CHG_FAIL:
            if soi.status == ACTIVE:
                soi.status = INACTIVE
                self._send(MARK_REMOVE, soi)
        elif chg == CHG_NEW_TIME:
            if soi.status == ACTIVE:
                self._send(MARK_TIME, soi)
            else:
                soi.status = ACTIVE
                self._send(MARK_ADD, soi)
        elif chg == CHG_SAME_TIME:
            if soi.status == INACTIVE and not self.strict_paper_decide:
                # Amendment: the test just flipped true on a non-head
                # change; Figure 3 as printed would leave the SOI out of
                # the conflict set forever.
                soi.status = ACTIVE
                self._send(MARK_ADD, soi)

    # -- inspection ---------------------------------------------------------

    def gamma_memory(self):
        """The γ-memory as the paper describes it: list of triples."""
        return [soi.gamma_entry() for soi in self.gamma.values()]

    def static_data(self):
        """The paper's five-tuple (C, P, APVs, ACEs, T)."""
        apvs = tuple(s for s in self.agg_specs if s.kind == "pv")
        aces = tuple(s for s in self.agg_specs if s.kind == "ce")
        return (
            self.scalar_levels,
            tuple(name for name, _, _ in self.p_specs),
            apvs,
            aces,
            self.test,
        )

    def __repr__(self):
        return f"SNode({self.rule.name}, {len(self.gamma)} SOIs)"


def build_aggregate_specs(rule, analysis):
    """Derive the S-node's APVs/ACEs from the rule's ``:test``."""
    specs = []
    seen = set()
    if rule.test is None:
        return specs
    element_vars = rule.element_vars()
    set_vars = set(rule.set_variables())
    for node in ast.walk_aggregates(rule.test):
        identity = (node.op, node.target, node.attribute)
        if identity in seen:
            continue
        seen.add(identity)
        if node.target in element_vars:
            level = element_vars[node.target]
            specs.append(
                AggregateSpec(node.op, node.target, "ce", level,
                              node.attribute)
            )
        elif node.target in set_vars:
            level, attribute = analysis.binding_sites[node.target]
            specs.append(
                AggregateSpec(node.op, node.target, "pv", level, attribute)
            )
        else:
            raise EngineError(
                f"rule {rule.name}: aggregate target <{node.target}> is "
                f"not set-oriented"
            )
    return specs
