"""Terminal production nodes.

:class:`PNode` terminates a regular rule: every token reaching it is one
instantiation, inserted into / retracted from the conflict set.

:class:`SetPNode` terminates a set-oriented rule.  It consumes the
``+`` / ``-`` / ``time`` marks emitted by the rule's S-node (paper §5):
``+`` adds the SOI to the conflict set, ``-`` removes it, and ``time``
repositions it — "time tokens represent SOIs that are currently in the
conflict set, but must be repositioned".  Because only a pointer to the
live SOI is passed, γ-memory updates to an active SOI transparently
update the conflict-set entry.
"""

from __future__ import annotations

from repro.core.instantiation import Instantiation, SetInstantiation


class PNode:
    """Terminal node of a regular (tuple-oriented) rule."""

    __slots__ = ("rule", "network", "_instantiations")

    def __init__(self, rule, network):
        self.rule = rule
        self.network = network
        self._instantiations = {}

    def token_added(self, token):
        instantiation = Instantiation(self.rule, token)
        self._instantiations[id(token)] = instantiation
        self.network.listener.insert(instantiation)

    def token_removed(self, token):
        instantiation = self._instantiations.pop(id(token), None)
        if instantiation is not None:
            self.network.listener.retract(instantiation)

    def __len__(self):
        return len(self._instantiations)

    def __repr__(self):
        return f"PNode({self.rule.name}, {len(self._instantiations)} insts)"


class SetPNode:
    """Terminal node of a set-oriented rule, fed by an S-node."""

    __slots__ = ("rule", "network", "_instantiations")

    def __init__(self, rule, network):
        self.rule = rule
        self.network = network
        self._instantiations = {}

    def receive(self, mark, soi):
        """The S-node's emit hook: mark is ``+``, ``-`` or ``time``."""
        if mark == "+":
            instantiation = SetInstantiation(self.rule, soi)
            self._instantiations[id(soi)] = instantiation
            self.network.listener.insert(instantiation)
        elif mark == "-":
            instantiation = self._instantiations.pop(id(soi), None)
            if instantiation is not None:
                self.network.listener.retract(instantiation)
        elif mark == "time":
            instantiation = self._instantiations.get(id(soi))
            if instantiation is not None:
                self.network.listener.reposition(instantiation)
        else:
            raise ValueError(f"unknown S-node mark {mark!r}")

    def __len__(self):
        return len(self._instantiations)

    def __repr__(self):
        return (
            f"SetPNode({self.rule.name}, {len(self._instantiations)} SOIs)"
        )
