"""The alpha network: per-WME constant tests feeding alpha memories.

Each distinct combination of (class, constant checks, intra-element
tests) gets exactly one :class:`AlphaMemory`, shared by every CE — in
any rule, set-oriented or not — with the same tests.  The
:class:`AlphaNetwork` indexes memories by WME class so an event only
visits candidate memories.
"""

from __future__ import annotations


class AlphaMemory:
    """The WMEs currently passing one CE's local (single-WME) tests.

    ``successors`` are beta-side consumers (join or negative nodes)
    right-activated when the memory changes.
    """

    __slots__ = ("key", "analysis", "items", "successors", "indexes")

    def __init__(self, key, analysis):
        self.key = key
        self.analysis = analysis
        # dict used as an ordered set: insertion order, O(1) removal.
        self.items = {}
        self.successors = []
        # attribute -> {value -> {wme: None}}; built on demand by
        # equality joins so left activations probe instead of scanning.
        self.indexes = {}

    def ensure_index(self, attribute):
        """Create (once) the WME index on *attribute*."""
        if attribute in self.indexes:
            return
        index = {}
        for wme in self.items:
            index.setdefault(wme.get(attribute), {})[wme] = None
        self.indexes[attribute] = index

    def indexed_wmes(self, attribute, value):
        """WMEs whose *attribute* equals *value* (index probe)."""
        return list(self.indexes[attribute].get(value, ()))

    def add(self, wme):
        self.items[wme] = None
        for attribute, index in self.indexes.items():
            index.setdefault(wme.get(attribute), {})[wme] = None
        for successor in self.successors:
            successor.right_activate(wme)

    def remove(self, wme):
        self.items.pop(wme, None)
        for attribute, index in self.indexes.items():
            bucket = index.get(wme.get(attribute))
            if bucket is not None:
                bucket.pop(wme, None)
                if not bucket:
                    del index[wme.get(attribute)]
        for successor in self.successors:
            successor.right_retract(wme)

    def __contains__(self, wme):
        return wme in self.items

    def __len__(self):
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def __repr__(self):
        return f"AlphaMemory({self.key[0]}, {len(self.items)} wmes)"


class AlphaNetwork:
    """Builds and feeds the shared alpha memories."""

    def __init__(self):
        self._memories = {}
        self._by_class = {}

    def memory_for(self, ce_analysis, key_extra=None):
        """Return (creating if needed) the alpha memory for a CE.

        *key_extra* (used by the sharing ablation) makes the key unique
        so no two CEs share a memory.
        """
        key = ce_analysis.alpha_key()
        if key_extra is not None:
            key = key + (("private", key_extra),)
        memory = self._memories.get(key)
        if memory is None:
            memory = AlphaMemory(key, ce_analysis)
            self._memories[key] = memory
            self._by_class.setdefault(ce_analysis.ce.wme_class, []).append(
                memory
            )
        return memory

    def memories(self):
        return list(self._memories.values())

    @property
    def memory_count(self):
        return len(self._memories)

    def add_wme(self, wme, backfill_only=None):
        """Route a new WME into every alpha memory whose tests it passes.

        With *backfill_only*, only that memory is considered — used when
        a rule is added after WMEs already exist.
        """
        candidates = (
            [backfill_only]
            if backfill_only is not None
            else self._by_class.get(wme.wme_class, [])
        )
        for memory in candidates:
            if memory.analysis.wme_passes_alpha(wme):
                memory.add(wme)

    def remove_wme(self, wme):
        """Retract a WME from every alpha memory containing it."""
        for memory in self._by_class.get(wme.wme_class, []):
            if wme in memory:
                memory.remove(wme)
