"""The alpha network: per-WME constant tests feeding alpha memories.

Each distinct combination of (class, constant checks, intra-element
tests) gets exactly one :class:`AlphaMemory`, shared by every CE — in
any rule, set-oriented or not — with the same tests.  The
:class:`AlphaNetwork` indexes memories by WME class so an event only
visits candidate memories.

Index buckets are keyed by attribute value.  Unhashable values (a WME
made programmatically can carry lists or dicts) go into a sentinel
bucket that every probe also returns, so join nodes still post-filter
them with the full test list instead of raising mid-propagation.
"""

from __future__ import annotations

from repro.engine.stats import NULL_STATS

#: Sentinel bucket key for index entries whose value is unhashable.
UNHASHABLE = object()


class AlphaMemory:
    """The WMEs currently passing one CE's local (single-WME) tests.

    ``successors`` are beta-side consumers (join or negative nodes)
    right-activated when the memory changes.

    ``passes`` is the memory's admission predicate: the interpreted
    :meth:`repro.analysis.CEAnalysis.wme_passes_alpha` by default, or a
    compiled kernel when the network carries a
    :class:`~repro.rete.kernels.KernelPack`.

    With ``columnar=True`` the memory additionally mirrors its WMEs
    into parallel per-attribute arrays (``wme_list`` + ``columns``),
    kept in insertion order so columnar scans visit candidates exactly
    like an ``items`` iteration.  Columns are built lazily per
    attribute (joins ask only for the attributes their tests read) and
    rebuilt wholesale after removals rather than spending O(columns)
    per retract.
    """

    __slots__ = ("key", "analysis", "items", "successors", "indexes",
                 "stats", "stats_key", "passes", "columnar", "wme_list",
                 "columns", "_columns_dirty")

    def __init__(self, key, analysis, stats=None, kernels=None,
                 columnar=False):
        self.key = key
        self.analysis = analysis
        # dict used as an ordered set: insertion order, O(1) removal.
        self.items = {}
        self.successors = []
        # attribute -> {value -> {wme: None}}; built on demand by
        # equality joins so left activations probe instead of scanning.
        self.indexes = {}
        self.passes = (
            kernels.alpha(analysis)
            if kernels is not None
            else analysis.wme_passes_alpha
        )
        self.columnar = bool(columnar)
        self.wme_list = []
        self.columns = {}
        self._columns_dirty = False
        self.attach_stats(stats if stats is not None else NULL_STATS)

    def attach_stats(self, stats):
        self.stats = stats
        self.stats_key = stats.register_node("alpha", str(self.key[0]))

    # -- columnar mirror ---------------------------------------------------

    def ensure_column(self, attribute):
        """Create (once) the parallel value array for *attribute*."""
        if attribute not in self.columns:
            self.columns[attribute] = [
                wme.get(attribute) for wme in self.wme_list
            ]

    def scan_view(self, attributes):
        """``(wmes, columns)`` aligned arrays for a columnar scan.

        Refreshes the mirror if removals invalidated it; the returned
        order equals ``items`` insertion order.
        """
        if self._columns_dirty or len(self.wme_list) != len(self.items):
            self.wme_list = list(self.items)
            for attribute in self.columns:
                self.columns[attribute] = [
                    wme.get(attribute) for wme in self.wme_list
                ]
            self._columns_dirty = False
        for attribute in attributes:
            self.ensure_column(attribute)
        return self.wme_list, self.columns

    def _columnar_add(self, wme):
        if self._columns_dirty:
            return  # the next scan_view rebuilds everything anyway
        self.wme_list.append(wme)
        for attribute, column in self.columns.items():
            column.append(wme.get(attribute))

    def ensure_index(self, attribute):
        """Create (once) the WME index on *attribute*."""
        if attribute in self.indexes:
            return
        index = {}
        for wme in self.items:
            _index_add(index, wme.get(attribute), wme)
        self.indexes[attribute] = index

    def indexed_wmes(self, attribute, value):
        """WMEs whose *attribute* equals *value* (index probe).

        Raises ``TypeError`` when *value* is unhashable; callers fall
        back to a full scan.  The unhashable bucket is always included
        — its members are post-filtered by the join's full test list.
        """
        index = self.indexes[attribute]
        matches = list(index.get(value, ()))
        extra = index.get(UNHASHABLE)
        if extra:
            matches.extend(extra)
        return matches

    def add(self, wme):
        self.items[wme] = None
        if self.columnar:
            self._columnar_add(wme)
        for attribute, index in self.indexes.items():
            _index_add(index, wme.get(attribute), wme)
        self.stats.alpha_activation(self.stats_key, "+", len(self.items))
        for successor in self.successors:
            successor.right_activate(wme)

    def add_batch(self, wmes):
        """Insert a whole delta group, then right-activate it as a set.

        All WMEs enter ``items`` (and the indexes) *before* any
        successor runs, so a join's left activations triggered by the
        cascade see the complete group — the batched counterpart of the
        exactly-once pair-discovery invariant.  Successor order is the
        same deepest-first order ``add`` uses.
        """
        for wme in wmes:
            self.items[wme] = None
            if self.columnar:
                self._columnar_add(wme)
            for attribute, index in self.indexes.items():
                _index_add(index, wme.get(attribute), wme)
        self.stats.alpha_activation(self.stats_key, "+", len(self.items))
        for successor in self.successors:
            successor.right_activate_batch(wmes)

    def remove(self, wme):
        self.items.pop(wme, None)
        if self.columnar:
            self._columns_dirty = True
        for attribute, index in self.indexes.items():
            _index_discard(index, wme.get(attribute), wme)
        self.stats.alpha_activation(self.stats_key, "-", len(self.items))
        for successor in self.successors:
            successor.right_retract(wme)

    def __contains__(self, wme):
        return wme in self.items

    def __len__(self):
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def __repr__(self):
        return f"AlphaMemory({self.key[0]}, {len(self.items)} wmes)"


def _index_add(index, value, member):
    """Insert *member* into the bucket for *value* (sentinel if unhashable)."""
    try:
        bucket = index.setdefault(value, {})
    except TypeError:
        bucket = index.setdefault(UNHASHABLE, {})
    bucket[member] = None


def _index_discard(index, value, member):
    """Drop *member* from its bucket, pruning the bucket when empty."""
    try:
        bucket = index.get(value)
    except TypeError:
        value = UNHASHABLE
        bucket = index.get(value)
    if bucket is not None:
        bucket.pop(member, None)
        if not bucket:
            del index[value]


class AlphaNetwork:
    """Builds and feeds the shared alpha memories.

    *kernels* (a :class:`~repro.rete.kernels.KernelPack` or None) makes
    every memory's admission predicate a compiled kernel; *columnar*
    additionally gives each memory the parallel-array mirror columnar
    scans and the process-pool mask offload evaluate against.
    """

    def __init__(self, stats=None, kernels=None, columnar=False):
        self._memories = {}
        self._by_class = {}
        self.kernels = kernels
        self.columnar = bool(columnar)
        self.stats = stats if stats is not None else NULL_STATS

    def attach_stats(self, stats):
        self.stats = stats
        for memory in self._memories.values():
            memory.attach_stats(stats)

    def memory_for(self, ce_analysis, key_extra=None):
        """Return (creating if needed) the alpha memory for a CE.

        *key_extra* (used by the sharing ablation) makes the key unique
        so no two CEs share a memory.
        """
        key = ce_analysis.alpha_key()
        if key_extra is not None:
            key = key + (("private", key_extra),)
        memory = self._memories.get(key)
        if memory is None:
            memory = AlphaMemory(key, ce_analysis, stats=self.stats,
                                 kernels=self.kernels,
                                 columnar=self.columnar)
            self._memories[key] = memory
            self._by_class.setdefault(ce_analysis.ce.wme_class, []).append(
                memory
            )
        return memory

    def memories(self):
        return list(self._memories.values())

    def handles_class(self, wme_class):
        """Does any alpha memory admit WMEs of *wme_class*?"""
        return wme_class in self._by_class

    def classes(self):
        """The WME classes this network has memories for."""
        return tuple(self._by_class)

    def memories_of_class(self, wme_class):
        """The alpha memories fed by *wme_class* (possibly empty)."""
        return self._by_class.get(wme_class, [])

    @property
    def memory_count(self):
        return len(self._memories)

    def add_wme(self, wme, backfill_only=None):
        """Route a new WME into every alpha memory whose tests it passes.

        With *backfill_only*, only that memory is considered — used when
        a rule is added after WMEs already exist.
        """
        candidates = (
            [backfill_only]
            if backfill_only is not None
            else self._by_class.get(wme.wme_class, [])
        )
        for memory in candidates:
            if memory.passes(wme):
                memory.add(wme)

    def add_batch(self, wmes, alpha_filter=None):
        """Route a delta-set into the alpha network, partitioned by class.

        Each alpha memory receives its passing subset as one
        ``add_batch`` call (one activation, one group right-activation
        per successor).  Memories are processed one at a time —
        insert-then-activate per memory — which preserves the
        exactly-once pair discovery of the per-event path.

        *alpha_filter*, if given, is ``f(memory, group) -> passing``
        replacing the inline constant-test evaluation — the sharded
        matcher's process-pool mode precomputes the passing subsets
        out-of-process and injects them here.
        """
        by_class = {}
        for wme in wmes:
            by_class.setdefault(wme.wme_class, []).append(wme)
        for wme_class, group in by_class.items():
            for memory in self._by_class.get(wme_class, []):
                if alpha_filter is not None:
                    passing = alpha_filter(memory, group)
                else:
                    passes = memory.passes
                    passing = [w for w in group if passes(w)]
                if passing:
                    memory.add_batch(passing)

    def remove_wme(self, wme):
        """Retract a WME from every alpha memory containing it."""
        for memory in self._by_class.get(wme.wme_class, []):
            if wme in memory:
                memory.remove(wme)
