"""Compiled alpha/beta match kernels: the network's codegen layer.

The interpreted hot path evaluates every alpha constant test and every
beta join test by walking a list of test objects per activation —
``all(check.matches(wme) for check in checks)`` pays a generator, a
method dispatch, and a predicate-string comparison chain per test per
candidate.  This module compiles each node's test list **once, at
network-build time** into a specialized Python function:

* **closure mode** (the default) composes per-predicate closures with
  the operands captured as locals — no string dispatch, no generator,
  early exit between tests;
* **exec mode** (``REPRO_KERNELS=exec``) renders the whole test chain
  as Python source and ``exec``-compiles it into a single code object
  with the literals inlined in the bytecode;
* **off** restores the interpreted test walk — the always-available
  fallback seam, mirroring the storage layer's pushdown seam
  (``docs/STORAGE.md``): kernels may only change *speed*, never
  results, and every kernelized call site keeps its interpreted twin.

Kernels are cached per :class:`KernelPack` under a *structural key*
over the test list (the same ``key()`` tuples alpha/beta node sharing
uses), so two nodes with identical tests — across rules — share one
compiled function.  ``MatchStats`` counts ``kernels_compiled`` and
``kernel_cache_hits``; the bench gate pins ``kernels_compiled`` exactly
so a silently-lost compilation fails the build.

The module also supplies the **columnar** half of the story: alpha
memories can mirror their WMEs into parallel per-attribute arrays
(:class:`repro.rete.alpha.AlphaMemory` with ``columnar=True``), and
:func:`columnar_mask` evaluates a compiled constant-test chain over
those arrays column-at-a-time — the representation the sharded
matcher's process-pool offload ships across process boundaries instead
of pickled WME objects (see ``docs/PARALLELISM.md``).

Selection is uniform: ``RuleEngine(kernels=...)``, the CLI
``--kernels`` flag, or the ``REPRO_KERNELS`` environment variable, all
taking ``off`` | ``closure`` | ``exec``.  See ``docs/KERNELS.md``.
"""

from __future__ import annotations

import math
import os
import threading

from repro.engine.stats import NULL_STATS
from repro.errors import ReproError
from repro.symbols import same_type, values_equal

#: Recognised kernel modes, in documentation order.
KERNEL_MODES = ("off", "closure", "exec")

#: Mode used when neither the caller nor ``REPRO_KERNELS`` chooses.
DEFAULT_MODE = "closure"

NUMBER_TYPES = (int, float)


def resolve_kernels(spec=None):
    """Resolve a kernel-mode spec to ``off`` / ``closure`` / ``exec``.

    *spec* ``None`` falls back to the ``REPRO_KERNELS`` environment
    variable, then to :data:`DEFAULT_MODE`.  Booleans are accepted as
    conveniences: ``True`` means the default compiled mode, ``False``
    means ``off``.
    """
    if spec is None:
        spec = os.environ.get("REPRO_KERNELS") or DEFAULT_MODE
    if spec is True:
        return DEFAULT_MODE
    if spec is False:
        return "off"
    mode = str(spec).strip().lower()
    if mode not in KERNEL_MODES:
        raise ReproError(
            f"unknown kernel mode {spec!r} "
            f"(expected one of {', '.join(KERNEL_MODES)})"
        )
    return mode


# -- predicate comparators (pairwise, exact OPS5 semantics) ---------------
#
# Each comparator mirrors symbols.apply_predicate for one fixed
# predicate, skipping the string-dispatch chain.  They are module-level
# (not lambdas) so exec'd kernels and pickled specs can reference them.

def _cmp_eq(left, right):
    return values_equal(left, right)


def _cmp_ne(left, right):
    return not values_equal(left, right)


def _cmp_same_type(left, right):
    return same_type(left, right)


def _cmp_lt(left, right):
    return (isinstance(left, NUMBER_TYPES) and not isinstance(left, bool)
            and isinstance(right, NUMBER_TYPES)
            and not isinstance(right, bool) and left < right)


def _cmp_le(left, right):
    return (isinstance(left, NUMBER_TYPES) and not isinstance(left, bool)
            and isinstance(right, NUMBER_TYPES)
            and not isinstance(right, bool) and left <= right)


def _cmp_gt(left, right):
    return (isinstance(left, NUMBER_TYPES) and not isinstance(left, bool)
            and isinstance(right, NUMBER_TYPES)
            and not isinstance(right, bool) and left > right)


def _cmp_ge(left, right):
    return (isinstance(left, NUMBER_TYPES) and not isinstance(left, bool)
            and isinstance(right, NUMBER_TYPES)
            and not isinstance(right, bool) and left >= right)


COMPARATORS = {
    "=": _cmp_eq,
    "<>": _cmp_ne,
    "<=>": _cmp_same_type,
    "<": _cmp_lt,
    "<=": _cmp_le,
    ">": _cmp_gt,
    ">=": _cmp_ge,
}

_ORDER_PREDICATES = ("<", "<=", ">", ">=")


def _is_ops_number(value):
    return isinstance(value, NUMBER_TYPES) and not isinstance(value, bool)


# -- alpha specs ----------------------------------------------------------
#
# A spec is the picklable, structural description of one alpha memory's
# constant-test chain: (wme_class, (descriptor, ...)).  Descriptors:
#   ("const", attribute, predicate, operand)   constant / disjunction
#   ("intra", attribute, predicate, other_attribute)
# The spec doubles as the kernel cache key and as the payload the
# sharded matcher ships to process-pool workers.

def alpha_spec(analysis):
    """The structural spec of *analysis*'s alpha tests (picklable)."""
    checks = tuple(
        ("const", check.attribute, check.predicate, check.operand)
        for check in analysis.constant_checks
    ) + tuple(
        ("intra", test.attribute, test.predicate, test.other_attribute)
        for test in analysis.intra_tests
    )
    return (analysis.ce.wme_class, checks)


def _const_value_predicate(predicate, operand):
    """Compile one constant check into ``fn(value) -> bool``."""
    if isinstance(operand, tuple):
        # Disjunction (always '='): category-checked set membership.
        # Numeric candidates match across int/float via hash equality,
        # exactly like values_equal.
        symbols_set = frozenset(x for x in operand if isinstance(x, str))
        numbers_set = frozenset(x for x in operand if _is_ops_number(x))

        def fn(value, _s=symbols_set, _n=numbers_set):
            if isinstance(value, str):
                return value in _s
            if isinstance(value, NUMBER_TYPES) and not isinstance(
                value, bool
            ):
                return value in _n
            return False

        return fn
    if predicate in ("=", "<>"):
        if _is_ops_number(operand):
            def eq(value, _c=operand):
                return (isinstance(value, NUMBER_TYPES)
                        and not isinstance(value, bool) and value == _c)
        elif isinstance(operand, str):
            def eq(value, _c=operand):
                return isinstance(value, str) and value == _c
        else:
            # Out-of-domain operand: values_equal is False for every
            # WME value, so '=' never matches and '<>' always does.
            def eq(value):
                return False
        if predicate == "=":
            return eq

        def ne(value, _eq=eq):
            return not _eq(value)

        return ne
    if predicate == "<=>":
        if _is_ops_number(operand):
            def fn(value):
                return (isinstance(value, NUMBER_TYPES)
                        and not isinstance(value, bool))
        elif isinstance(operand, str):
            def fn(value):
                return isinstance(value, str)
        else:
            def fn(value):
                return False
        return fn
    if predicate in _ORDER_PREDICATES:
        if not _is_ops_number(operand):
            def fn(value):
                return False
            return fn
        comparator = COMPARATORS[predicate]

        def fn(value, _cmp=comparator, _c=operand):
            return _cmp(value, _c)

        return fn
    # Unknown predicate: defer to the interpreter's error behaviour.
    from repro import symbols

    def fn(value, _p=predicate, _c=operand):
        return symbols.apply_predicate(_p, value, _c)

    return fn


def _alpha_column_ops(spec):
    """Per-attribute value predicates / pair comparators for *spec*.

    Returns ``[("value", attribute, fn(value)), ...]`` and
    ``[("pair", attribute, other, fn(left, right)), ...]`` merged in
    spec order — the shared core of the per-WME kernel and the
    columnar mask.
    """
    ops = []
    for desc in spec[1]:
        if desc[0] == "const":
            _, attribute, predicate, operand = desc
            ops.append(
                ("value", attribute,
                 _const_value_predicate(predicate, operand))
            )
        else:
            _, attribute, predicate, other = desc
            ops.append(("pair", attribute, other, COMPARATORS[predicate]))
    return ops


def _closure_alpha_kernel(spec):
    """Closure-mode ``fn(wme) -> bool`` for one alpha spec."""
    wme_class = spec[0]
    ops = _alpha_column_ops(spec)
    if not ops:
        def kernel(wme, _cls=wme_class):
            return wme.wme_class == _cls
        return kernel
    if len(ops) == 1 and ops[0][0] == "value":
        _, attribute, predicate = ops[0]

        def kernel(wme, _cls=wme_class, _a=attribute, _p=predicate):
            return wme.wme_class == _cls and _p(wme.get(_a))

        return kernel
    compiled = tuple(ops)

    def kernel(wme, _cls=wme_class, _ops=compiled):
        if wme.wme_class != _cls:
            return False
        get = wme.get
        for op in _ops:
            if op[0] == "value":
                if not op[2](get(op[1])):
                    return False
            elif not op[3](get(op[1]), get(op[2])):
                return False
        return True

    return kernel


# -- exec-mode source rendering -------------------------------------------

_EXEC_HELPERS = {
    "values_equal": values_equal,
    "same_type": same_type,
    "isinstance": isinstance,
    "_N": NUMBER_TYPES,
    "_B": bool,
}


class _Unrenderable(Exception):
    """An operand the source renderer cannot embed as a literal."""


def _literal(value):
    """Render *value* as a Python source literal (or refuse)."""
    if value is None or isinstance(value, (bool, int, str)):
        return repr(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise _Unrenderable(f"non-finite float {value!r}")
        return repr(value)
    raise _Unrenderable(f"operand {value!r} is not a literal")


def _number_guard(name):
    return f"isinstance({name}, _N) and not isinstance({name}, _B)"


def _render_const_condition(predicate, operand, name="v"):
    """The source expression testing one constant check against *name*."""
    if isinstance(operand, tuple):
        symbols_lit = tuple(x for x in operand if isinstance(x, str))
        numbers_lit = tuple(x for x in operand if _is_ops_number(x))
        sym_src = ", ".join(_literal(x) for x in symbols_lit)
        num_src = ", ".join(_literal(x) for x in numbers_lit)
        parts = []
        if symbols_lit:
            parts.append(f"(isinstance({name}, str) and {name} in "
                         f"({sym_src},))")
        if numbers_lit:
            parts.append(f"({_number_guard(name)} and {name} in "
                         f"({num_src},))")
        return " or ".join(parts) if parts else "False"
    literal = _literal(operand)
    if predicate in ("=", "<>"):
        if _is_ops_number(operand):
            positive = f"({_number_guard(name)} and {name} == {literal})"
        elif isinstance(operand, str):
            positive = f"(isinstance({name}, str) and {name} == {literal})"
        else:
            positive = "False"
        return positive if predicate == "=" else f"not {positive}"
    if predicate == "<=>":
        if _is_ops_number(operand):
            return f"({_number_guard(name)})"
        if isinstance(operand, str):
            return f"isinstance({name}, str)"
        return "False"
    if predicate in _ORDER_PREDICATES:
        if not _is_ops_number(operand):
            return "False"
        return (f"({_number_guard(name)} and {name} {predicate} "
                f"{literal})")
    raise _Unrenderable(f"predicate {predicate!r}")


def _render_pair_condition(predicate, left="v", right="b"):
    """The source expression comparing two runtime values."""
    if predicate == "=":
        return f"values_equal({left}, {right})"
    if predicate == "<>":
        return f"not values_equal({left}, {right})"
    if predicate == "<=>":
        return f"same_type({left}, {right})"
    if predicate in _ORDER_PREDICATES:
        return (f"({_number_guard(left)} and {_number_guard(right)} "
                f"and {left} {predicate} {right})")
    raise _Unrenderable(f"predicate {predicate!r}")


def render_alpha_source(spec):
    """Exec-mode Python source for one alpha spec (or _Unrenderable)."""
    lines = [
        "def alpha_kernel(wme):",
        f"    if wme.wme_class != {_literal(spec[0])}:",
        "        return False",
    ]
    for desc in spec[1]:
        if desc[0] == "const":
            _, attribute, predicate, operand = desc
            lines.append(f"    v = wme.get({attribute!r})")
            condition = _render_const_condition(predicate, operand)
            lines.append(f"    if not ({condition}):")
            lines.append("        return False")
        else:
            _, attribute, predicate, other = desc
            lines.append(f"    v = wme.get({attribute!r})")
            lines.append(f"    b = wme.get({other!r})")
            condition = _render_pair_condition(predicate)
            lines.append(f"    if not ({condition}):")
            lines.append("        return False")
    lines.append("    return True")
    return "\n".join(lines) + "\n"


def render_join_source(test_keys):
    """Exec-mode Python source for one join-test chain.

    *test_keys* are ``JoinTest.key()`` tuples:
    ``("join", attribute, predicate, bound_level, bound_attribute)``.
    """
    lines = ["def join_kernel(wme, lookup):"]
    if not test_keys:
        lines.append("    return True")
        return "\n".join(lines) + "\n"
    for _, attribute, predicate, level, bound_attribute in test_keys:
        lines.append(f"    v = wme.get({attribute!r})")
        lines.append(f"    b = lookup({level!r}, {bound_attribute!r})")
        condition = _render_pair_condition(predicate)
        lines.append(f"    if not ({condition}):")
        lines.append("        return False")
    lines.append("    return True")
    return "\n".join(lines) + "\n"


def _exec_compile(source, name):
    namespace = dict(_EXEC_HELPERS)
    code = compile(source, f"<repro-kernel:{name}>", "exec")
    exec(code, namespace)  # noqa: S102 - trusted, rendered from our AST
    fn = namespace[name]
    fn.__kernel_source__ = source
    return fn


def _exec_alpha_kernel(spec):
    try:
        return _exec_compile(render_alpha_source(spec), "alpha_kernel")
    except _Unrenderable:
        return _closure_alpha_kernel(spec)


# -- join kernels ---------------------------------------------------------

def _closure_join_kernel(tests):
    """Closure-mode ``fn(wme, lookup) -> bool`` for a join-test chain."""
    if not tests:
        def kernel(wme, lookup):
            return True
        return kernel
    compiled = tuple(
        (t.attribute, COMPARATORS[t.predicate], t.bound_level,
         t.bound_attribute)
        for t in tests
    )
    if len(compiled) == 1:
        attribute, comparator, level, bound = compiled[0]

        def kernel(wme, lookup, _a=attribute, _c=comparator, _l=level,
                   _b=bound):
            return _c(wme.get(_a), lookup(_l, _b))

        return kernel
    if len(compiled) == 2:
        (a0, c0, l0, b0), (a1, c1, l1, b1) = compiled

        def kernel(wme, lookup, _a0=a0, _c0=c0, _l0=l0, _b0=b0,
                   _a1=a1, _c1=c1, _l1=l1, _b1=b1):
            return (_c0(wme.get(_a0), lookup(_l0, _b0))
                    and _c1(wme.get(_a1), lookup(_l1, _b1)))

        return kernel

    def kernel(wme, lookup, _tests=compiled):
        get = wme.get
        for attribute, comparator, level, bound in _tests:
            if not comparator(get(attribute), lookup(level, bound)):
                return False
        return True

    return kernel


def _exec_join_kernel(tests):
    try:
        return _exec_compile(
            render_join_source(tuple(t.key() for t in tests)),
            "join_kernel",
        )
    except _Unrenderable:
        return _closure_join_kernel(tests)


def _scan_kernel(tests):
    """Columnar full-scan kernel ``fn(lookup, wmes, columns) -> passing``.

    Evaluates a join-test chain over an alpha memory's parallel
    per-attribute arrays for one fixed left token, hoisting every
    ``lookup`` (a walk up the token chain in the interpreted path —
    once per candidate per test) out of the loop entirely.  Candidate
    order is the arrays' order, which the columnar alpha memory keeps
    identical to insertion order, so downstream propagation order is
    unchanged.
    """
    compiled = tuple(
        (t.attribute, COMPARATORS[t.predicate], t.bound_level,
         t.bound_attribute)
        for t in tests
    )
    if not compiled:
        def kernel(lookup, wmes, columns):
            return list(wmes)
        return kernel
    if len(compiled) == 1:
        attribute, comparator, level, bound = compiled[0]

        def kernel(lookup, wmes, columns, _a=attribute, _c=comparator,
                   _l=level, _b=bound):
            target = lookup(_l, _b)
            column = columns[_a]
            return [
                wmes[i] for i, value in enumerate(column)
                if _c(value, target)
            ]

        return kernel

    def kernel(lookup, wmes, columns, _tests=compiled):
        bounds = [lookup(level, bound) for _, _, level, bound in _tests]
        cols = [columns[attribute] for attribute, _, _, _ in _tests]
        passing = []
        for i, wme in enumerate(wmes):
            for k, (_, comparator, _, _) in enumerate(_tests):
                if not comparator(cols[k][i], bounds[k]):
                    break
            else:
                passing.append(wme)
        return passing

    return kernel


# -- columnar mask evaluation (process-pool offload) ----------------------

#: Per-process compile cache for shipped alpha specs (worker side).
_SPEC_CACHE = {}


def columnar_mask(spec, columns, count):
    """Evaluate *spec*'s constant tests over parallel arrays.

    *columns* maps attribute name to a list of *count* values (one per
    candidate WME, all of the spec's class).  Returns a boolean mask.
    Used by the sharded matcher's ``executor="process"`` offload: the
    arrays pickle instead of the WME objects, and the kernel compiles
    once per worker process (cached by structural key).
    """
    ops = _SPEC_CACHE.get(spec)
    if ops is None:
        ops = _SPEC_CACHE[spec] = _alpha_column_ops(spec)
    mask = [True] * count
    for op in ops:
        if op[0] == "value":
            predicate = op[2]
            column = columns[op[1]]
            for i in range(count):
                if mask[i] and not predicate(column[i]):
                    mask[i] = False
        else:
            comparator = op[3]
            left = columns[op[1]]
            right = columns[op[2]]
            for i in range(count):
                if mask[i] and not comparator(left[i], right[i]):
                    mask[i] = False
    return mask


def spec_attributes(spec):
    """The attribute names *spec*'s tests read (for column shipping)."""
    attributes = []
    for desc in spec[1]:
        if desc[0] == "const":
            if desc[1] not in attributes:
                attributes.append(desc[1])
        else:
            for attribute in (desc[1], desc[3]):
                if attribute not in attributes:
                    attributes.append(attribute)
    return tuple(attributes)


# -- the pack -------------------------------------------------------------

class KernelPack:
    """One network's kernel compiler + structural cache.

    Shared by every node of a :class:`~repro.rete.network.ReteNetwork`
    (each shard of a sharded network owns its own pack), so nodes with
    identical test lists — within and across rules — share one compiled
    function.  Counters surface through the attached
    :class:`~repro.engine.stats.MatchStats` (``kernels_compiled`` /
    ``kernel_cache_hits``) and locally as ``compiled`` / ``cache_hits``.

    A pack constructed with ``shared=True`` is meant to outlive any one
    network: the service layer's rule-base cache
    (:mod:`repro.service.rulebase`) hands the same pack to every
    session built from the same program, so a thousand tenants compile
    each structural test chain once.  Shared packs are thread-safe
    (networks for different sessions may be built concurrently) and pin
    their stats hook: per-session ``set_stats`` calls must not
    re-attribute the shared compile counters to one tenant's collector.
    """

    __slots__ = ("mode", "stats", "compiled", "cache_hits", "_cache",
                 "shared", "_lock")

    def __init__(self, mode=None, stats=None, shared=False):
        self.mode = resolve_kernels(mode)
        if self.mode == "off":
            raise ReproError(
                "KernelPack requires a compiled mode (closure or exec); "
                "use kernels=None at the network level for 'off'"
            )
        self.stats = stats if stats is not None else NULL_STATS
        self.compiled = 0
        self.cache_hits = 0
        self._cache = {}
        self.shared = shared
        self._lock = threading.Lock()

    def attach_stats(self, stats):
        if self.shared:
            return
        self.stats = stats

    def _get(self, key, build):
        with self._lock:
            fn = self._cache.get(key)
            if fn is not None:
                self.cache_hits += 1
                self.stats.kernel_cache_hit()
                return fn
            fn = build()
            self._cache[key] = fn
            self.compiled += 1
            self.stats.kernel_compiled()
            return fn

    def alpha(self, analysis):
        """Compiled ``fn(wme) -> bool`` for a CE's alpha-test chain."""
        spec = alpha_spec(analysis)
        if self.mode == "exec":
            return self._get(("alpha", spec),
                             lambda: _exec_alpha_kernel(spec))
        return self._get(("alpha", spec),
                         lambda: _closure_alpha_kernel(spec))

    def join(self, tests):
        """Compiled ``fn(wme, lookup) -> bool`` for a join-test list."""
        tests = tuple(tests)
        key = ("join", tuple(t.key() for t in tests))
        if self.mode == "exec":
            return self._get(key, lambda: _exec_join_kernel(tests))
        return self._get(key, lambda: _closure_join_kernel(tests))

    def scan(self, tests):
        """Columnar scan kernel for a join-test list (see _scan_kernel)."""
        tests = tuple(tests)
        key = ("scan", tuple(t.key() for t in tests))
        return self._get(key, lambda: _scan_kernel(tests))

    def __repr__(self):
        return (f"KernelPack(mode={self.mode}, {len(self._cache)} cached, "
                f"{self.compiled} compiled, {self.cache_hits} hits)")


def build_kernels(spec=None, stats=None):
    """Resolve *spec* and return a :class:`KernelPack`, or None for off.

    *spec* may also be a ready-made :class:`KernelPack` — typically a
    ``shared=True`` pack from the service layer's rule-base cache — in
    which case it is returned as-is (its own stats binding wins).
    """
    if isinstance(spec, KernelPack):
        return spec
    mode = resolve_kernels(spec)
    if mode == "off":
        return None
    return KernelPack(mode, stats=stats)
