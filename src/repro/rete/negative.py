"""Negative nodes: support for negated condition elements ``-(...)``.

A negative node sits in the beta chain at its CE's level.  For each left
token it stores a token of its own (``wme=None``) along with the *join
results* — the alpha WMEs currently satisfying the negated pattern
against the token's bindings.  The token propagates downstream only
while its join-result list is empty.

When a blocking WME appears the token *deactivates* (its downstream
descendants are deleted); when the last blocker disappears it
*reactivates* and propagates afresh.
"""

from __future__ import annotations

from repro.rete.beta import Token, _interpreted_matcher


class NegativeNode:
    """Beta node for one negated CE.

    Like :class:`~repro.rete.beta.JoinNode`, the test list is compiled
    to a match kernel when the network carries a
    :class:`~repro.rete.kernels.KernelPack`; full scans over a columnar
    alpha memory run through the columnar scan kernel.  Candidate
    order, blocker lists, and stats counters are identical either way.
    """

    __slots__ = (
        "left",
        "amem",
        "tests",
        "level",
        "network",
        "items",
        "successors",
        "observers",
        "stats",
        "stats_key",
        "_match",
        "_scan",
        "_scan_attrs",
    )

    def __init__(self, left, amem, tests, level, network):
        self.left = left
        self.amem = amem
        self.tests = tuple(tests)
        self.level = level
        self.network = network
        self.items = {}
        self.successors = []
        self.observers = []
        kernels = getattr(network, "kernels", None)
        if kernels is not None:
            self._match = kernels.join(self.tests)
        else:
            self._match = _interpreted_matcher(self.tests)
        self._scan = None
        self._scan_attrs = ()
        if kernels is not None and getattr(amem, "columnar", False):
            self._scan = kernels.scan(self.tests)
            self._scan_attrs = tuple(
                dict.fromkeys(t.attribute for t in self.tests)
            )
        self.attach_stats(network.match_stats)

    def attach_stats(self, stats):
        self.stats = stats
        self.stats_key = stats.register_node("neg", f"L{self.level}")

    def _passes(self, token, wme):
        return self._match(wme, token.lookup)

    def active_tokens(self):
        return [token for token in self.items if token.active]

    # -- left (token) side -------------------------------------------------

    def left_activate(self, parent_token):
        """A new token arrived in the left memory."""
        if not parent_token.active:
            return
        token = Token(parent_token, None, self, self.level)
        self.network.register_token(token)
        self.items[token] = None
        register = self.network.register_neg_result
        if self._scan is not None:
            candidates, columns = self.amem.scan_view(self._scan_attrs)
            for wme in self._scan(token.lookup, candidates, columns):
                token.neg_results.append(wme)
                register(wme, token)
        else:
            candidates = list(self.amem.items)
            match = self._match
            lookup = token.lookup
            for wme in candidates:
                if match(wme, lookup):
                    token.neg_results.append(wme)
                    register(wme, token)
        token.active = not token.neg_results
        stats = self.stats
        if stats.enabled:
            stats.left_activation(self.stats_key)
            stats.full_scan(self.stats_key, len(candidates))
            stats.join_batch(
                self.stats_key, len(candidates), len(token.neg_results)
            )
            stats.memory_size(self.stats_key, len(self.items))
        if token.active:
            self._propagate(token)

    def _propagate(self, token):
        for successor in self.successors:
            successor.left_activate(token)
        for observer in self.observers:
            observer.token_added(token)

    def remove_token(self, token):
        """Deletion-cascade hook; also releases this token's join results."""
        self.items.pop(token, None)
        if token.active:
            for observer in self.observers:
                observer.token_removed(token)
        for wme in token.neg_results:
            self.network.unregister_neg_result(wme, token)
        token.neg_results.clear()

    # -- right (alpha) side ----------------------------------------------

    def right_activate(self, wme):
        """A WME joined the negated pattern's alpha memory."""
        candidates = list(self.items)
        match = self._match
        passed = 0
        for token in candidates:
            if match(wme, token.lookup):
                passed += 1
                token.neg_results.append(wme)
                self.network.register_neg_result(wme, token)
                if token.active:
                    self._deactivate(token)
        stats = self.stats
        if stats.enabled:
            stats.right_activation(self.stats_key)
            stats.full_scan(self.stats_key, len(candidates))
            stats.join_batch(self.stats_key, len(candidates), passed)

    def right_retract(self, wme):
        """Join-result cleanup is driven by the network's index."""

    def right_activate_batch(self, wmes):
        """Batch entry point: negation is processed per WME.

        Blocking is not set-oriented — each new blocker may deactivate
        tokens and unwind downstream structure, so the per-event path is
        already the precise amount of work.
        """
        for wme in wmes:
            self.right_activate(wme)

    def release_blocker(self, wme, token):
        """*wme* (a join result of *token*) was removed from WM."""
        try:
            token.neg_results.remove(wme)
        except ValueError:
            return
        if not token.neg_results and not token.active:
            token.active = True
            self._propagate(token)

    def _deactivate(self, token):
        token.active = False
        # Downstream matches built on this token are no longer valid.
        while token.children:
            self.network.delete_token(token.children[-1])
        for observer in self.observers:
            observer.token_removed(token)

    def share_key(self):
        return ("neg", id(self.amem), tuple(test.key() for test in self.tests))

    def __repr__(self):
        return f"NegativeNode(level={self.level}, {len(self.items)} tokens)"
