"""The Rete network compiler and runtime event dispatcher.

:class:`ReteNetwork` implements the :class:`repro.match.base.Matcher`
contract.  Compilation walks each rule's CEs left to right, sharing
alpha memories by test set and beta prefixes by (alpha memory, join
tests) — the sharing applies identically to set-oriented and regular
rules, so (per the paper) "all of the advantages of Rete such as shared
tests remain, even between set-oriented and non-set-oriented rules".
A rule with any set-oriented CE gets an S-node spliced between its last
memory and its P-node; nothing upstream changes.
"""

from __future__ import annotations

from repro.analysis import RuleAnalysis
from repro.engine.stats import NULL_STATS
from repro.errors import RuleError
from repro.match.base import Matcher
from repro.rete.alpha import AlphaNetwork
from repro.rete.beta import BetaMemory, DummyToken, JoinNode
from repro.rete.kernels import KernelPack, build_kernels, resolve_kernels
from repro.rete.negative import NegativeNode
from repro.rete.pnode import PNode, SetPNode
from repro.rete.snode import SNode, build_aggregate_specs


class ReteStats:
    """Match-effort counters for the benchmark harness."""

    __slots__ = (
        "tokens_created",
        "tokens_deleted",
        "right_activations",
        "left_activations",
        "snode_activations",
    )

    def __init__(self):
        self.tokens_created = 0
        self.tokens_deleted = 0
        self.right_activations = 0
        self.left_activations = 0
        self.snode_activations = 0

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}


class ReteNetwork(Matcher):
    """The extended Rete match network."""

    def __init__(self, strict_paper_decide=False, share_alpha=True,
                 share_beta=True, indexed_joins=True, batched=True,
                 stats=None, kernels=None, columnar=None):
        super().__init__()
        self.match_stats = stats if stats is not None else NULL_STATS
        self.share_alpha = share_alpha
        self.share_beta = share_beta
        # Probe equality joins through hash indexes instead of scanning
        # memories (disable for the ablation benchmark).
        self.indexed_joins = indexed_joins
        # Process flushed delta-sets set-oriented (grouped alpha/join
        # propagation, staged S-nodes); False replays them per event —
        # the reference semantics the property tests compare against.
        self.batched = batched
        # Compiled match kernels (off|closure|exec; None defers to the
        # REPRO_KERNELS env var, default closure).  Columnar alpha
        # mirrors default to on whenever kernels are on.  A ready-made
        # KernelPack — the service layer's shared, per-rule-base pack —
        # is adopted as-is so sessions share compiled functions.
        if isinstance(kernels, KernelPack):
            self.kernel_mode = kernels.mode
            self.kernels = kernels
        else:
            self.kernel_mode = resolve_kernels(kernels)
            self.kernels = build_kernels(self.kernel_mode,
                                         stats=self.match_stats)
        self.columnar = (
            self.kernels is not None if columnar is None else bool(columnar)
        )
        self._private_counter = 0
        self.alpha = AlphaNetwork(stats=self.match_stats,
                                  kernels=self.kernels,
                                  columnar=self.columnar)
        self.dummy_top = BetaMemory(None, -1, stats=self.match_stats)
        self._beta_nodes = [self.dummy_top]
        self._dummy_token = DummyToken()
        self.dummy_top.items[self._dummy_token] = None
        self.strict_paper_decide = strict_paper_decide
        self.stats = ReteStats()
        self.productions = {}
        self.snodes = {}
        self._terminals = {}  # rule name -> (host memory, observer)
        self._wme_tokens = {}
        self._wme_neg_results = {}

    def set_stats(self, stats):
        """Swap in a (possibly live) stats hook, re-registering all nodes."""
        self.match_stats = stats
        if self.kernels is not None:
            self.kernels.attach_stats(stats)
        self.alpha.attach_stats(stats)
        for node in self._beta_nodes:
            node.attach_stats(stats)
        for snode in self.snodes.values():
            snode.attach_stats(stats)

    # -- bookkeeping used by the node classes ------------------------------

    def register_token(self, token):
        self.stats.tokens_created += 1
        self.match_stats.token_created()
        if token.wme is not None:
            self._wme_tokens.setdefault(token.wme, set()).add(token)

    def register_neg_result(self, wme, token):
        self._wme_neg_results.setdefault(wme, []).append(token)

    def unregister_neg_result(self, wme, token):
        entries = self._wme_neg_results.get(wme)
        if entries is None:
            return
        try:
            entries.remove(token)
        except ValueError:
            pass
        if not entries:
            del self._wme_neg_results[wme]

    def delete_token(self, token):
        """Delete *token* and all its descendants (children first)."""
        while token.children:
            self.delete_token(token.children[-1])
        node = token.node
        if node is None:
            return
        token.node = None
        self.stats.tokens_deleted += 1
        self.match_stats.token_deleted()
        node.remove_token(token)
        if token.parent is not None:
            try:
                token.parent.children.remove(token)
            except ValueError:
                pass
        if token.wme is not None:
            bucket = self._wme_tokens.get(token.wme)
            if bucket is not None:
                bucket.discard(token)
                if not bucket:
                    del self._wme_tokens[token.wme]

    # -- rule compilation ----------------------------------------------------

    def add_rule(self, rule):
        if rule.name in self.productions:
            raise RuleError(f"rule {rule.name} already in the network")
        analysis = RuleAnalysis(rule)
        current = self.dummy_top
        for ce_analysis in analysis.ce_analyses:
            amem = self._alpha_memory(ce_analysis)
            if ce_analysis.ce.negated:
                current = self._attach_negative(current, amem, ce_analysis)
            else:
                current = self._attach_join(current, amem, ce_analysis)
        terminal = self._build_terminal(rule, analysis)
        current.observers.append(terminal)
        self._terminals[rule.name] = (current, terminal)
        # Backfill from the live beta memory through the staged S-node
        # path: a set-oriented rule added over a populated WM must see
        # exactly one test/decide per touched SOI — the same counters
        # and firings a fresh build over the same WM produces — not one
        # decide per token.
        snode = self.snodes.get(rule.name)
        if snode is not None and self.batched and not self.strict_paper_decide:
            snode.begin_batch()
            try:
                for token in current.active_tokens():
                    terminal.token_added(token)
            finally:
                snode.flush_batch()
        else:
            for token in current.active_tokens():
                terminal.token_added(token)
        return analysis

    def _alpha_memory(self, ce_analysis):
        """Fetch/create the alpha memory, back-filling a fresh one."""
        before = self.alpha.memory_count
        key_extra = None
        if not self.share_alpha:
            self._private_counter += 1
            key_extra = self._private_counter
        amem = self.alpha.memory_for(ce_analysis, key_extra)
        created = self.alpha.memory_count != before
        if created and self.wm is not None:
            # No successors yet, so direct adds cannot double-propagate.
            passes = amem.passes
            for wme in self.wm:
                if passes(wme):
                    amem.add(wme)
        return amem

    def _attach_join(self, left, amem, ce_analysis):
        key = (id(amem), tuple(t.key() for t in ce_analysis.join_tests))
        if self.share_beta:
            for successor in left.successors:
                if (
                    isinstance(successor, JoinNode)
                    and successor.share_key() == key
                ):
                    return successor.output
        join = JoinNode(
            left, amem, ce_analysis.join_tests, ce_analysis.level, self
        )
        join.output = BetaMemory(join, ce_analysis.level,
                                 stats=self.match_stats)
        self._beta_nodes.extend((join, join.output))
        left.successors.append(join)
        # Deeper joins must right-activate before shallower ones when a
        # WME feeds several CEs of one rule (Doorenbos's ordering trick),
        # so new successors go to the FRONT of the alpha memory's list.
        amem.successors.insert(0, join)
        for token in left.active_tokens():
            join.left_activate(token)
        return join.output

    def _attach_negative(self, left, amem, ce_analysis):
        key = (
            "neg",
            id(amem),
            tuple(t.key() for t in ce_analysis.join_tests),
        )
        if self.share_beta:
            for successor in left.successors:
                if (
                    isinstance(successor, NegativeNode)
                    and successor.share_key() == key
                ):
                    return successor
        node = NegativeNode(
            left, amem, ce_analysis.join_tests, ce_analysis.level, self
        )
        self._beta_nodes.append(node)
        left.successors.append(node)
        amem.successors.insert(0, node)
        for token in left.active_tokens():
            node.left_activate(token)
        return node

    def _build_terminal(self, rule, analysis):
        if not rule.is_set_oriented:
            terminal = PNode(rule, self)
            self.productions[rule.name] = terminal
            return terminal
        set_pnode = SetPNode(rule, self)
        agg_specs = build_aggregate_specs(rule, analysis)
        snode = SNode(
            rule,
            analysis,
            agg_specs,
            emit=set_pnode.receive,
            strict_paper_decide=self.strict_paper_decide,
            stats=self.match_stats,
        )
        self.productions[rule.name] = set_pnode
        self.snodes[rule.name] = snode
        return _SNodeCounter(snode, self.stats)

    def remove_rule(self, rule_name):
        """Excise a rule: detach its terminal, retract its instantiations.

        Shared alpha/beta structure stays in place (it may serve other
        rules; unused remainders are harmless).
        """
        if rule_name not in self.productions:
            raise RuleError(f"no rule named {rule_name} in the network")
        memory, observer = self._terminals.pop(rule_name)
        memory.observers.remove(observer)
        production = self.productions.pop(rule_name)
        snode = self.snodes.pop(rule_name, None)
        if snode is not None:
            for soi in list(snode.gamma.values()):
                production.receive("-", soi)
            snode.gamma.clear()
        else:
            for instantiation in list(production._instantiations.values()):
                self.listener.retract(instantiation)
            production._instantiations.clear()

    # -- event dispatch ---------------------------------------------------------

    def on_event(self, event):
        if event.is_add:
            self.stats.right_activations += 1
            self.alpha.add_wme(event.wme)
        else:
            self._remove_wme(event.wme)

    def _remove_wme(self, wme):
        self.alpha.remove_wme(wme)
        for token in list(self._wme_tokens.get(wme, ())):
            if token.node is not None:
                self.delete_token(token)
        self._wme_tokens.pop(wme, None)
        for token in list(self._wme_neg_results.pop(wme, ())):
            if token.node is not None:
                token.node.release_blocker(wme, token)

    def interested_in(self, wme_class):
        """Does this network's alpha layer admit *wme_class* WMEs?

        The sharded wrapper routes batch events by this predicate, so
        a shard only sees deltas its own rule subnetwork can react to.
        """
        return self.alpha.handles_class(wme_class)

    def on_batch(self, events, alpha_filter=None):
        """Propagate one flushed delta-set set-oriented.

        Removes run first (per WME — deletion is a token cascade), then
        the surviving adds flow through the alpha network as grouped
        delta-sets.  Every S-node stages token arrivals for the whole
        batch and runs its test/decide stages once per touched SOI at
        flush.  The outcome — conflict set, firing order, refire
        eligibility — is the atomic net-delta semantics the per-event
        replay of the same flushed batch produces.

        *alpha_filter* forwards to
        :meth:`~repro.rete.alpha.AlphaNetwork.add_batch` (precomputed
        constant-test results from the sharded matcher's process pool).
        """
        if not self.batched or self.strict_paper_decide:
            # strict_paper_decide is a per-event ablation of Figure 3's
            # literal decide table; batching would paper over it.
            for event in events:
                self.on_event(event)
            return
        snodes = list(self.snodes.values())
        for snode in snodes:
            snode.begin_batch()
        try:
            adds = []
            for event in events:
                if event.is_add:
                    adds.append(event.wme)
                else:
                    self._remove_wme(event.wme)
            if adds:
                self.stats.right_activations += len(adds)
                self.alpha.add_batch(adds, alpha_filter)
        finally:
            for snode in snodes:
                snode.flush_batch()

    # -- inspection --------------------------------------------------------------

    def snode_for(self, rule_name):
        """The S-node of a set-oriented rule (KeyError if none)."""
        return self.snodes[rule_name]

    def production_node(self, rule_name):
        return self.productions[rule_name]

    def __repr__(self):
        return (
            f"ReteNetwork({len(self.productions)} rules, "
            f"{self.alpha.memory_count} alpha memories)"
        )


class _SNodeCounter:
    """Wraps an S-node to count activations for the stats block."""

    __slots__ = ("snode", "stats")

    def __init__(self, snode, stats):
        self.snode = snode
        self.stats = stats

    def token_added(self, token):
        self.stats.snode_activations += 1
        self.snode.token_added(token)

    def token_removed(self, token):
        self.stats.snode_activations += 1
        self.snode.token_removed(token)
