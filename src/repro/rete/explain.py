"""Human-readable dumps of a compiled Rete network.

:func:`describe_network` renders the alpha memories and the beta tree
(joins, negative nodes, S-nodes, P-nodes) with live memory sizes —
handy for seeing the paper's sharing claims directly: a set-oriented
rule and its regular twin share everything up to the terminal.
"""

from __future__ import annotations

from repro.rete.beta import JoinNode
from repro.rete.negative import NegativeNode
from repro.rete.network import _SNodeCounter
from repro.rete.pnode import PNode, SetPNode


def describe_network(network):
    """Render *network* as indented text."""
    lines = ["alpha memories:"]
    for memory in network.alpha.memories():
        tests = ", ".join(
            _render_alpha_test(part) for part in memory.key[1:]
        )
        suffix = f" [{tests}]" if tests else ""
        lines.append(
            f"  ({memory.key[0]}){suffix}: {len(memory)} wmes, "
            f"{len(memory.successors)} successor(s)"
        )
    lines.append("beta network:")
    _describe_memory(network.dummy_top, lines, indent=1)
    return "\n".join(lines)


def _render_alpha_test(part):
    kind = part[0]
    if kind == "const":
        _, attribute, predicate, operand = part
        if isinstance(operand, tuple):
            values = " ".join(str(value) for value in operand)
            return f"^{attribute} << {values} >>"
        return f"^{attribute} {predicate} {operand}"
    if kind == "intra":
        _, attribute, predicate, other = part
        return f"^{attribute} {predicate} ^{other}"
    return str(part)


def _describe_memory(memory, lines, indent):
    pad = "  " * indent
    label = "dummy top" if memory.level < 0 else f"memory L{memory.level}"
    lines.append(f"{pad}{label}: {len(memory.items)} token(s)")
    for successor in memory.successors:
        _describe_node(successor, lines, indent + 1)
    for observer in memory.observers:
        _describe_terminal(observer, lines, indent + 1)


def _describe_node(node, lines, indent):
    pad = "  " * indent
    if isinstance(node, JoinNode):
        tests = ", ".join(
            f"^{t.attribute} {t.predicate} "
            f"ce{t.bound_level + 1}.^{t.bound_attribute}"
            for t in node.tests
        ) or "cross"
        lines.append(
            f"{pad}join L{node.level} on ({node.amem.key[0]}) [{tests}]"
        )
        _describe_memory(node.output, lines, indent + 1)
    elif isinstance(node, NegativeNode):
        tests = ", ".join(
            f"^{t.attribute} {t.predicate} "
            f"ce{t.bound_level + 1}.^{t.bound_attribute}"
            for t in node.tests
        ) or "class only"
        lines.append(
            f"{pad}negative L{node.level} on ({node.amem.key[0]}) "
            f"[{tests}]: {len(node.items)} token(s)"
        )
        for successor in node.successors:
            _describe_node(successor, lines, indent + 1)
        for observer in node.observers:
            _describe_terminal(observer, lines, indent + 1)
    else:
        lines.append(f"{pad}{node!r}")


def _describe_terminal(terminal, lines, indent):
    pad = "  " * indent
    if isinstance(terminal, _SNodeCounter):
        snode = terminal.snode
        c, p, apvs, aces, test = snode.static_data()
        pieces = [f"C={list(c)}", f"P={list(p)}"]
        if apvs or aces:
            aggregates = ", ".join(
                spec.op for spec in tuple(apvs) + tuple(aces)
            )
            pieces.append(f"aggregates=({aggregates})")
        pieces.append(f"test={'yes' if test is not None else 'no'}")
        lines.append(
            f"{pad}S-node [{snode.rule.name}] {' '.join(pieces)}: "
            f"{len(snode.gamma)} SOI(s)"
        )
    elif isinstance(terminal, PNode):
        lines.append(
            f"{pad}P-node [{terminal.rule.name}]: "
            f"{len(terminal)} instantiation(s)"
        )
    elif isinstance(terminal, SetPNode):
        lines.append(
            f"{pad}Set-P-node [{terminal.rule.name}]: {len(terminal)} SOI(s)"
        )
    else:
        lines.append(f"{pad}{terminal!r}")
