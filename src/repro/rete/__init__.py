"""An extended Rete network (Forgy 1982 + Gordin & Pasik 1991 S-nodes).

Structure follows the classic dataflow design:

* the **alpha network** (:mod:`repro.rete.alpha`) runs each WME through
  shared constant/intra-element tests into alpha memories;
* the **beta network** (:mod:`repro.rete.beta`) joins partial matches
  (tokens) left-to-right through join nodes and beta memories, with
  negated CEs handled by :mod:`repro.rete.negative`;
* **terminal nodes**: a :class:`~repro.rete.pnode.PNode` per regular
  rule, and for set-oriented rules an :class:`~repro.rete.snode.SNode`
  implementing the paper's Figure 3 algorithm feeding a
  :class:`~repro.rete.pnode.SetPNode`.

The paper's key structural claim — "leaving the network untouched,
except at the end of the network for each set-oriented rule" — is
honoured: S-nodes are attached after the last join, and all alpha/beta
sharing applies uniformly to set-oriented and regular rules.

Node test lists are compiled to specialized match kernels at build
time by :mod:`repro.rete.kernels` (``off`` / ``closure`` / ``exec``,
selected via ``kernels=`` / ``REPRO_KERNELS``); the interpreted walk
remains the always-available fallback.  See ``docs/KERNELS.md``.
"""

from repro.rete.network import ReteNetwork
from repro.rete.sharded import ShardedReteNetwork
from repro.rete.snode import SNode, SetOrientedInstance
from repro.rete.aggregates import AggregateSpec, AggregateState
from repro.rete.kernels import (
    KERNEL_MODES,
    KernelPack,
    build_kernels,
    resolve_kernels,
)

__all__ = [
    "AggregateSpec",
    "AggregateState",
    "KERNEL_MODES",
    "KernelPack",
    "ReteNetwork",
    "ShardedReteNetwork",
    "SNode",
    "SetOrientedInstance",
    "build_kernels",
    "resolve_kernels",
]
