"""Working memory proper: class registry, the WME multiset, observers."""

from __future__ import annotations

from repro import symbols
from repro.errors import WorkingMemoryError
from repro.wm.events import ADD, REMOVE, DeltaBatch, WMEvent
from repro.wm.wme import WME

#: Width of the incremental content fingerprint (sum of per-WME content
#: hashes modulo 2**64, order-independent by construction).
_FP_MASK = (1 << 64) - 1


def _content_hash(wme):
    """Hash of a WME's *contents* (class + attribute values, no time tag)."""
    return hash((wme.wme_class, tuple(sorted(wme.as_dict().items()))))


class WMClassRegistry:
    """The ``literalize`` declarations of a program.

    ``(literalize player name team)`` declares a WME class ``player``
    with attributes ``name`` and ``team``.  The registry validates makes
    against declarations.  Programs may also run unchecked (no
    declarations at all), in which case any class/attribute is accepted —
    convenient for tests — but once a class is declared its attribute set
    is enforced, as OPS5 does.
    """

    def __init__(self):
        self._classes = {}

    def literalize(self, wme_class, attributes):
        """Declare *wme_class* with exactly *attributes*."""
        if not symbols.is_symbol(wme_class):
            raise WorkingMemoryError(
                f"class name must be a symbol, got {wme_class!r}"
            )
        attributes = tuple(attributes)
        for attribute in attributes:
            if not symbols.is_symbol(attribute):
                raise WorkingMemoryError(
                    f"attribute name must be a symbol, got {attribute!r}"
                )
        if len(set(attributes)) != len(attributes):
            raise WorkingMemoryError(
                f"duplicate attribute in literalize of {wme_class}"
            )
        existing = self._classes.get(wme_class)
        if existing is not None and existing != attributes:
            raise WorkingMemoryError(
                f"class {wme_class} already literalized with different "
                f"attributes"
            )
        self._classes[wme_class] = attributes

    def is_declared(self, wme_class):
        return wme_class in self._classes

    def attributes_of(self, wme_class):
        """Return the declared attribute tuple (KeyError if undeclared)."""
        return self._classes[wme_class]

    def declared_classes(self):
        return tuple(self._classes)

    def validate(self, wme_class, values):
        """Check a make against the declarations; no-op for undeclared classes."""
        declared = self._classes.get(wme_class)
        if declared is None:
            return
        for attribute in values:
            if attribute not in declared:
                raise WorkingMemoryError(
                    f"class {wme_class} has no attribute ^{attribute} "
                    f"(declared: {', '.join(declared)})"
                )


class WorkingMemory:
    """The multiset of live WMEs, with make/remove/modify and observers.

    Time tags are assigned from a monotone counter shared by every make,
    so they order elements by recency — the property LEX/MEA conflict
    resolution and the S-node's token ordering rely on.

    Observers are callables receiving a :class:`WMEvent`; match networks
    register themselves here.  Events are delivered synchronously in
    registration order.

    ``batch()`` opens an atomic delta-set: mutations still apply to the
    WME multiset immediately (time tags stay monotone, ``find`` sees the
    change), but observer delivery is buffered in a :class:`DeltaBatch`
    and flushed on exit with cancelling make/remove pairs netted out.
    Observers that registered a batch handler via
    ``attach(observer, on_batch=...)`` receive the whole net delta list
    in one call; plain observers get a per-event replay of the same net
    stream, so both views agree on the resulting match state.
    """

    def __init__(self, registry=None):
        self.registry = registry if registry is not None else WMClassRegistry()
        self._by_tag = {}
        self._next_tag = 1
        self._observers = []
        self._batch_handlers = {}
        self._batch = None
        self._batch_depth = 0
        self._fp = None  # incremental content fingerprint; None = off

    # -- observation ---------------------------------------------------

    def attach(self, observer, on_batch=None, prepend=False):
        """Register *observer* to receive every subsequent change event.

        *on_batch*, if given, is called with a list of net
        :class:`WMEvent` deltas whenever a ``batch()`` flushes, instead
        of replaying the batch to *observer* one event at a time.
        *prepend* delivers to this observer before previously attached
        ones — the durability log registers this way so a change is on
        disk before any matcher propagates it (write-ahead ordering).
        """
        if prepend:
            self._observers.insert(0, observer)
        else:
            self._observers.append(observer)
        if on_batch is not None:
            self._batch_handlers[observer] = on_batch

    def detach(self, observer):
        """Unregister *observer*; detaching one never attached (or
        already detached — a close() racing another close()) is a
        no-op, so teardown paths need not coordinate."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass
        self._batch_handlers.pop(observer, None)

    def _emit(self, sign, wme):
        if self._batch is not None:
            self._batch.record(sign, wme)
            return
        event = WMEvent(sign, wme)
        for observer in list(self._observers):
            observer(event)

    # -- batching ------------------------------------------------------

    def batch(self, stats=None):
        """Context manager collecting mutations into one atomic delta-set.

        Re-entrant: nested ``batch()`` blocks extend the outermost batch,
        which flushes once when the outermost block exits (even on
        exception — mutations already applied are always reported).
        *stats* may be a :class:`~repro.engine.stats.MatchStats`; the
        flush reports submitted/net/coalesced delta counts to it.
        """
        return _BatchScope(self, stats)

    @property
    def in_batch(self):
        return self._batch is not None

    def _enter_batch(self):
        if self._batch_depth == 0:
            self._batch = DeltaBatch()
        self._batch_depth += 1

    def _exit_batch(self, stats=None):
        self._batch_depth -= 1
        if self._batch_depth > 0:
            return
        batch, self._batch = self._batch, None
        events = batch.events()
        delivered = 0
        for observer in list(self._observers) if events else ():
            handler = self._batch_handlers.get(observer)
            try:
                if handler is not None:
                    handler(events)
                else:
                    for event in events:
                        observer(event)
            except BaseException:
                if delivered == 0:
                    # No observer saw the flush yet (the write-ahead log
                    # delivers first): reopen the batch so the caller can
                    # still rewind to a savepoint and roll back safely.
                    self._batch = batch
                    self._batch_depth += 1
                raise
            delivered += 1
        if stats is not None:
            stats.batch_flush(batch.submitted, len(events), batch.coalesced)

    # -- transactions --------------------------------------------------

    def begin_transaction(self):
        """Open a rollback scope over subsequent mutations.

        Mutations apply to the multiset immediately (as inside
        ``batch()``, which this nests with) but observer delivery is
        deferred; the returned opaque savepoint feeds either
        :meth:`commit_transaction` — flush and deliver as usual — or
        :meth:`rollback_transaction` — undo every mutation since this
        call so neither the multiset nor any observer ever saw them.
        The atomic-firing layer (:mod:`repro.engine.reliability`) wraps
        each RHS in one of these.
        """
        self._enter_batch()
        return (self._next_tag, self._batch.mark())

    def commit_transaction(self, savepoint, stats=None):
        """Close the scope opened by :meth:`begin_transaction`, keeping
        its mutations (flushed to observers once the outermost batch
        exits)."""
        self._exit_batch(stats)

    def rollback_transaction(self, savepoint, stats=None):
        """Undo every mutation since the matching :meth:`begin_transaction`.

        Buffered deltas are rewound from the batch journal, the inverse
        of each is applied to the WME multiset (newest first), and the
        time-tag counter is restored — afterwards working memory is
        byte-identical to the savepoint and no observer ever heard of
        the rolled-back mutations.
        """
        next_tag, batch_mark = savepoint
        for sign, wme in self._batch.rewind(batch_mark):
            if sign == ADD:
                del self._by_tag[wme.time_tag]
                if self._fp is not None:
                    self._fp = (self._fp - _content_hash(wme)) & _FP_MASK
            else:
                self._by_tag[wme.time_tag] = wme
                if self._fp is not None:
                    self._fp = (self._fp + _content_hash(wme)) & _FP_MASK
        self._next_tag = next_tag
        self._exit_batch(stats)

    # -- inspection ----------------------------------------------------

    def __len__(self):
        return len(self._by_tag)

    def __iter__(self):
        """Iterate live WMEs in time-tag (creation) order."""
        return iter(sorted(self._by_tag.values(), key=lambda w: w.time_tag))

    def __contains__(self, wme):
        return isinstance(wme, WME) and self._by_tag.get(wme.time_tag) is wme

    def get(self, time_tag):
        """Return the live WME with *time_tag*, or None."""
        return self._by_tag.get(time_tag)

    def of_class(self, wme_class):
        """Return live WMEs of *wme_class*, in time-tag order."""
        return [w for w in self if w.wme_class == wme_class]

    def find(self, wme_class, **values):
        """Return live WMEs of *wme_class* whose attributes equal *values*."""
        return [
            w
            for w in self.of_class(wme_class)
            if all(
                symbols.values_equal(w.get(attr), val)
                for attr, val in values.items()
            )
        ]

    @property
    def latest_time_tag(self):
        """The most recently assigned time tag (0 when nothing was made)."""
        return self._next_tag - 1

    def content_fingerprint(self):
        """An order-independent digest of current WME *contents*.

        Returns ``(count, digest)`` where *digest* sums the per-WME
        content hashes (class + values, time tags excluded) modulo
        2**64.  Two memories with equal multisets of contents — however
        the elements were created — fingerprint equal.  The livelock
        watchdog compares these across firings, where tag-based
        comparison would always differ (``modify`` re-tags).

        :meth:`enable_fingerprint` makes subsequent calls O(1); without
        it each call scans the multiset.
        """
        if self._fp is not None:
            return (len(self._by_tag), self._fp)
        total = 0
        for wme in self._by_tag.values():
            total = (total + _content_hash(wme)) & _FP_MASK
        return (len(self._by_tag), total)

    def enable_fingerprint(self):
        """Maintain :meth:`content_fingerprint` incrementally from now on."""
        if self._fp is None:
            total = 0
            for wme in self._by_tag.values():
                total = (total + _content_hash(wme)) & _FP_MASK
            self._fp = total

    # -- mutation ------------------------------------------------------

    def make(self, wme_class, **values):
        """Create a WME, stamp it with the next time tag, emit ``+``."""
        self.registry.validate(wme_class, values)
        wme = WME(wme_class, values, self._next_tag)
        self._next_tag += 1
        self._by_tag[wme.time_tag] = wme
        if self._fp is not None:
            self._fp = (self._fp + _content_hash(wme)) & _FP_MASK
        self._emit(ADD, wme)
        return wme

    def ingest(self, wme_class, values, time_tag):
        """Re-create a WME under a *historical* time tag, emit ``+``.

        The replay path of snapshot restore and WAL recovery: the tag
        is pinned to the recorded one so recency ordering (and with it
        LEX/MEA conflict resolution) survives a round trip.  Tags must
        still arrive strictly increasing; the counter advances past the
        ingested tag so subsequent ``make`` calls stay monotone.
        """
        if time_tag < self._next_tag:
            raise WorkingMemoryError(
                f"cannot ingest time tag {time_tag}: tags up to "
                f"{self._next_tag - 1} are already assigned"
            )
        self.registry.validate(wme_class, values)
        wme = WME(wme_class, values, time_tag)
        self._next_tag = time_tag + 1
        self._by_tag[wme.time_tag] = wme
        if self._fp is not None:
            self._fp = (self._fp + _content_hash(wme)) & _FP_MASK
        self._emit(ADD, wme)
        return wme

    def remove(self, wme):
        """Remove a live WME (by object or time tag), emit ``-``."""
        if isinstance(wme, int):
            wme = self._by_tag.get(wme)
            if wme is None:
                raise WorkingMemoryError("no WME with that time tag is live")
        live = self._by_tag.get(wme.time_tag)
        if live is not wme:
            raise WorkingMemoryError(
                f"WME {wme!r} is not in working memory"
            )
        del self._by_tag[wme.time_tag]
        if self._fp is not None:
            self._fp = (self._fp - _content_hash(wme)) & _FP_MASK
        self._emit(REMOVE, wme)
        return wme

    def modify(self, wme, **updates):
        """OPS5 modify: remove *wme*, re-make it with *updates* applied.

        The replacement receives a fresh time tag (it is the most recent
        element afterwards), exactly as OPS5 specifies.
        """
        if isinstance(wme, int):
            resolved = self._by_tag.get(wme)
            if resolved is None:
                raise WorkingMemoryError("no WME with that time tag is live")
            wme = resolved
        new_values = wme.with_updates(updates)
        self.remove(wme)
        return self.make(wme.wme_class, **new_values)

    def clear(self):
        """Remove every live WME (emitting ``-`` for each, oldest first)."""
        for wme in list(self):
            self.remove(wme)


class _BatchScope:
    """Context manager returned by :meth:`WorkingMemory.batch`."""

    __slots__ = ("_wm", "_stats")

    def __init__(self, wm, stats):
        self._wm = wm
        self._stats = stats

    def __enter__(self):
        self._wm._enter_batch()
        return self._wm

    def __exit__(self, exc_type, exc, tb):
        self._wm._exit_batch(self._stats)
        return False
