"""Working-memory snapshots: persist and restore WM state.

Rule systems merging with databases want "concurrency control and
persistence as found in database systems" (paper §8).  The relational
side persists via :mod:`repro.rdb.storage`; this module does the same
for working memory itself: a JSON-compatible dump of every live WME
*with its time tag preserved*, so recency-based conflict resolution
behaves identically after a restore.

Restoring replays the elements oldest-first *in one batch* through the
set-oriented propagation path — attached matchers receive the whole
restore as a single net delta-set instead of one event per WME, so a
10k-element restore costs one network pass, not 10k.  Each element's
original time tag is pinned; the tag counter resumes past the highest
restored tag.
"""

from __future__ import annotations

import json

from repro.errors import WorkingMemoryError

FORMAT_VERSION = 1


def dump_wm(wm):
    """Serialise *wm* to a JSON-compatible dict."""
    return {
        "version": FORMAT_VERSION,
        "next_tag": wm.latest_time_tag + 1,
        "wmes": [
            {
                "class": wme.wme_class,
                "tag": wme.time_tag,
                "values": wme.as_dict(),
            }
            for wme in wm
        ],
    }


def restore_wm(wm, snapshot, stats=None):
    """Load a snapshot into *wm* (which must be empty).

    Works through :meth:`~repro.wm.memory.WorkingMemory.batch` +
    :meth:`~repro.wm.memory.WorkingMemory.ingest`: attached matchers
    receive one set-oriented delta-set covering the whole restore, with
    every WME under its original time tag (monotone by construction,
    since the dump is tag-ordered).
    """
    if len(wm):
        raise WorkingMemoryError(
            "restore_wm needs an empty working memory"
        )
    version = snapshot.get("version")
    if version != FORMAT_VERSION:
        raise WorkingMemoryError(
            f"unsupported WM snapshot version {version!r}"
        )
    entries = sorted(snapshot.get("wmes", ()), key=lambda e: e["tag"])
    restored = []
    with wm.batch(stats=stats):
        for entry in entries:
            restored.append(
                wm.ingest(entry["class"], entry["values"], entry["tag"])
            )
    wm._next_tag = max(wm._next_tag, snapshot.get("next_tag", 1))
    return restored


def save_wm(wm, path):
    """Write a JSON snapshot of *wm* to *path*."""
    snapshot = dump_wm(wm)
    with open(path, "w") as handle:
        json.dump(snapshot, handle)
    return snapshot


def load_wm(wm, path):
    """Restore *wm* (empty) from a snapshot file."""
    with open(path) as handle:
        snapshot = json.load(handle)
    return restore_wm(wm, snapshot)
