"""Working-memory change events and batched delta-sets.

Match algorithms (Rete, TREAT, naive, DIPS) consume a stream of signed
deltas: ``+`` for a make, ``-`` for a remove.  ``modify`` never appears
as its own sign — OPS5 semantics define it as remove-then-make, and
:class:`~repro.wm.memory.WorkingMemory` emits exactly that pair.

:class:`DeltaBatch` is the buffering side of batched propagation
(``WorkingMemory.batch()`` / ``RuleEngine.batch()``): it collects the
signed deltas of one atomic working-memory transition and *nets out
cancelling pairs* — a WME made and removed inside the same batch never
existed as far as matching is concerned.  The surviving deltas keep
their original relative order (stable netting), so per-event replay of
a flushed batch is a well-defined fallback for matchers without a
set-oriented batch entry point.
"""

from __future__ import annotations

#: Sign of an event adding a WME.
ADD = "+"
#: Sign of an event removing a WME.
REMOVE = "-"


class WMEvent:
    """A single signed working-memory delta."""

    __slots__ = ("sign", "wme")

    def __init__(self, sign, wme):
        if sign not in (ADD, REMOVE):
            raise ValueError(f"event sign must be '+' or '-', got {sign!r}")
        self.sign = sign
        self.wme = wme

    @property
    def is_add(self):
        return self.sign == ADD

    @property
    def is_remove(self):
        return self.sign == REMOVE

    def __eq__(self, other):
        if not isinstance(other, WMEvent):
            return NotImplemented
        return self.sign == other.sign and self.wme == other.wme

    def __hash__(self):
        return hash((self.sign, self.wme))

    def __repr__(self):
        return f"<{self.sign}{self.wme!r}>"


class DeltaBatch:
    """One atomic set of signed WM deltas, with stable netting.

    ``record`` appends a delta; a ``-`` for a WME whose ``+`` is still
    buffered cancels the pair in place (both deltas count as
    *coalesced*).  ``events()`` returns the net delta-set as
    :class:`WMEvent` objects in original (surviving) order.

    Netting is exact because time tags are never reused: a make always
    creates a fresh WME, so the only cancelling pattern is
    ``+w ... -w`` for a WME born inside the batch.

    A batch also journals every mutation it records, so a savepoint
    taken with :meth:`mark` can be rolled back with :meth:`rewind` —
    the staging half of atomic rule firings
    (:mod:`repro.engine.reliability`): RHS effects buffered here never
    reached an observer, so discarding them plus undoing the
    working-memory multiset restores the exact pre-fire state.
    """

    __slots__ = ("_deltas", "_pending_adds", "_ops", "submitted",
                 "coalesced")

    def __init__(self):
        # List of [sign, wme] entries; a cancelled add is tombstoned to
        # None so surviving deltas keep their original relative order.
        self._deltas = []
        self._pending_adds = {}  # wme -> index into _deltas
        # Undo journal: ("delta", sign, wme) for an appended entry,
        # ("cancel", index, wme) for a remove that tombstoned index.
        self._ops = []
        self.submitted = 0
        self.coalesced = 0

    def record(self, sign, wme):
        self.submitted += 1
        if sign == REMOVE:
            index = self._pending_adds.pop(wme, None)
            if index is not None:
                self._deltas[index] = None
                self.coalesced += 2
                self._ops.append(("cancel", index, wme))
                return
        else:
            self._pending_adds[wme] = len(self._deltas)
        self._deltas.append((sign, wme))
        self._ops.append(("delta", sign, wme))

    # -- savepoints ----------------------------------------------------

    def mark(self):
        """An opaque savepoint: everything recorded so far is kept."""
        return len(self._ops)

    def rewind(self, mark):
        """Undo every mutation recorded after *mark*.

        Returns the undone mutations as ``(sign, wme)`` pairs, newest
        first, so the caller (:meth:`WorkingMemory.rollback_transaction
        <repro.wm.memory.WorkingMemory.rollback_transaction>`) can
        apply the inverse of each to the WME multiset.  A ``cancel``
        journal entry undoes to its original ``-`` mutation: the
        tombstoned ``+`` entry is restored in place.
        """
        undone = []
        while len(self._ops) > mark:
            op = self._ops.pop()
            if op[0] == "delta":
                _, sign, wme = op
                self._deltas.pop()
                if sign == ADD:
                    del self._pending_adds[wme]
                undone.append((sign, wme))
            else:
                _, index, wme = op
                self._deltas[index] = (ADD, wme)
                self._pending_adds[wme] = index
                self.coalesced -= 2
                undone.append((REMOVE, wme))
            self.submitted -= 1
        return undone

    def events(self):
        """The net delta-set, in original order, as WMEvents."""
        return [
            WMEvent(sign, wme)
            for entry in self._deltas
            if entry is not None
            for sign, wme in (entry,)
        ]

    def __len__(self):
        """Number of surviving (net) deltas."""
        return len(self._deltas) - (self.coalesced // 2)

    def __repr__(self):
        return (
            f"DeltaBatch({len(self)} net deltas, "
            f"{self.coalesced} coalesced)"
        )
