"""Working-memory change events.

Match algorithms (Rete, TREAT, naive, DIPS) consume a stream of signed
deltas: ``+`` for a make, ``-`` for a remove.  ``modify`` never appears
as its own sign — OPS5 semantics define it as remove-then-make, and
:class:`~repro.wm.memory.WorkingMemory` emits exactly that pair.
"""

from __future__ import annotations

#: Sign of an event adding a WME.
ADD = "+"
#: Sign of an event removing a WME.
REMOVE = "-"


class WMEvent:
    """A single signed working-memory delta."""

    __slots__ = ("sign", "wme")

    def __init__(self, sign, wme):
        if sign not in (ADD, REMOVE):
            raise ValueError(f"event sign must be '+' or '-', got {sign!r}")
        self.sign = sign
        self.wme = wme

    @property
    def is_add(self):
        return self.sign == ADD

    @property
    def is_remove(self):
        return self.sign == REMOVE

    def __eq__(self, other):
        if not isinstance(other, WMEvent):
            return NotImplemented
        return self.sign == other.sign and self.wme == other.wme

    def __hash__(self):
        return hash((self.sign, self.wme))

    def __repr__(self):
        return f"<{self.sign}{self.wme!r}>"
