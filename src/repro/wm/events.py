"""Working-memory change events and batched delta-sets.

Match algorithms (Rete, TREAT, naive, DIPS) consume a stream of signed
deltas: ``+`` for a make, ``-`` for a remove.  ``modify`` never appears
as its own sign — OPS5 semantics define it as remove-then-make, and
:class:`~repro.wm.memory.WorkingMemory` emits exactly that pair.

:class:`DeltaBatch` is the buffering side of batched propagation
(``WorkingMemory.batch()`` / ``RuleEngine.batch()``): it collects the
signed deltas of one atomic working-memory transition and *nets out
cancelling pairs* — a WME made and removed inside the same batch never
existed as far as matching is concerned.  The surviving deltas keep
their original relative order (stable netting), so per-event replay of
a flushed batch is a well-defined fallback for matchers without a
set-oriented batch entry point.
"""

from __future__ import annotations

#: Sign of an event adding a WME.
ADD = "+"
#: Sign of an event removing a WME.
REMOVE = "-"


class WMEvent:
    """A single signed working-memory delta."""

    __slots__ = ("sign", "wme")

    def __init__(self, sign, wme):
        if sign not in (ADD, REMOVE):
            raise ValueError(f"event sign must be '+' or '-', got {sign!r}")
        self.sign = sign
        self.wme = wme

    @property
    def is_add(self):
        return self.sign == ADD

    @property
    def is_remove(self):
        return self.sign == REMOVE

    def __eq__(self, other):
        if not isinstance(other, WMEvent):
            return NotImplemented
        return self.sign == other.sign and self.wme == other.wme

    def __hash__(self):
        return hash((self.sign, self.wme))

    def __repr__(self):
        return f"<{self.sign}{self.wme!r}>"


class DeltaBatch:
    """One atomic set of signed WM deltas, with stable netting.

    ``record`` appends a delta; a ``-`` for a WME whose ``+`` is still
    buffered cancels the pair in place (both deltas count as
    *coalesced*).  ``events()`` returns the net delta-set as
    :class:`WMEvent` objects in original (surviving) order.

    Netting is exact because time tags are never reused: a make always
    creates a fresh WME, so the only cancelling pattern is
    ``+w ... -w`` for a WME born inside the batch.
    """

    __slots__ = ("_deltas", "_pending_adds", "submitted", "coalesced")

    def __init__(self):
        # List of [sign, wme] entries; a cancelled add is tombstoned to
        # None so surviving deltas keep their original relative order.
        self._deltas = []
        self._pending_adds = {}  # wme -> index into _deltas
        self.submitted = 0
        self.coalesced = 0

    def record(self, sign, wme):
        self.submitted += 1
        if sign == REMOVE:
            index = self._pending_adds.pop(wme, None)
            if index is not None:
                self._deltas[index] = None
                self.coalesced += 2
                return
        else:
            self._pending_adds[wme] = len(self._deltas)
        self._deltas.append((sign, wme))

    def events(self):
        """The net delta-set, in original order, as WMEvents."""
        return [
            WMEvent(sign, wme)
            for entry in self._deltas
            if entry is not None
            for sign, wme in (entry,)
        ]

    def __len__(self):
        """Number of surviving (net) deltas."""
        return len(self._deltas) - (self.coalesced // 2)

    def __repr__(self):
        return (
            f"DeltaBatch({len(self)} net deltas, "
            f"{self.coalesced} coalesced)"
        )
