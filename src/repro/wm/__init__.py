"""Working memory: WMEs with time tags, class declarations, change events.

The working memory of an OPS5/C5 program is, per the paper's section 3,
"a relational database with one important difference: each WME has a time
tag that uniquely identifies it".  This package provides:

* :class:`~repro.wm.wme.WME` — an immutable element (class name +
  attribute/value pairs) stamped with a time tag;
* :class:`~repro.wm.memory.WMClassRegistry` — the ``literalize``
  declarations that fix each class's attribute set;
* :class:`~repro.wm.memory.WorkingMemory` — the multiset of WMEs with
  make/remove/modify operations and an observable change stream;
* :class:`~repro.wm.events.WMEvent` — the (sign, wme) deltas consumed by
  match algorithms.
"""

from repro.wm.events import WMEvent, ADD, REMOVE
from repro.wm.wme import WME
from repro.wm.memory import WMClassRegistry, WorkingMemory

__all__ = [
    "WME",
    "WMEvent",
    "ADD",
    "REMOVE",
    "WMClassRegistry",
    "WorkingMemory",
]
