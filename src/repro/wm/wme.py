"""Working-memory elements (WMEs)."""

from __future__ import annotations

from repro import symbols
from repro.errors import WorkingMemoryError

#: Attribute value used for attributes a WME does not mention.
NIL = "nil"


class WME:
    """One working-memory element: a class name, attribute values, a time tag.

    WMEs are immutable; ``modify`` in OPS5 is remove-then-make and is
    implemented that way by :class:`~repro.wm.memory.WorkingMemory`, which
    also assigns time tags.  Two WMEs with identical content are distinct
    elements when their time tags differ — working memory is a multiset,
    which the paper's Figure 6 (duplicate ``Mike`` clerks) depends on.

    Attributes absent from *values* read as the symbol ``nil``, following
    OPS5 convention.
    """

    __slots__ = ("wme_class", "_values", "time_tag")

    def __init__(self, wme_class, values, time_tag):
        for attribute, value in values.items():
            if not symbols.is_symbol(attribute):
                raise WorkingMemoryError(
                    f"attribute name must be a symbol, got {attribute!r}"
                )
            if not symbols.is_value(value):
                raise WorkingMemoryError(
                    f"value for ^{attribute} must be a symbol or number, "
                    f"got {value!r}"
                )
        self.wme_class = wme_class
        self._values = dict(values)
        self.time_tag = time_tag

    def get(self, attribute):
        """Return the value stored under *attribute* (``nil`` if absent)."""
        return self._values.get(attribute, NIL)

    def attributes(self):
        """Return the attribute names this WME explicitly carries."""
        return tuple(self._values)

    def as_dict(self):
        """Return a copy of the attribute/value mapping."""
        return dict(self._values)

    def with_updates(self, updates):
        """Return the attribute mapping after applying *updates*.

        Used by ``modify``/``set-modify``: the result feeds a fresh
        ``make`` so the new element gets its own time tag.
        """
        merged = dict(self._values)
        merged.update(updates)
        return merged

    def same_content(self, other):
        """True when *other* has identical class and attribute values."""
        return (
            self.wme_class == other.wme_class
            and self._values == other._values
        )

    def __eq__(self, other):
        if not isinstance(other, WME):
            return NotImplemented
        return self.time_tag == other.time_tag and self.same_content(other)

    def __hash__(self):
        return hash((self.wme_class, self.time_tag))

    def __repr__(self):
        pairs = " ".join(
            f"^{attr} {symbols.format_value(value)}"
            for attr, value in sorted(self._values.items())
        )
        body = f"{self.wme_class} {pairs}".rstrip()
        return f"{self.time_tag}: ({body})"
