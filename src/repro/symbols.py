"""The OPS5 value model: symbols, numbers, and predicate semantics.

OPS5 working-memory attribute values are *symbols* (atoms, represented
here as Python ``str``) or *numbers* (``int``/``float``).  This module
centralises:

* value classification (:func:`is_symbol`, :func:`is_number`);
* the OPS5 comparison predicates ``= <> < <= > >= <=>`` with the
  language's coercion rules (:func:`apply_predicate`);
* a total *sort order* across mixed symbol/number domains used by the
  ``foreach`` iterator's ``ascending``/``descending`` modes
  (:func:`sort_key`);
* normalisation of literal tokens read by the parser
  (:func:`coerce_literal`).

The rules follow Forgy's OPS5 manual: numeric predicates (``< <= > >=``)
are only satisfied between two numbers; ``=`` / ``<>`` compare symbols by
identity and numbers by numeric value (so ``2`` equals ``2.0``); the
*same-type* predicate ``<=>`` is satisfied when both values are numbers
or both are symbols.
"""

from __future__ import annotations

NUMBER_TYPES = (int, float)

#: Predicate tokens recognised in condition-element value tests.
PREDICATES = ("=", "<>", "<", "<=", ">", ">=", "<=>")


def is_number(value):
    """Return True when *value* is an OPS5 number (int or float, not bool)."""
    return isinstance(value, NUMBER_TYPES) and not isinstance(value, bool)


def is_symbol(value):
    """Return True when *value* is an OPS5 symbol (a string atom)."""
    return isinstance(value, str)


def is_value(value):
    """Return True when *value* lies in the OPS5 value domain."""
    return is_number(value) or is_symbol(value)


def values_equal(left, right):
    """OPS5 ``=``: numeric equality for numbers, identity for symbols."""
    if is_number(left) and is_number(right):
        return left == right
    if is_symbol(left) and is_symbol(right):
        return left == right
    return False


def same_type(left, right):
    """OPS5 ``<=>``: both numbers, or both symbols."""
    if is_number(left) and is_number(right):
        return True
    return is_symbol(left) and is_symbol(right)


def apply_predicate(predicate, left, right):
    """Evaluate an OPS5 predicate between two attribute values.

    ``left`` is the value found in the WME, ``right`` the value it is
    tested against.  Numeric order predicates fail (rather than raise)
    when either side is not a number, mirroring OPS5 match semantics
    where a failed coercion is simply a non-match.
    """
    if predicate == "=":
        return values_equal(left, right)
    if predicate == "<>":
        return not values_equal(left, right)
    if predicate == "<=>":
        return same_type(left, right)
    if predicate in ("<", "<=", ">", ">="):
        if not (is_number(left) and is_number(right)):
            return False
        if predicate == "<":
            return left < right
        if predicate == "<=":
            return left <= right
        if predicate == ">":
            return left > right
        return left >= right
    raise ValueError(f"unknown predicate {predicate!r}")


def sort_key(value):
    """Total order over mixed values: numbers first (by value), then symbols.

    Used wherever the paper requires a deterministic value ordering —
    notably ``foreach ... ascending/descending`` over a set-oriented
    pattern variable whose domain may mix numbers and symbols.
    """
    if is_number(value):
        return (0, value, "")
    return (1, 0, value)


def coerce_literal(text):
    """Turn a source token into an OPS5 value.

    Integer-looking tokens become ``int``, float-looking ones ``float``,
    everything else stays a symbol.  A leading sign is honoured only when
    followed by digits, so the bare symbols ``-`` and ``+`` survive.
    """
    if not isinstance(text, str):
        return text
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def format_value(value):
    """Render a value the way OPS5 trace output would print it."""
    if isinstance(value, float) and value.is_integer():
        return str(value)
    return str(value)
