"""The naive matcher: recompute every rule's matches after each change.

This is the reference oracle: no incremental state at all.  After every
working-memory event the full instantiation relation of every rule is
recomputed from scratch and diffed against the previous cycle.  It is
O(|WM|^k) per event for k-CE rules — exactly the cost Rete exists to
avoid — which the match-cost benchmark (experiment C6) quantifies.
"""

from __future__ import annotations

from repro.analysis import RuleAnalysis
from repro.core.instantiation import Instantiation, MatchToken
from repro.errors import RuleError
from repro.match.base import Matcher
from repro.match.grouping import SoiGrouper


class _RuleState:
    __slots__ = ("rule", "analysis", "grouper", "tokens", "instantiations")

    def __init__(self, rule, analysis, grouper):
        self.rule = rule
        self.analysis = analysis
        self.grouper = grouper
        self.tokens = set()
        self.instantiations = {}


class NaiveMatcher(Matcher):
    """Recompute-everything baseline matcher."""

    def __init__(self):
        super().__init__()
        self._rules = {}
        self.stats = {"join_attempts": 0, "recomputations": 0}

    def add_rule(self, rule):
        if rule.name in self._rules:
            raise RuleError(f"rule {rule.name} already added")
        analysis = RuleAnalysis(rule)
        grouper = None
        if rule.is_set_oriented:
            grouper = SoiGrouper(rule, analysis, self._grouper_listener())
        self._rules[rule.name] = _RuleState(rule, analysis, grouper)
        if self.wm is not None:
            self._recompute(self._rules[rule.name])

    def _grouper_listener(self):
        return self.listener

    def remove_rule(self, rule_name):
        """Excise a rule and retract its live instantiations."""
        state = self._rules.pop(rule_name, None)
        if state is None:
            raise RuleError(f"no rule named {rule_name}")
        if state.grouper is not None:
            for instantiation in list(
                state.grouper._instantiations.values()
            ):
                self.listener.retract(instantiation)
        else:
            for instantiation in state.instantiations.values():
                self.listener.retract(instantiation)

    def set_listener(self, listener):
        super().set_listener(listener)
        for state in self._rules.values():
            if state.grouper is not None:
                state.grouper.listener = listener

    def on_event(self, event):
        for state in self._rules.values():
            self._recompute(state)

    def on_batch(self, events):
        """One recomputation per rule per delta-set, not per event.

        Working memory already reflects the whole batch when the flush
        arrives, so a single diff against the previous token set gives
        the atomic net-delta result directly.
        """
        if not events:
            return
        self.match_stats.incr("naive_batches")
        for state in self._rules.values():
            self._recompute(state)

    # -- full recomputation -------------------------------------------------

    def _recompute(self, state):
        self.stats["recomputations"] += 1
        self.match_stats.incr("naive_recomputations")
        fresh = set(self._compute_tokens(state))
        stale = state.tokens - fresh
        new = fresh - state.tokens
        # Keep the ORIGINAL objects for surviving tokens: the grouper
        # removes by identity, so handing it freshly-built equal tokens
        # later would not match.
        state.tokens = (state.tokens - stale) | new
        if state.grouper is not None:
            for token in stale:
                state.grouper.remove_token(token)
            for token in sorted(new, key=lambda t: t.time_tags()):
                state.grouper.add_token(token)
            return
        for token in stale:
            instantiation = state.instantiations.pop(token, None)
            if instantiation is not None:
                self.listener.retract(instantiation)
        for token in new:
            instantiation = Instantiation(state.rule, token)
            state.instantiations[token] = instantiation
            self.listener.insert(instantiation)

    def _compute_tokens(self, state):
        """All full matches of *state*'s rule against current WM."""
        analyses = state.analysis.ce_analyses
        wmes = list(self.wm) if self.wm is not None else []
        results = []
        ms = self.match_stats

        def lookup_factory(partial):
            def lookup(level, attribute):
                wme = partial[level]
                return None if wme is None else wme.get(attribute)

            return lookup

        def descend(level, partial):
            if level == len(analyses):
                results.append(MatchToken(partial))
                return
            ce_analysis = analyses[level]
            lookup = lookup_factory(partial)
            if ce_analysis.ce.negated:
                for wme in wmes:
                    self.stats["join_attempts"] += 1
                    ok = ce_analysis.wme_passes_alpha(
                        wme
                    ) and ce_analysis.wme_passes_joins(wme, lookup)
                    if ms.enabled:
                        ms.join_test(None, ok)
                    if ok:
                        return  # blocked
                descend(level + 1, partial + [None])
                return
            for wme in wmes:
                self.stats["join_attempts"] += 1
                ok = ce_analysis.wme_passes_alpha(
                    wme
                ) and ce_analysis.wme_passes_joins(wme, lookup)
                if ms.enabled:
                    ms.join_test(None, ok)
                if ok:
                    descend(level + 1, partial + [wme])

        descend(0, [])
        return results
