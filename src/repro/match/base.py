"""The matcher contract shared by Rete, TREAT, naive, and DIPS."""

from __future__ import annotations

from repro.engine.stats import NULL_STATS


class ConflictListener:
    """Receiver of conflict-set deltas produced by a matcher.

    ``insert``/``retract`` carry :class:`~repro.core.instantiation`
    objects (regular or set-oriented); ``reposition`` signals that a
    live SOI's conflict-set rank changed (the S-node's ``time`` mark).
    """

    def insert(self, instantiation):
        raise NotImplementedError

    def retract(self, instantiation):
        raise NotImplementedError

    def reposition(self, instantiation):
        raise NotImplementedError


class NullListener(ConflictListener):
    """Discards all deltas; handy default and benchmark sink."""

    def insert(self, instantiation):
        pass

    def retract(self, instantiation):
        pass

    def reposition(self, instantiation):
        pass


class CountingListener(ConflictListener):
    """Counts deltas; used by tests and the match-cost benchmarks."""

    def __init__(self):
        self.inserts = 0
        self.retracts = 0
        self.repositions = 0

    def insert(self, instantiation):
        self.inserts += 1

    def retract(self, instantiation):
        self.retracts += 1

    def reposition(self, instantiation):
        self.repositions += 1


class Matcher:
    """Abstract incremental matcher.

    Lifecycle: construct, :meth:`set_listener`, :meth:`add_rule` for
    each production, :meth:`attach` to a working memory (existing WMEs
    are back-filled), then WM changes stream in via the observer hook.
    Rules may also be added after attachment; matchers must back-fill.
    """

    def __init__(self):
        self.listener = NullListener()
        self.wm = None
        self.match_stats = NULL_STATS

    def set_listener(self, listener):
        self.listener = listener

    def set_stats(self, stats):
        """Attach a :class:`repro.engine.stats.MatchStats` hook.

        The base implementation just swaps the reference; matchers with
        per-node instrumentation (Rete) also re-register their nodes.
        """
        self.match_stats = stats

    def attach(self, wm):
        """Subscribe to *wm* and back-fill its current contents."""
        self.wm = wm
        wm.attach(self.on_event, on_batch=self.on_batch)
        for wme in wm:
            from repro.wm.events import WMEvent, ADD

            self.on_event(WMEvent(ADD, wme))

    def add_rule(self, rule):
        raise NotImplementedError

    def remove_rule(self, rule_name):
        """Excise *rule_name*, retracting its live instantiations."""
        raise NotImplementedError

    def on_event(self, event):
        raise NotImplementedError

    def on_batch(self, events):
        """Consume one flushed delta-set (a list of net WMEvents).

        The base implementation replays the net stream per event —
        always correct, never set-oriented.  Matchers override this to
        process the whole delta-set at once.
        """
        for event in events:
            self.on_event(event)
