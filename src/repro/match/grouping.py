"""SOI grouping for the non-Rete matchers.

TREAT and the naive matcher produce flat streams of regular match
tokens.  For set-oriented rules those tokens must be aggregated into
SOIs with the same semantics the S-node provides: grouped by scalar CEs
and ``:scalar`` values, token lists ordered like the conflict set,
``:test`` evaluated over incremental aggregates, and conflict-set
``+``/``-``/``time`` deltas emitted on transitions.

:class:`SoiGrouper` reuses the S-node's own aggregate machinery so the
three matchers cannot drift apart semantically — differential tests
(`tests/match/test_equivalence.py`) rely on this.
"""

from __future__ import annotations

from repro.core.instantiation import SetInstantiation
from repro.rete.aggregates import AggregateState
from repro.rete.snode import (
    ACTIVE,
    INACTIVE,
    SetOrientedInstance,
    _is_truthy,
    build_aggregate_specs,
)
from repro.core.expr import evaluate


class _GrouperTestResolver:
    """Duplicates the S-node's :test resolution against a grouped SOI."""

    __slots__ = ("grouper", "soi")

    def __init__(self, grouper, soi):
        self.grouper = grouper
        self.soi = soi

    def var(self, name):
        if name in self.soi._p_values:
            return self.soi._p_values[name]
        site = self.grouper.analysis.binding_sites.get(name)
        if site is not None and site[0] in self.grouper.scalar_levels:
            return self.soi.key_wme(site[0]).get(site[1])
        from repro.errors import EngineError

        raise EngineError(
            f"rule {self.grouper.rule.name}: :test references <{name}>, "
            f"which is not a scalar binding"
        )

    def aggregate(self, node):
        for spec, state in zip(self.grouper.agg_specs, self.soi.agg_states):
            if spec.matches(node.op, node.target, node.attribute):
                return state.value()
        from repro.errors import EngineError

        raise EngineError(
            f"rule {self.grouper.rule.name}: no aggregate state for "
            f"({node.op} <{node.target}>)"
        )


class SoiGrouper:
    """Maintains a set-oriented rule's SOIs over a mutable token stream."""

    def __init__(self, rule, analysis, listener):
        self.rule = rule
        self.analysis = analysis
        self.listener = listener
        self.scalar_levels = analysis.scalar_ce_levels
        self.p_specs = self._build_p_specs(rule, analysis)
        self.agg_specs = tuple(build_aggregate_specs(rule, analysis))
        self.test = rule.test
        self.sois = {}
        self._instantiations = {}

    @staticmethod
    def _build_p_specs(rule, analysis):
        specs = []
        for name in rule.scalar_vars:
            site = analysis.binding_sites.get(name)
            if site is None:
                continue
            level, attribute = site
            if rule.ces[level].set_oriented:
                specs.append((name, level, attribute))
        return tuple(specs)

    # -- token stream -------------------------------------------------------

    def add_token(self, token):
        key = self._key_of(token)
        soi = self.sois.get(key)
        if soi is None:
            soi = self._new_soi(key, token)
            self.sois[key] = soi
        soi.insert_token(token)
        soi.version += 1
        for state in soi.agg_states:
            state.add_token(token)
        self._reconcile(soi)

    def remove_token(self, token):
        key = self._key_of(token)
        soi = self.sois.get(key)
        if soi is None:
            return
        soi.remove_token(token)
        soi.version += 1
        if not soi.tokens:
            del self.sois[key]
            self._deactivate(soi, deleted=True)
            return
        for state in soi.agg_states:
            state.remove_token(token)
        self._reconcile(soi)

    # -- internals ------------------------------------------------------------

    def _key_of(self, token):
        parts = [
            token.wme_at(level).time_tag for level in self.scalar_levels
        ]
        parts.extend(
            token.wme_at(level).get(attribute)
            for _, level, attribute in self.p_specs
        )
        return tuple(parts)

    def _new_soi(self, key, token):
        key_wmes = {
            level: token.wme_at(level) for level in self.scalar_levels
        }
        p_values = {
            name: token.wme_at(level).get(attribute)
            for name, level, attribute in self.p_specs
        }
        agg_states = [AggregateState(spec) for spec in self.agg_specs]
        return SetOrientedInstance(key, key_wmes, p_values, agg_states)

    def _test_passes(self, soi):
        if self.test is None:
            return True
        resolver = _GrouperTestResolver(self, soi)
        return _is_truthy(evaluate(self.test, resolver))

    def _reconcile(self, soi):
        passes = self._test_passes(soi)
        if passes and soi.status == INACTIVE:
            soi.status = ACTIVE
            instantiation = SetInstantiation(self.rule, soi)
            self._instantiations[id(soi)] = instantiation
            self.listener.insert(instantiation)
        elif not passes and soi.status == ACTIVE:
            self._deactivate(soi, deleted=False)
        elif passes and soi.status == ACTIVE:
            instantiation = self._instantiations.get(id(soi))
            if instantiation is not None:
                self.listener.reposition(instantiation)

    def _deactivate(self, soi, deleted):
        if soi.status == ACTIVE:
            soi.status = INACTIVE
            instantiation = self._instantiations.pop(id(soi), None)
            if instantiation is not None:
                self.listener.retract(instantiation)
