"""Match algorithms behind a common interface.

* :class:`~repro.match.base.Matcher` — the abstract contract;
* :class:`~repro.rete.ReteNetwork` — the primary, incremental matcher
  (the paper's extended Rete);
* :class:`~repro.match.treat.TreatMatcher` — Miranker's TREAT: alpha
  memories only, joins recomputed seeded by each change;
* :class:`~repro.match.naive.NaiveMatcher` — recompute-everything
  baseline, the reference oracle for differential testing.
"""

from repro.match.base import ConflictListener, Matcher, NullListener
from repro.match.naive import NaiveMatcher
from repro.match.treat import TreatMatcher

__all__ = [
    "ConflictListener",
    "Matcher",
    "NaiveMatcher",
    "NullListener",
    "TreatMatcher",
]
