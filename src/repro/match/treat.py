"""TREAT (Miranker 1986): alpha memories only, no stored partial joins.

TREAT keeps the per-CE alpha memories but no beta memories: when a WME
arrives, new instantiations are computed by a join *seeded* with that
WME in each CE slot it satisfies; when a WME leaves, the instantiations
containing it are retracted directly from the conflict set.  The trade
is recompute-on-add versus Rete's stored partial matches — the classic
match-algorithm comparison the paper cites (experiment C6 measures it).

Negated CEs: a new blocker retracts the instantiations it now blocks; a
removed blocker triggers re-derivation of the rule's matches (we use
re-derivation instead of Miranker's negation counts; behaviourally
identical, simpler, and only exercised on blocker removal).

Set-oriented rules are supported through the shared
:class:`~repro.match.grouping.SoiGrouper`, demonstrating that the
paper's constructs are not Rete-specific.
"""

from __future__ import annotations

from repro.analysis import RuleAnalysis
from repro.core.instantiation import Instantiation, MatchToken
from repro.errors import RuleError
from repro.match.base import Matcher
from repro.match.grouping import SoiGrouper


class _TreatRule:
    __slots__ = (
        "rule",
        "analysis",
        "grouper",
        "amems",
        "tokens",
        "instantiations",
        "tokens_by_wme",
    )

    def __init__(self, rule, analysis, grouper):
        self.rule = rule
        self.analysis = analysis
        self.grouper = grouper
        self.amems = [dict() for _ in analysis.ce_analyses]
        self.tokens = set()
        self.instantiations = {}
        self.tokens_by_wme = {}


class TreatMatcher(Matcher):
    """The TREAT match algorithm behind the common Matcher contract."""

    def __init__(self):
        super().__init__()
        self._rules = {}
        self.stats = {"join_attempts": 0, "seeded_joins": 0}

    def add_rule(self, rule):
        if rule.name in self._rules:
            raise RuleError(f"rule {rule.name} already added")
        analysis = RuleAnalysis(rule)
        grouper = None
        if rule.is_set_oriented:
            grouper = SoiGrouper(rule, analysis, self.listener)
        state = _TreatRule(rule, analysis, grouper)
        self._rules[rule.name] = state
        if self.wm is not None:
            for wme in self.wm:
                self._add_to_amems(state, wme)
            for token in self._derive_all(state):
                self._insert_token(state, token)

    def remove_rule(self, rule_name):
        """Excise a rule and retract its live instantiations."""
        state = self._rules.pop(rule_name, None)
        if state is None:
            raise RuleError(f"no rule named {rule_name}")
        if state.grouper is not None:
            for instantiation in list(
                state.grouper._instantiations.values()
            ):
                self.listener.retract(instantiation)
        else:
            for instantiation in state.instantiations.values():
                self.listener.retract(instantiation)

    def set_listener(self, listener):
        super().set_listener(listener)
        for state in self._rules.values():
            if state.grouper is not None:
                state.grouper.listener = listener

    # -- events ------------------------------------------------------------

    def on_event(self, event):
        if event.is_add:
            self._on_add(event.wme)
        else:
            self._on_remove(event.wme)

    def _on_add(self, wme):
        for state in self._rules.values():
            levels = self._add_to_amems(state, wme)
            for level in levels:
                ce_analysis = state.analysis.ce_analyses[level]
                if ce_analysis.ce.negated:
                    self._retract_now_blocked(state, level, wme)
                else:
                    self.stats["seeded_joins"] += 1
                    self.match_stats.incr("treat_seeded_joins")
                    for token in self._seeded_join(state, level, wme):
                        if token not in state.tokens:
                            self._insert_token(state, token)

    def on_batch(self, events):
        """Process one flushed delta-set rule by rule, set-oriented.

        Per rule: all alpha memories absorb the whole delta-set first,
        then retractions (removed WMEs, newly blocked tokens) run, then
        one seeded join per surviving positive add — seeded joins see
        the complete batch in the amems, and the ``token not in
        state.tokens`` guard keeps cross-seeded duplicates out.  A
        single re-derivation covers *all* negated-level removals,
        instead of one per removal event.
        """
        removes = [e.wme for e in events if e.is_remove]
        adds = [e.wme for e in events if e.is_add]
        for state in self._rules.values():
            ce_analyses = state.analysis.ce_analyses
            removed_negated = False
            for wme in removes:
                for level, amem in enumerate(state.amems):
                    if wme in amem:
                        del amem[wme]
                        if ce_analyses[level].ce.negated:
                            removed_negated = True
            seeds = []
            blockers = []
            for wme in adds:
                for level in self._add_to_amems(state, wme):
                    if ce_analyses[level].ce.negated:
                        blockers.append((level, wme))
                    else:
                        seeds.append((level, wme))
            for wme in removes:
                for token in list(state.tokens_by_wme.get(wme, ())):
                    self._retract_token(state, token)
                state.tokens_by_wme.pop(wme, None)
            for level, wme in blockers:
                self._retract_now_blocked(state, level, wme)
            for level, wme in seeds:
                self.stats["seeded_joins"] += 1
                self.match_stats.incr("treat_seeded_joins")
                for token in self._seeded_join(state, level, wme):
                    if token not in state.tokens:
                        self._insert_token(state, token)
            if removed_negated:
                for token in self._derive_all(state):
                    if token not in state.tokens:
                        self._insert_token(state, token)

    def _on_remove(self, wme):
        for state in self._rules.values():
            removed_negated_levels = []
            for level, amem in enumerate(state.amems):
                if wme in amem:
                    del amem[wme]
                    if state.analysis.ce_analyses[level].ce.negated:
                        removed_negated_levels.append(level)
            for token in list(state.tokens_by_wme.get(wme, ())):
                self._retract_token(state, token)
            state.tokens_by_wme.pop(wme, None)
            if removed_negated_levels:
                # A removed blocker may release matches: re-derive.
                for token in self._derive_all(state):
                    if token not in state.tokens:
                        self._insert_token(state, token)

    # -- helpers -----------------------------------------------------------

    def _add_to_amems(self, state, wme):
        levels = []
        for level, ce_analysis in enumerate(state.analysis.ce_analyses):
            if ce_analysis.wme_passes_alpha(wme):
                state.amems[level][wme] = None
                levels.append(level)
        return levels

    def _insert_token(self, state, token):
        state.tokens.add(token)
        for wme in token.wmes():
            if wme is not None:
                state.tokens_by_wme.setdefault(wme, set()).add(token)
        if state.grouper is not None:
            state.grouper.add_token(token)
        else:
            instantiation = Instantiation(state.rule, token)
            state.instantiations[token] = instantiation
            self.listener.insert(instantiation)

    def _retract_token(self, state, token):
        state.tokens.discard(token)
        for wme in token.wmes():
            if wme is not None:
                bucket = state.tokens_by_wme.get(wme)
                if bucket is not None:
                    bucket.discard(token)
        if state.grouper is not None:
            state.grouper.remove_token(token)
        else:
            instantiation = state.instantiations.pop(token, None)
            if instantiation is not None:
                self.listener.retract(instantiation)

    def _retract_now_blocked(self, state, neg_level, wme):
        ce_analysis = state.analysis.ce_analyses[neg_level]
        ms = self.match_stats
        for token in list(state.tokens):
            def lookup(level, attribute, token=token):
                bound = token.wme_at(level)
                return None if bound is None else bound.get(attribute)

            self.stats["join_attempts"] += 1
            blocked = ce_analysis.wme_passes_joins(wme, lookup)
            if ms.enabled:
                ms.join_test(None, blocked)
            if blocked:
                self._retract_token(state, token)

    def _seeded_join(self, state, seed_level, seed_wme):
        """All full matches with *seed_wme* fixed in CE *seed_level*."""
        analyses = state.analysis.ce_analyses
        results = []
        ms = self.match_stats

        def lookup_factory(partial):
            def lookup(level, attribute):
                wme = partial[level]
                return None if wme is None else wme.get(attribute)

            return lookup

        def descend(level, partial):
            if level == len(analyses):
                results.append(MatchToken(partial))
                return
            ce_analysis = analyses[level]
            lookup = lookup_factory(partial)
            if ce_analysis.ce.negated:
                for wme in state.amems[level]:
                    self.stats["join_attempts"] += 1
                    ok = ce_analysis.wme_passes_joins(wme, lookup)
                    if ms.enabled:
                        ms.join_test(None, ok)
                    if ok:
                        return
                descend(level + 1, partial + [None])
                return
            candidates = (
                [seed_wme] if level == seed_level else state.amems[level]
            )
            for wme in candidates:
                self.stats["join_attempts"] += 1
                ok = ce_analysis.wme_passes_joins(wme, lookup)
                if ms.enabled:
                    ms.join_test(None, ok)
                if ok:
                    descend(level + 1, partial + [wme])

        descend(0, [])
        return results

    def _derive_all(self, state):
        """Full (unseeded) derivation — used for back-fill and negation."""
        analyses = state.analysis.ce_analyses
        results = []
        ms = self.match_stats

        def lookup_factory(partial):
            def lookup(level, attribute):
                wme = partial[level]
                return None if wme is None else wme.get(attribute)

            return lookup

        def descend(level, partial):
            if level == len(analyses):
                results.append(MatchToken(partial))
                return
            ce_analysis = analyses[level]
            lookup = lookup_factory(partial)
            if ce_analysis.ce.negated:
                for wme in state.amems[level]:
                    self.stats["join_attempts"] += 1
                    ok = ce_analysis.wme_passes_joins(wme, lookup)
                    if ms.enabled:
                        ms.join_test(None, ok)
                    if ok:
                        return
                descend(level + 1, partial + [None])
                return
            for wme in state.amems[level]:
                self.stats["join_attempts"] += 1
                ok = ce_analysis.wme_passes_joins(wme, lookup)
                if ms.enabled:
                    ms.join_test(None, ok)
                if ok:
                    descend(level + 1, partial + [wme])

        descend(0, [])
        return results
