"""Instantiations: what the conflict set holds and what the RHS fires on.

Two flavours (paper section 4):

* :class:`Instantiation` — a regular OPS5 instantiation: one WME per
  positive CE.
* :class:`SetInstantiation` — a *set-oriented instantiation* (SOI): a
  live view onto an aggregation of regular instantiations, produced by
  an S-node (or by the grouping layer of the baseline matchers).  Its
  contents can change while it sits in the conflict set ("only a pointer
  is passed", section 5); a version counter implements the paper's
  refire-on-change semantics.

Both expose the small protocol the conflict-resolution strategies and
the RHS executor need: ``rule``, ``recency_key()``, ``mea_tag()``,
``tokens()``, ``wme_at(level)``.
"""

from __future__ import annotations


def recency_key(time_tags):
    """LEX recency ordering key: time tags sorted descending.

    Python tuple comparison then reproduces OPS5 LEX: the instantiation
    with the more recent WME dominates; ties fall to the next tag; with
    an equal prefix the longer tag list dominates.
    """
    return tuple(sorted(time_tags, reverse=True))


class MatchToken:
    """A matcher-independent regular instantiation body.

    One WME per CE level; negated levels hold ``None``.  Matchers that
    have their own token structures (Rete) adapt them to this protocol;
    the simple matchers build these directly.
    """

    __slots__ = ("_wmes", "_recency")

    def __init__(self, wmes):
        self._wmes = tuple(wmes)
        self._recency = recency_key(
            [w.time_tag for w in self._wmes if w is not None]
        )

    def wme_at(self, level):
        return self._wmes[level]

    def wmes(self):
        return self._wmes

    def time_tags(self):
        """Sorted-descending time tags of the positive-CE WMEs."""
        return self._recency

    def __eq__(self, other):
        if not isinstance(other, MatchToken):
            return NotImplemented
        return self._wmes == other._wmes

    def __hash__(self):
        return hash(self._wmes)

    def __repr__(self):
        tags = ",".join(
            str(w.time_tag) if w is not None else "-" for w in self._wmes
        )
        return f"MatchToken[{tags}]"


class Instantiation:
    """A regular (tuple-oriented) instantiation in the conflict set."""

    __slots__ = ("rule", "token", "fired")

    is_set_oriented = False

    def __init__(self, rule, token):
        self.rule = rule
        self.token = token
        self.fired = False

    # -- ordering ---------------------------------------------------------

    def recency_key(self):
        return self.token.time_tags()

    def mea_tag(self):
        """Recency of the first CE's WME (MEA's primary criterion)."""
        wme = self.token.wme_at(0)
        return wme.time_tag if wme is not None else 0

    def specificity(self):
        return self.rule.specificity()

    # -- refraction --------------------------------------------------------

    def eligible(self):
        """True when refraction permits this instantiation to fire."""
        return not self.fired

    def mark_fired(self):
        self.fired = True

    def refraction_state(self):
        """Opaque refraction snapshot for atomic-firing rollback."""
        return self.fired

    def restore_refraction(self, state):
        """Restore a snapshot taken by :meth:`refraction_state`."""
        self.fired = state

    # -- content ------------------------------------------------------------

    def tokens(self):
        """The instantiation's relation: a single token."""
        return [self.token]

    def wme_at(self, level):
        return self.token.wme_at(level)

    def identity(self):
        """Hashable identity for conflict-set bookkeeping."""
        return (self.rule.name, self.token)

    def __repr__(self):
        tags = " ".join(str(t) for t in sorted(
            t for t in (w.time_tag if w else None for w in self.token.wmes())
            if t is not None
        ))
        return f"<{self.rule.name}: {tags}>"


class SetInstantiation:
    """A set-oriented instantiation: live view onto an SOI.

    *soi* must provide: ``tokens`` (list ordered like the conflict set,
    head first), ``version`` (int bumped on every content change),
    ``key_wme(level)`` (the WME of a scalar CE), and ``p_value(name)``
    (the partition value of a ``:scalar`` variable).
    """

    __slots__ = ("rule", "soi", "_fired_version")

    is_set_oriented = True

    def __init__(self, rule, soi):
        self.rule = rule
        self.soi = soi
        self._fired_version = None

    # -- ordering ---------------------------------------------------------

    def recency_key(self):
        """Ranked by the head (most dominant) token, per paper section 5."""
        tokens = self.soi.tokens
        if not tokens:
            return ()
        return tokens[0].time_tags()

    def mea_tag(self):
        tokens = self.soi.tokens
        if not tokens:
            return 0
        wme = tokens[0].wme_at(0)
        return wme.time_tag if wme is not None else 0

    def specificity(self):
        return self.rule.specificity()

    # -- refraction / refire -------------------------------------------------

    def eligible(self):
        """Refire-on-change: eligible unless fired at this exact version."""
        return self._fired_version != self.soi.version

    def mark_fired(self):
        self._fired_version = self.soi.version

    def refraction_state(self):
        """Opaque refraction snapshot for atomic-firing rollback."""
        return self._fired_version

    def restore_refraction(self, state):
        """Restore a snapshot taken by :meth:`refraction_state`."""
        self._fired_version = state

    # -- content ------------------------------------------------------------

    def tokens(self):
        """Snapshot of the SOI's relation, head token first."""
        return list(self.soi.tokens)

    def wme_at(self, level):
        """The WME of a scalar (non-set, non-negated) CE."""
        return self.soi.key_wme(level)

    def p_value(self, name):
        return self.soi.p_value(name)

    def identity(self):
        return (self.rule.name, id(self.soi))

    def __repr__(self):
        return (
            f"<SOI {self.rule.name}: {len(self.soi.tokens)} tokens, "
            f"v{self.soi.version}>"
        )
