"""Evaluator for the infix expression dialect (``:test``, RHS values).

Evaluation needs a *resolver* supplying context:

* ``resolver.var(name)`` — the value of ``<name>``;
* ``resolver.aggregate(node)`` — the value of ``(op <target>)``.

Semantics follow the host language's match behaviour:

* ``==`` / ``!=`` use OPS5 value equality (``2 == 2.0``, symbols by
  identity);
* ordering comparisons are satisfied only between numbers (a type
  mismatch yields ``False``, like a failed match, not an error);
* arithmetic requires numbers and raises :class:`EngineError` otherwise;
* ``and``/``or``/``not`` use :func:`is_truthy`, under which the symbols
  ``false`` and ``nil``, the number ``0``, and ``None`` are false.
"""

from __future__ import annotations

from repro import symbols
from repro.errors import EngineError
from repro.lang import ast


def is_truthy(value):
    """Truthiness of an expression result (see module docstring)."""
    if isinstance(value, bool):
        return value
    if value is None:
        return False
    if symbols.is_number(value):
        return value != 0
    return value not in ("false", "nil")


def _require_number(value, context):
    if not symbols.is_number(value):
        raise EngineError(
            f"{context} needs a number, got {value!r}"
        )
    return value


def evaluate(expr, resolver):
    """Evaluate *expr* against *resolver*; returns a value or bool."""
    if isinstance(expr, ast.Const):
        return expr.value
    if isinstance(expr, ast.Var):
        return resolver.var(expr.name)
    if isinstance(expr, ast.Aggregate):
        return resolver.aggregate(expr)
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "not":
            return not is_truthy(evaluate(expr.operand, resolver))
        value = evaluate(expr.operand, resolver)
        return -_require_number(value, "unary '-'")
    if isinstance(expr, ast.BinOp):
        return _evaluate_binop(expr, resolver)
    raise EngineError(f"cannot evaluate expression node {expr!r}")


def _evaluate_binop(expr, resolver):
    op = expr.op
    if op == "and":
        left = evaluate(expr.left, resolver)
        if not is_truthy(left):
            return False
        return is_truthy(evaluate(expr.right, resolver))
    if op == "or":
        left = evaluate(expr.left, resolver)
        if is_truthy(left):
            return True
        return is_truthy(evaluate(expr.right, resolver))

    left = evaluate(expr.left, resolver)
    right = evaluate(expr.right, resolver)

    if op == "==":
        return symbols.values_equal(left, right)
    if op == "!=":
        return not symbols.values_equal(left, right)
    if op in ("<", "<=", ">", ">="):
        if left is None or right is None:
            return False
        return symbols.apply_predicate(op, left, right)

    # Arithmetic.
    left = _require_number(left, f"'{op}'")
    right = _require_number(right, f"'{op}'")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise EngineError("division by zero")
        return left / right
    if op == "//":
        if right == 0:
            raise EngineError("division by zero")
        return left // right
    if op == "mod":
        if right == 0:
            raise EngineError("mod by zero")
        return left % right
    raise EngineError(f"unknown operator {op!r}")
