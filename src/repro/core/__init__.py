"""Core shared semantics: instantiations and expression evaluation.

These sit below every matcher and the engine: the matchers produce
:class:`~repro.core.instantiation.Instantiation` /
:class:`~repro.core.instantiation.SetInstantiation` objects, and both
the S-node's ``:test`` clause and the RHS evaluate expressions through
:func:`~repro.core.expr.evaluate`.
"""

from repro.core.instantiation import (
    Instantiation,
    MatchToken,
    SetInstantiation,
    recency_key,
)
from repro.core.expr import evaluate, is_truthy

__all__ = [
    "Instantiation",
    "MatchToken",
    "SetInstantiation",
    "evaluate",
    "is_truthy",
    "recency_key",
]
