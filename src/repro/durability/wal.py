"""The segmented, CRC32-framed write-ahead log.

On-disk format (version 1; full spec in ``docs/DURABILITY.md``):

* A log is a directory of **segment** files named ``%08d.wal`` with
  strictly consecutive sequence numbers; appends go to the
  highest-numbered segment and roll over to a fresh one when the
  current segment would exceed ``segment_bytes``.
* A segment is a sequence of **records**, each framed as::

      magic   4 bytes   b"\\xabWAL"
      length  4 bytes   little-endian uint32, payload byte count
      crc     4 bytes   little-endian uint32, zlib.crc32 of payload
      payload         length bytes of compact UTF-8 JSON

  The magic sequence is a cheap resynchronisation hint, not proof of
  a frame: payload bytes may coincide with it, so anything found at a
  magic hit must still validate (plausible header, CRC-valid payload)
  before it counts as a record.

* Payload kinds: ``{"k": "d", "n": next_tag, "e": [[sign, class,
  tag, values], ...]}`` for a working-memory delta-set (one record
  per flushed batch, or per single event outside a batch);
  ``{"k": "f", "r": rule, "s": 0|1, "t": [[tags...], ...]}`` opening
  a firing (refraction stamp) whose RHS delta records follow; and
  ``{"k": "e"}`` terminating that firing.  A log that ends inside an
  ``f``…``e`` window holds an incomplete firing, which recovery rolls
  back wholesale (:mod:`repro.durability.recovery`).

Damage classification, shared by append-open and recovery:

* an **incomplete final frame** (bad magic, implausible length, or a
  frame extending past EOF) with no *valid* later record in the file
  is a *torn tail* — tolerated, the tail is dropped;
* a **CRC or JSON failure on the final complete frame** is a *damaged
  final record* — tolerated the same way;
* any damage **followed by a validated record** (a magic hit whose
  frame parses and passes its CRC), or any damage in a **non-final
  segment**, is silent corruption — a typed
  :class:`~repro.errors.RecoveryError` (or
  :class:`~repro.errors.WalError` when opening for append).

The fsync policy trades durability for throughput: ``always`` fsyncs
after every record, ``batch`` only after batch records (and on sync
points such as checkpoints, segment rollover, and close), ``off``
never fsyncs — data still reaches the OS on every append via
``flush``, so it survives a process crash, just not a power failure.
Under ``always`` and ``batch``, segment rollover fsyncs the outgoing
segment and then the directory entry of the new one, so a durable
record in segment N+1 implies all of segment N is durable.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

from repro.engine.stats import NULL_STATS
from repro.errors import RecoveryError, WalError

MAGIC = b"\xabWAL"
HEADER = struct.Struct("<4sII")
SEGMENT_SUFFIX = ".wal"
#: Sanity bound on a single record; a length field above this is damage.
MAX_RECORD_BYTES = 64 * 1024 * 1024
DEFAULT_SEGMENT_BYTES = 1 << 20

FSYNC_POLICIES = ("always", "batch", "off")


def segment_name(seq):
    return f"{seq:08d}{SEGMENT_SUFFIX}"


def list_segments(directory):
    """Sorted ``(seq, path)`` pairs of the segments in *directory*."""
    pairs = []
    for name in os.listdir(directory):
        if name.endswith(SEGMENT_SUFFIX):
            stem = name[: -len(SEGMENT_SUFFIX)]
            if stem.isdigit():
                pairs.append((int(stem), os.path.join(directory, name)))
    return sorted(pairs)


def fsync_dir(path):
    """fsync a directory so entries for renamed/created files persist."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # platforms where directories cannot be opened
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class _Damage:
    """Where a segment scan stopped early, and whether data follows."""

    __slots__ = ("offset", "trailing", "reason")

    def __init__(self, offset, trailing, reason):
        self.offset = offset
        self.trailing = trailing
        self.reason = reason


def scan_segment(data, start=0):
    """Decode the frames of one segment from *start*.

    Returns ``(payloads, end_offset, damage)`` where *damage* is None
    for a clean scan or a :class:`_Damage` describing the first bad
    frame.  ``trailing`` is True when the magic sequence appears after
    the bad frame — evidence that valid records follow the damage.
    """
    payloads = []
    offset = start
    while offset < len(data):
        if offset + HEADER.size > len(data):
            return payloads, offset, _damage(data, offset, None, "torn")
        magic, length, crc = HEADER.unpack_from(data, offset)
        if magic != MAGIC or length > MAX_RECORD_BYTES:
            return payloads, offset, _damage(data, offset, None, "frame")
        end = offset + HEADER.size + length
        if end > len(data):
            return payloads, offset, _damage(data, offset, None, "torn")
        payload = data[offset + HEADER.size:end]
        if zlib.crc32(payload) != crc:
            return payloads, offset, _damage(data, offset, end, "crc")
        try:
            payloads.append(json.loads(payload))
        except ValueError:
            return payloads, offset, _damage(data, offset, end, "decode")
        offset = end
    return payloads, offset, None


def _damage(data, offset, frame_end, reason):
    search_from = offset + 1 if frame_end is None else frame_end
    return _Damage(offset, _valid_record_after(data, search_from), reason)


def _valid_record_after(data, search_from):
    """Is there a *validated* record at some magic hit past *search_from*?

    Payload bytes can coincide with the magic sequence, so a bare hit
    is not evidence of durable records after the damage — the candidate
    frame must also parse (plausible length, CRC-valid, JSON-decodable)
    before a torn tail is escalated to silent mid-log corruption.
    """
    index = data.find(MAGIC, search_from)
    while index != -1:
        if index + HEADER.size <= len(data):
            _, length, crc = HEADER.unpack_from(data, index)
            end = index + HEADER.size + length
            if length <= MAX_RECORD_BYTES and end <= len(data):
                payload = data[index + HEADER.size:end]
                if zlib.crc32(payload) == crc:
                    try:
                        json.loads(payload)
                    except ValueError:
                        pass
                    else:
                        return True
        index = data.find(MAGIC, index + 1)
    return False


def encode_record(payload):
    """Frame one payload dict as magic + length + crc + JSON bytes."""
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return HEADER.pack(MAGIC, len(data), zlib.crc32(data)) + data


class WriteAheadLog:
    """Append side of the log.

    Opening an existing directory scans the final segment: trailing
    garbage from a torn append is truncated away so new records start
    on a valid frame boundary; corruption *followed by* valid frames
    raises :class:`~repro.errors.WalError` (run recovery instead).
    """

    def __init__(self, directory, fsync="batch",
                 segment_bytes=DEFAULT_SEGMENT_BYTES, stats=None,
                 fault=None):
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {fsync!r}; expected one of "
                f"{FSYNC_POLICIES}"
            )
        if segment_bytes <= 0:
            raise WalError("segment_bytes must be positive")
        self.directory = directory
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        self.stats = stats if stats is not None else NULL_STATS
        self.fault = fault
        os.makedirs(directory, exist_ok=True)
        self._file = None
        self._seq = 0
        self._offset = 0
        # Appends must be whole-frame atomic with respect to each
        # other.  The firing pool serialises commits, so in-engine
        # appends are single-threaded by construction; the lock makes
        # frame integrity independent of that discipline (e.g. hosts
        # driving several engines' firings from their own threads).
        import threading

        self._append_lock = threading.RLock()
        self._open_tail()

    # -- opening -----------------------------------------------------------

    def _open_tail(self):
        segments = list_segments(self.directory)
        if not segments:
            self._start_segment(1)
            return
        seq, path = segments[-1]
        with open(path, "rb") as handle:
            data = handle.read()
        _, end, damage = scan_segment(data)
        if damage is not None:
            if damage.trailing:
                raise WalError(
                    f"segment {segment_name(seq)} is corrupt at offset "
                    f"{damage.offset} with records after the damage; "
                    f"refusing to append — run RuleEngine.recover()"
                )
            end = damage.offset
            with open(path, "r+b") as handle:
                handle.truncate(end)
        self._file = open(path, "ab")
        self._seq = seq
        self._offset = end

    def _start_segment(self, seq):
        if self._file is not None:
            # A durable record in the new segment must imply the whole
            # outgoing segment is durable, or recovery would find a
            # damaged non-final segment and refuse the entire log.
            if self.fsync != "off":
                self.sync()
            self._file.close()
        path = os.path.join(self.directory, segment_name(seq))
        self._file = open(path, "ab")
        self._seq = seq
        self._offset = 0
        if self.fsync != "off":
            # Make the new segment's directory entry durable: an
            # fsync-acknowledged record must not vanish with its file.
            fsync_dir(self.directory)

    # -- appending ---------------------------------------------------------

    def append(self, payload, batch=False):
        """Frame and append one record; returns the position after it.

        *batch* marks the record as a delta-batch for the ``batch``
        fsync policy.  The frame is flushed to the OS on every append;
        fsync happens per policy.
        """
        with self._append_lock:
            if self._file is None:
                raise WalError("write-ahead log is closed")
            if self.fault is not None and self.fault.crashed:
                # A dead process writes nothing: once a simulated crash
                # has fired, later appends (e.g. from a ``finally``)
                # must not scribble valid frames after the torn one.
                from repro.durability.faultfs import SimulatedCrash

                raise SimulatedCrash("the process already crashed")
            frame = encode_record(payload)
            if (self._offset
                    and self._offset + len(frame) > self.segment_bytes):
                self._start_segment(self._seq + 1)
            if self.fault is not None:
                self.fault.hit("wal.append.before")
                partial = self.fault.partial_write(
                    "wal.append", len(frame)
                )
                if partial is not None:
                    self._file.write(frame[:partial])
                    self._file.flush()
                    self.fault.crashed = True
                    from repro.durability.faultfs import SimulatedCrash

                    raise SimulatedCrash(
                        f"torn write: {partial}/{len(frame)} bytes"
                    )
            self._file.write(frame)
            self._file.flush()
            self._offset += len(frame)
            self.stats.incr("wal_appends")
            self.stats.incr("wal_bytes", len(frame))
            if self.fsync == "always" or (self.fsync == "batch" and batch):
                self.sync()
            return (self._seq, self._offset)

    def sync(self):
        """fsync the current segment to stable storage."""
        with self._append_lock:
            if self._file is None:
                return
            if self.fault is not None:
                self.fault.hit("wal.fsync")
            os.fsync(self._file.fileno())
            self.stats.incr("wal_fsyncs")

    def tell(self):
        """``(segment_seq, offset)`` of the append position."""
        return (self._seq, self._offset)

    def truncate_before(self, seq):
        """Delete whole segments with sequence numbers below *seq*.

        Called after a checkpoint: segments entirely covered by the
        checkpoint are obsolete.  Returns the number removed.
        """
        removed = 0
        for segment_seq, path in list_segments(self.directory):
            if segment_seq < seq:
                os.remove(path)
                removed += 1
        return removed

    def close(self):
        """Flush, fsync (unless policy is ``off``), and close.

        Idempotent and thread-safe: a second close — or one racing an
        in-flight append, as when session eviction races a client
        disconnect in the service layer — is a no-op rather than a
        crash on a half-torn-down file object.
        """
        with self._append_lock:
            if self._file is None:
                return
            self._file.flush()
            if self.fsync != "off":
                self.sync()
            self._file.close()
            self._file = None

    def __repr__(self):
        return (
            f"WriteAheadLog({self.directory!r}, segment {self._seq} "
            f"@ {self._offset}, fsync={self.fsync})"
        )


def read_log_tail(directory, start=None):
    """Read every record from *start* (``(seq, offset)``) to the end.

    Returns ``(payloads, end_position, tail_damage)`` where
    *tail_damage* is None for a clean log or the :class:`_Damage` of
    the tolerated torn/damaged final record.  Raises
    :class:`~repro.errors.RecoveryError` for silently-corrupt middles,
    missing segments, or a *start* beyond the durable data.
    """
    if not os.path.isdir(directory):
        raise RecoveryError(f"no write-ahead log at {directory!r}")
    segments = list_segments(directory)
    start_seq, start_offset = start if start is not None else (None, None)
    if start_seq is not None:
        segments = [(seq, path) for seq, path in segments
                    if seq >= start_seq]
        if not segments or segments[0][0] != start_seq:
            raise RecoveryError(
                f"WAL segment {segment_name(start_seq or 0)} named by "
                f"the checkpoint is missing from {directory!r}"
            )
    for (seq, _), (next_seq, _) in zip(segments, segments[1:]):
        if next_seq != seq + 1:
            raise RecoveryError(
                f"WAL segments are not consecutive: "
                f"{segment_name(seq)} is followed by "
                f"{segment_name(next_seq)}"
            )
    payloads = []
    end_position = start if start is not None else (1, 0)
    tail_damage = None
    for index, (seq, path) in enumerate(segments):
        with open(path, "rb") as handle:
            data = handle.read()
        offset = start_offset if seq == start_seq else 0
        if offset > len(data):
            raise RecoveryError(
                f"checkpointed WAL position {offset} lies beyond "
                f"segment {segment_name(seq)} ({len(data)} bytes); "
                f"durable data was destroyed"
            )
        records, end, damage = scan_segment(data, offset)
        last = index == len(segments) - 1
        if damage is not None and (not last or damage.trailing):
            raise RecoveryError(
                f"WAL record at {segment_name(seq)}:{damage.offset} is "
                f"corrupt ({damage.reason}) with durable records after "
                f"it; refusing to recover silently"
            )
        payloads.extend(records)
        end_position = (seq, end)
        tail_damage = damage
    return payloads, end_position, tail_damage


def _record_spans(data, start=0):
    """``(start, end)`` byte spans of the intact frames from *start*.

    Stops at the first frame that fails the header or CRC check, like
    :func:`scan_segment` (JSON validity is not re-checked — a
    CRC-valid frame is a span even if its payload fails to decode).
    """
    spans = []
    offset = start
    while offset + HEADER.size <= len(data):
        magic, length, crc = HEADER.unpack_from(data, offset)
        if magic != MAGIC or length > MAX_RECORD_BYTES:
            break
        end = offset + HEADER.size + length
        if end > len(data):
            break
        if zlib.crc32(data[offset + HEADER.size:end]) != crc:
            break
        spans.append((offset, end))
        offset = end
    return spans


def truncate_after(directory, start, keep):
    """Physically keep only the first *keep* intact records past *start*.

    Everything after them — later records, later segments, and any
    damaged tail bytes — is deleted.  Recovery uses this to roll an
    incomplete trailing firing out of the log before logging resumes,
    so a second recovery of the same directory sees the same history.
    Returns the ``(seq, offset)`` cut position, or None if the log
    holds no more than *keep* intact records (nothing to cut).
    """
    seq0, off0 = start if start is not None else (0, 0)
    cut = None
    for seq, path in list_segments(directory):
        if seq < seq0:
            continue
        if cut is not None:
            os.remove(path)
            continue
        with open(path, "rb") as handle:
            data = handle.read()
        for span_start, _ in _record_spans(
            data, off0 if seq == seq0 else 0
        ):
            if keep == 0:
                cut = (seq, span_start)
                break
            keep -= 1
        if cut is not None:
            with open(path, "r+b") as handle:
                handle.truncate(cut[1])
    return cut
