"""Fault injection for the durability subsystem.

Two complementary tools:

* :class:`FaultInjector` — *in-flight* faults.  The WAL and the
  checkpointer call :meth:`FaultInjector.hit` at named points
  (``wal.append.before``, ``wal.fsync``, ``checkpoint.files``,
  ``checkpoint.rename``, ``checkpoint.current``,
  ``checkpoint.truncate``); the injector raises
  :class:`SimulatedCrash` on the configured n-th hit, simulating a
  process that dies at exactly that point.  ``torn_append`` makes the
  n-th WAL append write only a prefix of its frame before crashing —
  a torn write.

* Post-hoc corruptors — *at-rest* damage applied to WAL files between
  a simulated crash and recovery: :func:`tear_tail` (cut the final
  record short), :func:`truncate_tail` (chop trailing bytes), and
  :func:`corrupt_record` (flip a bit inside a record's payload, which
  the CRC must catch).

Beyond crashes, ``error_at`` injects *survivable* I/O errors: the
n-th hit of a point raises a plain :class:`OSError` (default errno
``ENOSPC`` — disk full) without marking the injector crashed.  The
process is expected to stay up, surface the failure to its caller,
and keep serving — the contract the chaos-hardened service layer is
tested against.

:class:`SimulatedCrash` deliberately derives from :class:`Exception`
but NOT from :class:`~repro.errors.ReproError`, so production error
handling (which catches ``ReproError``) can never swallow a simulated
crash in a test.
"""

from __future__ import annotations

import errno as _errno
import os
import struct

_HEADER = struct.Struct("<4sII")


class SimulatedCrash(Exception):
    """The process "died" at an injected fault point."""


class FaultInjector:
    """Crash the process at the n-th hit of a named fault point.

    *crash_at* maps point names to 1-based hit counts: ``{"wal.append.
    before": 3}`` crashes immediately before the third WAL append.
    *torn_append* is ``(n, keep)``: the n-th append writes only
    ``keep`` bytes of its frame (a float is a fraction of the frame)
    and then crashes.  *error_at* maps point names to an n-th hit —
    either a bare count (errno defaults to ``ENOSPC``) or an
    ``(n, errno)`` pair — at which a plain :class:`OSError` is raised
    *without* marking the injector crashed: the process survives and
    must contain the failure (a full disk, a flaky volume).
    ``counts`` records every hit for inspection; ``errors_injected``
    counts the survivable errors actually raised.
    """

    def __init__(self, crash_at=None, torn_append=None, error_at=None):
        self.crash_at = dict(crash_at or {})
        self.torn_append = torn_append
        self.error_at = {}
        for point, spec in (error_at or {}).items():
            if isinstance(spec, int):
                spec = (spec, _errno.ENOSPC)
            self.error_at[point] = (int(spec[0]), int(spec[1]))
        self.counts = {}
        self.crashed = False
        self.errors_injected = 0

    def hit(self, point):
        """Record a hit of *point*; raise if a fault is scheduled here."""
        count = self.counts.get(point, 0) + 1
        self.counts[point] = count
        if self.crash_at.get(point) == count:
            self.crashed = True
            raise SimulatedCrash(f"injected crash at {point} (hit {count})")
        spec = self.error_at.get(point)
        if spec is not None and spec[0] == count:
            self.errors_injected += 1
            code = spec[1]
            raise OSError(
                code, f"{os.strerror(code)} (injected at {point})"
            )

    def partial_write(self, point, frame_size):
        """Bytes of the frame to write before crashing, or None.

        Called by the WAL once per append with the full frame size;
        returns the torn prefix length when this append is the one
        configured to tear, else None (write everything).
        """
        if self.torn_append is None:
            return None
        count = self.counts.get(point, 0) + 1
        self.counts[point] = count
        nth, keep = self.torn_append
        if count != nth:
            return None
        if isinstance(keep, float):
            keep = int(frame_size * keep)
        return max(0, min(int(keep), frame_size - 1))


# -- post-hoc (at-rest) corruption ------------------------------------------


def _segments(wal_dir):
    names = sorted(
        name for name in os.listdir(wal_dir) if name.endswith(".wal")
    )
    if not names:
        raise FileNotFoundError(f"no WAL segments in {wal_dir}")
    return [os.path.join(wal_dir, name) for name in names]


def _frames(path):
    """Offsets and sizes of the whole frames in one segment file."""
    with open(path, "rb") as handle:
        data = handle.read()
    frames = []
    offset = 0
    while offset + _HEADER.size <= len(data):
        _, length, _ = _HEADER.unpack_from(data, offset)
        end = offset + _HEADER.size + length
        if end > len(data):
            break
        frames.append((offset, end - offset))
        offset = end
    return frames, len(data)


def tear_tail(wal_dir, keep=0.5):
    """Tear the final WAL record: keep only a prefix of its frame.

    *keep* is a fraction of the final frame (or a byte count).  Models
    a write that was in flight when the machine died.  Returns the
    number of bytes cut.
    """
    path = _segments(wal_dir)[-1]
    frames, size = _frames(path)
    if not frames:
        raise ValueError(f"segment {path} holds no complete record")
    offset, length = frames[-1]
    kept = int(length * keep) if isinstance(keep, float) else int(keep)
    kept = max(0, min(kept, length - 1))
    with open(path, "r+b") as handle:
        handle.truncate(offset + kept)
    return size - (offset + kept)


def truncate_tail(wal_dir, nbytes):
    """Chop the last *nbytes* bytes off the final segment."""
    path = _segments(wal_dir)[-1]
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(max(0, size - nbytes))
    return min(nbytes, size)


def corrupt_record(wal_dir, index=-1, bit=0):
    """Flip one payload bit of the *index*-th record across the log.

    Negative indexes count from the end (``-1`` = final record, the
    damage recovery must tolerate; ``-2`` or lower = a mid-log record,
    which recovery must refuse).  Returns ``(segment_path, offset)``
    of the corrupted record.
    """
    located = []
    for path in _segments(wal_dir):
        frames, _ = _frames(path)
        located.extend((path, offset, length) for offset, length in frames)
    if not located:
        raise ValueError(f"no complete records in {wal_dir}")
    path, offset, length = located[index]
    byte_at = offset + _HEADER.size + (bit // 8) % (length - _HEADER.size)
    with open(path, "r+b") as handle:
        handle.seek(byte_at)
        value = handle.read(1)[0]
        handle.seek(byte_at)
        handle.write(bytes([value ^ (1 << (bit % 8))]))
    return path, offset
