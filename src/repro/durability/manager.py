"""DurabilityConfig and the manager that ties WAL + checkpoints to a WM.

The manager is an ordinary working-memory observer — registered
*prepended*, so the log is written before any matcher propagates a
change (write-ahead in observer order too).  Batched flushes arrive
through the ``on_batch`` hook and become ONE record; single events
outside a batch become one record each.  Firings are logged by the
engine as a bracketed transaction — :meth:`DurabilityManager.log_fire`
(the refraction stamp) before the RHS runs, the RHS's own delta
records as they happen, and :meth:`DurabilityManager.log_fire_end`
after — so recovery can restore refraction stamps and roll back a
firing the crash cut short.

A manager opened on a directory that already holds a previous
session's records refuses to attach: time tags would restart at 1 and
a later recovery would replay two interleaved histories.  Recovery
(:func:`repro.durability.recovery.recover_engine`) passes
``resume=True`` after it has replayed the existing log.
"""

from __future__ import annotations

from repro.engine.stats import NULL_STATS
from repro.errors import DurabilityError
from repro.wm.events import ADD


class DurabilityConfig:
    """Configuration for the durability subsystem.

    *wal_dir* — directory holding segments and checkpoints;
    *fsync* — ``always`` / ``batch`` / ``off`` (see
    :mod:`repro.durability.wal`);
    *segment_bytes* — WAL rollover threshold;
    *retain_checkpoints* — checkpoints kept after each new one;
    *fault* — an optional
    :class:`~repro.durability.faultfs.FaultInjector`;
    *label* — an owner tag named in operator-facing errors (the
    service layer sets it to the tenant's session id, so a used-dir
    collision says *whose* directory collided).
    """

    __slots__ = ("wal_dir", "fsync", "segment_bytes",
                 "retain_checkpoints", "fault", "label")

    def __init__(self, wal_dir, fsync="batch", segment_bytes=None,
                 retain_checkpoints=2, fault=None, label=None):
        from repro.durability.wal import DEFAULT_SEGMENT_BYTES

        self.wal_dir = str(wal_dir)
        self.fsync = fsync
        self.segment_bytes = (
            segment_bytes if segment_bytes is not None
            else DEFAULT_SEGMENT_BYTES
        )
        self.retain_checkpoints = retain_checkpoints
        self.fault = fault
        self.label = label

    def __repr__(self):
        return (
            f"DurabilityConfig({self.wal_dir!r}, fsync={self.fsync!r}, "
            f"segment_bytes={self.segment_bytes})"
        )


def _cause_summary(error):
    """One-line summary of a FiringError's underlying cause."""
    cause = error.__cause__
    if cause is None:
        return str(error)
    return f"{type(cause).__name__}: {cause}"


def fired_signature(instantiation):
    """Content identity of a fired instantiation, as JSON-safe data.

    The sorted list of each token's time-tag tuple: time tags are
    never reused, so this pins the exact WME combination (regular
    instantiations) or set contents (SOIs) that fired.
    """
    return sorted(
        list(token.time_tags()) for token in instantiation.tokens()
    )


def collect_fired(engine):
    """Refraction stamps of every currently-ineligible instantiation.

    Parked (quarantined) instantiations are included: they are still
    matched, and a release after recovery must see their true stamps.
    """
    conflict_set = engine.conflict_set
    candidates = list(conflict_set.instantiations())
    for rule_name in conflict_set.parked_rules():
        candidates.extend(conflict_set.parked_of_rule(rule_name))
    fired = []
    for instantiation in candidates:
        if instantiation.eligible():
            continue
        fired.append({
            "r": instantiation.rule.name,
            "s": 1 if instantiation.is_set_oriented else 0,
            "t": fired_signature(instantiation),
        })
    return fired


def collect_reliability(engine):
    """JSON-safe reliability state for the checkpoint manifest.

    Returns None when there is nothing to record (no quarantines,
    failures, or dead letters), keeping clean-run manifests unchanged.
    """
    manager = engine.reliability
    state = {
        "quarantined": {
            rule_name: {
                "cycle": info.get("cycle", 0),
                "failures": info.get("failures", 0),
                "reason": info.get("reason", ""),
            }
            for rule_name, info in manager.quarantined.items()
        },
        "failures": dict(manager.failure_counts),
        "dead_letters": [
            {
                "r": letter.rule_name,
                "c": letter.cycle,
                "n": letter.attempts,
                "i": list(letter.action_path),
                "err": letter.error,
                "t": letter.signature,
                "o": letter.outcome,
            }
            for letter in manager.dead_letters
        ],
    }
    if not any(state.values()):
        return None
    return state


def _holds_prior_session(directory):
    """Does *directory* already contain records or checkpoints?"""
    import os

    from repro.durability import checkpoint as ckpt
    from repro.durability.wal import list_segments

    if not os.path.isdir(directory):
        return False
    if ckpt.read_current(directory) is not None:
        return True
    if ckpt.list_checkpoints(directory):
        return True
    return any(
        os.path.getsize(path) for _, path in list_segments(directory)
    )


class DurabilityManager:
    """Owns the WAL and checkpoints for one engine/working memory."""

    def __init__(self, config, stats=None, resume=False):
        from repro.durability.wal import WriteAheadLog

        if not isinstance(config, DurabilityConfig):
            config = DurabilityConfig(config)
        if not resume and _holds_prior_session(config.wal_dir):
            owner = (
                f" (session {config.label!r})"
                if config.label is not None else ""
            )
            raise DurabilityError(
                f"write-ahead log directory {config.wal_dir!r}{owner} "
                f"already holds a previous session; a fresh engine would "
                f"restart time tags and make the log unrecoverable — use "
                f"RuleEngine.recover({config.wal_dir!r}) to resume it, "
                f"or point durability at a fresh directory"
            )
        self.config = config
        self.stats = stats if stats is not None else NULL_STATS
        self.wal = WriteAheadLog(
            config.wal_dir,
            fsync=config.fsync,
            segment_bytes=config.segment_bytes,
            stats=self.stats,
            fault=config.fault,
        )
        self.wm = None
        # Idempotency key of the request whose delta record is about to
        # be written.  The service layer sets it immediately before a
        # keyed assert; the next delta record consumes it, embedding the
        # key in the same atomic WAL frame as the effects — a crash
        # loses both or neither, never the effects without the marker.
        self.pending_request_key = None

    # -- observation -------------------------------------------------------

    def attach(self, wm):
        """Observe *wm*, ahead of any matcher (write-ahead ordering)."""
        self.wm = wm
        wm.attach(self.on_event, on_batch=self.on_batch, prepend=True)

    def detach(self):
        if self.wm is not None:
            self.wm.detach(self.on_event)
            self.wm = None

    def on_event(self, event):
        self.wal.append(self._delta_payload([event]), batch=False)

    def on_batch(self, events):
        self.wal.append(self._delta_payload(events), batch=True)

    def _delta_payload(self, events):
        payload = {
            "k": "d",
            "n": self.wm.latest_time_tag + 1,
            "e": [
                [event.sign, event.wme.wme_class, event.wme.time_tag,
                 event.wme.as_dict()]
                for event in events
            ],
        }
        if self.pending_request_key is not None:
            payload["q"] = self.pending_request_key
            self.pending_request_key = None
        return payload

    def log_meta(self, matcher_name, strategy_name):
        """Record the session's matcher/strategy for checkpoint-free
        recovery (the checkpoint manifest also carries them)."""
        self.wal.append(
            {"k": "m", "matcher": matcher_name,
             "strategy": strategy_name},
            batch=False,
        )

    def log_literalize(self, wme_class, attributes):
        """Record a ``literalize`` so checkpoint-free recovery has it."""
        self.wal.append(
            {"k": "l", "c": wme_class, "a": list(attributes)}, batch=False
        )

    def log_rule(self, rule):
        """Record a rule definition (pretty-printed back to source)."""
        from repro.lang.printer import format_rule

        self.wal.append({"k": "p", "src": format_rule(rule)}, batch=False)

    def log_excise(self, rule_name):
        """Record a runtime rule removal."""
        self.wal.append({"k": "x", "r": rule_name}, batch=False)

    def log_replace(self, rule_name, rule):
        """Record an atomic rule replacement as ONE record.

        A composed excise+add pair would not be atomic in the log — a
        crash between the two records recovers with neither rule.  The
        single ``P`` record replays as excise-then-add, so recovery
        always sees either the old rule (record not yet durable) or
        the new one, never the gap.
        """
        from repro.lang.printer import format_rule

        self.wal.append(
            {"k": "P", "r": rule_name, "src": format_rule(rule)},
            batch=False,
        )

    def log_fire(self, instantiation):
        """Open a firing transaction: the refraction stamp.

        The RHS's working-memory deltas follow as ordinary records;
        :meth:`log_fire_end` terminates the transaction.  A log ending
        between the two is an incomplete firing, which recovery rolls
        back wholesale instead of replaying a stamp whose effects
        never became durable.
        """
        self.wal.append({
            "k": "f",
            "r": instantiation.rule.name,
            "s": 1 if instantiation.is_set_oriented else 0,
            "t": fired_signature(instantiation),
        }, batch=False)

    def log_fire_end(self):
        """Terminate the firing transaction opened by :meth:`log_fire`."""
        self.wal.append({"k": "e"}, batch=False)

    def log_abort(self, instantiation, outcome, error):
        """Terminate a firing transaction as *rolled back*.

        The record carries the containment outcome so replay restores
        the refraction stamp for ``halt`` (the firing never happened)
        and leaves it consumed for ``skip``/``retry``/``quarantine``
        (the attempt was spent), plus enough context — failed action
        path and error summary — to rebuild the dead-letter list.
        """
        self.wal.append({
            "k": "a",
            "o": outcome,
            "r": instantiation.rule.name,
            "c": error.cycle,
            "n": error.attempt,
            "i": list(error.action_path),
            "err": _cause_summary(error),
        }, batch=False)

    def log_quarantine(self, rule_name):
        """Record a rule entering quarantine."""
        self.wal.append({"k": "q", "r": rule_name}, batch=False)

    def log_release(self, rule_name):
        """Record a quarantined rule being released."""
        self.wal.append({"k": "Q", "r": rule_name}, batch=False)

    def log_reset(self):
        """Record an :meth:`RuleEngine.reset` (after its clear deltas).

        Replay zeroes the control state — cycle count, halt flag,
        trace, dead letters, quarantine — exactly as the live reset
        did; the preceding delta record already emptied working memory.
        """
        self.wal.append({"k": "R"}, batch=False)

    def log_request(self, key, response):
        """Record a completed idempotent request's journal entry.

        Written *after* the request's effects are durable (a run's
        firing brackets, an assert's delta record), so replay restores
        the exact response a retried request should see.  A crash
        between the effects and this record is safe for ``run``:
        replay restores refraction stamps, so re-running to quiescence
        fires nothing new — the retry converges on the same state and
        merely reports a smaller ``fired`` count.
        """
        self.wal.append(
            {"k": "j", "key": key, "resp": response}, batch=False
        )

    @staticmethod
    def decode_delta(entry):
        """``[sign, class, tag, values]`` → usable fields."""
        sign, wme_class, tag, values = entry
        return sign == ADD, wme_class, tag, values

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self, engine):
        """Write an atomic checkpoint of *engine*; returns its path.

        The WAL is synced first so the manifest's position is durable;
        afterwards obsolete segments are truncated and old checkpoints
        pruned.
        """
        from repro.durability import checkpoint as ckpt
        from repro.wm.snapshot import dump_wm

        if engine.wm.in_batch:
            raise DurabilityError(
                "cannot checkpoint inside an open batch()"
            )
        self.wal.sync()
        position = self.wal.tell()
        # COND tables are derived state that restore_wm + tail replay
        # rebuild exactly, so no separate snapshot is *needed* — but on
        # a file-backed storage backend (sqlite) the whole database is
        # one cheap backup-API copy, and recovery can prime the matcher
        # from it instead of recomputing every instance row.
        binary_members = {}
        rdb_backend = None
        storage = getattr(engine.matcher, "storage_backend", None)
        if storage is not None and getattr(
            storage, "supports_file_backup", False
        ):
            binary_members[ckpt.DIPS_DB_NAME] = storage.serialize()
            rdb_backend = storage.spec
        path = ckpt.write_checkpoint(
            self.config.wal_dir,
            wm_snapshot=dump_wm(engine.wm),
            wal_position=position,
            next_tag=engine.wm.latest_time_tag + 1,
            program=ckpt.program_source(engine),
            matcher_name=ckpt.matcher_name(engine.matcher),
            strategy_name=engine.strategy.name,
            fired=collect_fired(engine),
            cycle_count=engine.cycle_count,
            reliability=collect_reliability(engine),
            requests=[
                [key, resp]
                for key, resp in getattr(
                    engine, "request_journal", {}
                ).items()
            ] or None,
            fault=self.config.fault,
            binary_members=binary_members or None,
            rdb_backend=rdb_backend,
        )
        fault = self.config.fault
        if fault is not None:
            fault.hit("checkpoint.truncate")
        self.wal.truncate_before(position[0])
        ckpt.prune_checkpoints(
            self.config.wal_dir, self.config.retain_checkpoints
        )
        self.stats.incr("checkpoints")
        return path

    def close(self):
        """Flush and close the log (fsync per policy)."""
        self.detach()
        self.wal.close()
