"""Atomic checkpoints: snapshot + manifest, write-temp-then-rename.

A checkpoint is a directory ``checkpoint-%08d`` inside the WAL
directory holding:

* ``wm.json`` — the working-memory snapshot
  (:func:`repro.wm.snapshot.dump_wm`, time tags preserved).  Matcher
  state is derived, and recovery normally rebuilds it by replaying the
  snapshot through the batched propagation path;
* ``dips.sqlite3`` (only when the matcher runs on the sqlite storage
  backend) — the whole COND-table database captured through sqlite's
  backup API, so recovery can prime the matcher instead of recomputing
  every instance row (ROADMAP item 2's "cheap checkpoints");
* ``MANIFEST.json`` — everything recovery needs: format version,
  sequence number, the WAL position the snapshot corresponds to, the
  time-tag counter, the firing count, the matcher and strategy names,
  the program source (rebuilt from the live rule ASTs via the
  pretty-printer, so ``recover()`` can reload it), the refraction
  stamps of fired instantiations, and a CRC32 per member file.

Atomicity: members are written into ``checkpoint-N.tmp``, fsynced,
and the directory is renamed into place; only then is the ``CURRENT``
pointer file rewritten (same temp-then-rename).  A crash at any point
leaves either the old ``CURRENT`` naming an intact old checkpoint, or
the new one naming the new — never a half-written checkpoint in use.
After ``CURRENT`` moves, WAL segments below the checkpoint position
are truncated and checkpoints beyond the retention count pruned.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import zlib

from repro.durability.wal import fsync_dir
from repro.errors import DurabilityError, RecoveryError

MANIFEST_VERSION = 1
CHECKPOINT_PREFIX = "checkpoint-"
CURRENT_NAME = "CURRENT"
MANIFEST_NAME = "MANIFEST.json"
WM_SNAPSHOT_NAME = "wm.json"
DIPS_DB_NAME = "dips.sqlite3"


def checkpoint_dirname(seq):
    return f"{CHECKPOINT_PREFIX}{seq:08d}"


def list_checkpoints(directory):
    """Sorted ``(seq, path)`` pairs of complete (renamed) checkpoints."""
    pairs = []
    for name in os.listdir(directory):
        if name.startswith(CHECKPOINT_PREFIX) and not name.endswith(".tmp"):
            stem = name[len(CHECKPOINT_PREFIX):]
            if stem.isdigit():
                pairs.append((int(stem), os.path.join(directory, name)))
    return sorted(pairs)


def _fsync_file(path):
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_checkpoint(directory, *, wm_snapshot, wal_position,
                     next_tag, program, matcher_name, strategy_name,
                     fired, cycle_count, reliability=None,
                     requests=None, fault=None,
                     binary_members=None, rdb_backend=None):
    """Write one atomic checkpoint; returns its directory path.

    The caller (the durability manager) is responsible for syncing the
    WAL up to *wal_position* first and for truncating/pruning after.

    *binary_members* maps member names to raw bytes — e.g. the sqlite
    database file captured through the backup API when the matcher runs
    on an out-of-core backend.  They are CRC-checked like JSON members
    but listed under ``manifest["binary"]`` so loading leaves them as
    bytes.  *rdb_backend* records the storage backend spec so recovery
    rebuilds the matcher on the same kind of store.
    """
    if fault is not None:
        fault.hit("checkpoint.begin")
    existing = list_checkpoints(directory)
    seq = (existing[-1][0] + 1) if existing else 1
    name = checkpoint_dirname(seq)
    final_path = os.path.join(directory, name)
    tmp_path = final_path + ".tmp"
    if os.path.exists(tmp_path):
        shutil.rmtree(tmp_path)
    os.makedirs(tmp_path)

    files = {}

    def _write_member(member, payload):
        data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        path = os.path.join(tmp_path, member)
        with open(path, "wb") as handle:
            handle.write(data)
        _fsync_file(path)
        files[member] = zlib.crc32(data)

    def _write_binary_member(member, data):
        path = os.path.join(tmp_path, member)
        with open(path, "wb") as handle:
            handle.write(data)
        _fsync_file(path)
        files[member] = zlib.crc32(data)

    _write_member(WM_SNAPSHOT_NAME, wm_snapshot)
    for member, data in (binary_members or {}).items():
        _write_binary_member(member, data)
    manifest = {
        "version": MANIFEST_VERSION,
        "seq": seq,
        "wal": list(wal_position),
        "next_tag": next_tag,
        "cycle_count": cycle_count,
        "matcher": matcher_name,
        "strategy": strategy_name,
        "program": program,
        # The rule-base version: runtime surgery (add/remove/replace)
        # changes the program text the manifest carries, and the hash
        # lets operators (and the service stats op) tell two tenants'
        # rule bases apart without diffing sources.
        "rule_base_version": rule_base_version(program),
        "fired": fired,
        "files": files,
    }
    if binary_members:
        manifest["binary"] = sorted(binary_members)
    if rdb_backend:
        manifest["rdb_backend"] = rdb_backend
    if reliability:
        manifest["reliability"] = reliability
    if requests:
        # The request-dedup journal ([key, response] pairs, insertion
        # order preserved): checkpointing truncates the WAL segments
        # that carried the journal records, so the manifest must carry
        # the live entries across the truncation.
        manifest["requests"] = requests
    manifest_data = json.dumps(manifest, separators=(",", ":"))
    manifest_path = os.path.join(tmp_path, MANIFEST_NAME)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        handle.write(manifest_data)
    _fsync_file(manifest_path)
    if fault is not None:
        fault.hit("checkpoint.files")

    os.rename(tmp_path, final_path)
    fsync_dir(directory)
    if fault is not None:
        fault.hit("checkpoint.rename")

    _set_current(directory, name)
    if fault is not None:
        fault.hit("checkpoint.current")
    return final_path


def _set_current(directory, name):
    tmp = os.path.join(directory, CURRENT_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(name + "\n")
    _fsync_file(tmp)
    os.rename(tmp, os.path.join(directory, CURRENT_NAME))
    fsync_dir(directory)


def prune_checkpoints(directory, retain):
    """Remove old checkpoints, keeping *retain* and the CURRENT one.

    Also clears abandoned ``.tmp`` directories from crashed
    checkpoint attempts.  Returns the removed paths.
    """
    current = read_current(directory)
    removed = []
    checkpoints = list_checkpoints(directory)
    for seq, path in checkpoints[:-retain] if retain else checkpoints:
        if current is not None and os.path.basename(path) == current:
            continue
        shutil.rmtree(path)
        removed.append(path)
    for name in os.listdir(directory):
        if name.startswith(CHECKPOINT_PREFIX) and name.endswith(".tmp"):
            shutil.rmtree(os.path.join(directory, name))
    return removed


def read_current(directory):
    """The checkpoint directory name ``CURRENT`` points at, or None."""
    path = os.path.join(directory, CURRENT_NAME)
    try:
        with open(path, encoding="utf-8") as handle:
            name = handle.read().strip()
    except OSError:
        return None
    return name or None


class LoadedCheckpoint:
    """A validated checkpoint: manifest, parsed WM snapshot, and any
    raw binary members (``.binary`` maps member name to bytes)."""

    __slots__ = ("path", "manifest", "wm_snapshot", "binary")

    def __init__(self, path, manifest, wm_snapshot, binary=None):
        self.path = path
        self.manifest = manifest
        self.wm_snapshot = wm_snapshot
        self.binary = binary or {}


def load_checkpoint(directory):
    """Load and validate the checkpoint ``CURRENT`` names, or None.

    Every member file is re-read and its CRC checked against the
    manifest before anything is trusted; a mismatch, missing member,
    or unreadable manifest raises
    :class:`~repro.errors.RecoveryError`.
    """
    name = read_current(directory)
    if name is None:
        return None
    path = os.path.join(directory, name)
    if not os.path.isdir(path):
        raise RecoveryError(
            f"CURRENT names {name!r} but no such checkpoint exists"
        )
    try:
        with open(os.path.join(path, MANIFEST_NAME),
                  encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as error:
        raise RecoveryError(
            f"checkpoint {name} has an unreadable manifest: {error}"
        ) from error
    if manifest.get("version") != MANIFEST_VERSION:
        raise RecoveryError(
            f"unsupported checkpoint manifest version "
            f"{manifest.get('version')!r}"
        )
    binary_names = set(manifest.get("binary", ()))
    members = {}
    binary = {}
    for member, crc in manifest.get("files", {}).items():
        member_path = os.path.join(path, member)
        try:
            with open(member_path, "rb") as handle:
                data = handle.read()
        except OSError as error:
            raise RecoveryError(
                f"checkpoint {name} is missing member {member}: {error}"
            ) from error
        if zlib.crc32(data) != crc:
            raise RecoveryError(
                f"checkpoint {name} member {member} fails its CRC "
                f"(stored {crc}, computed {zlib.crc32(data)})"
            )
        if member in binary_names:
            binary[member] = data
        else:
            members[member] = json.loads(data)
    if WM_SNAPSHOT_NAME not in members:
        raise RecoveryError(
            f"checkpoint {name} has no {WM_SNAPSHOT_NAME} member"
        )
    return LoadedCheckpoint(
        path, manifest, members[WM_SNAPSHOT_NAME], binary
    )


def rule_base_version(program):
    """Content hash of a program's source text (the rule-base version).

    Checkpoint manifests carry it so a recovered session can be
    audited against the rule base it is expected to run; the service
    layer uses the same function for per-tenant rule-base keys after a
    reload diverges a tenant from the shared cache entry.
    """
    return hashlib.sha256(
        (program or "").encode("utf-8")
    ).hexdigest()[:16]


def program_source(engine):
    """Rebuild loadable program text from an engine's live state.

    Literalize declarations come from the WM class registry, rules
    from the pretty-printer (``parse_rule(format_rule(r)) == r`` is a
    property-tested invariant), so a checkpoint can restore the rule
    base without the original source file.
    """
    from repro.lang.printer import format_rule

    lines = []
    registry = engine.wm.registry
    for wme_class in registry.declared_classes():
        attributes = " ".join(registry.attributes_of(wme_class))
        lines.append(f"(literalize {wme_class} {attributes})".rstrip())
    for rule in engine.rules.values():
        lines.append(format_rule(rule))
    return "\n".join(lines)


def matcher_name(matcher):
    """The registry name of *matcher*'s class, or None if unknown."""
    from repro.dips.matcher import DipsMatcher
    from repro.match import NaiveMatcher, TreatMatcher
    from repro.rete.network import ReteNetwork
    from repro.rete.sharded import ShardedReteNetwork

    for name, cls in (("rete", ReteNetwork), ("treat", TreatMatcher),
                      ("naive", NaiveMatcher), ("dips", DipsMatcher),
                      ("sharded", ShardedReteNetwork)):
        if type(matcher) is cls:
            return name
    return None


def build_matcher(name, backend=None, kernels=None):
    """Instantiate a matcher by registry name.

    *backend* is a storage backend spec for matchers that run on the
    relational substrate (dips); the others ignore it.  *kernels* is a
    compiled-kernel mode spec for the Rete-family matchers (rete,
    sharded); the interpreted comparison matchers ignore it.
    """
    from repro.dips.matcher import DipsMatcher
    from repro.match import NaiveMatcher, TreatMatcher
    from repro.rete.network import ReteNetwork
    from repro.rete.sharded import ShardedReteNetwork

    factories = {"rete": ReteNetwork, "treat": TreatMatcher,
                 "naive": NaiveMatcher, "dips": DipsMatcher,
                 "sharded": ShardedReteNetwork}
    if name not in factories:
        raise DurabilityError(f"unknown matcher {name!r}")
    if name == "dips":
        return DipsMatcher(backend=backend)
    if name in ("rete", "sharded"):
        return factories[name](kernels=kernels)
    return factories[name]()
