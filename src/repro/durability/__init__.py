"""Durability: write-ahead logging, checkpoints, and crash recovery.

The paper's section 8 motivates merging rule systems with database
systems precisely to gain "concurrency control and persistence as
found in database systems".  This package supplies the persistence
half for the whole engine, tying the working-memory snapshot store
(:mod:`repro.wm.snapshot`) to the batched delta streams of
:meth:`repro.wm.memory.WorkingMemory.batch` — matcher state, DIPS
COND tables included, is derived and rebuilt by replay:

* :mod:`repro.durability.wal` — a segmented, CRC32-framed
  **write-ahead log** of every working-memory delta-set and firing
  (each firing a bracketed transaction recovery can roll back if a
  crash cut it short), with a configurable fsync policy
  (``always`` / ``batch`` / ``off``);
* :mod:`repro.durability.checkpoint` — atomic **checkpoints**
  (write-temp-then-rename) bundling the WM snapshot, the time-tag
  counter, the program text, refraction state, and the WAL position,
  after which obsolete segments are truncated;
* :mod:`repro.durability.recovery` — **recovery**: load the latest
  checkpoint, then replay the WAL tail *through the batched
  propagation path*, so any matcher (Rete, TREAT, naive, DIPS)
  rebuilds identical match state; a torn/truncated final record is
  tolerated (the unflushed tail is lost), a corrupt middle raises a
  typed :class:`~repro.errors.RecoveryError`;
* :mod:`repro.durability.faultfs` — a **fault-injection harness**
  simulating torn writes, truncated tails, bit-flipped records, and
  crashes at parameterized points.

Wire it through the engine::

    from repro import DurabilityConfig, RuleEngine

    engine = RuleEngine(durability=DurabilityConfig("run.wal.d"))
    engine.load(program)
    engine.load_facts(facts)          # one WAL record per batch
    engine.checkpoint()               # atomic snapshot + WAL truncation
    ...                               # crash here --
    engine = RuleEngine.recover("run.wal.d")   # -- and resume

See ``docs/DURABILITY.md`` for the on-disk format specification.
"""

from repro.durability.checkpoint import load_checkpoint, write_checkpoint
from repro.durability.faultfs import (
    FaultInjector,
    SimulatedCrash,
    corrupt_record,
    tear_tail,
    truncate_tail,
)
from repro.durability.manager import DurabilityConfig, DurabilityManager
from repro.durability.recovery import recover_engine
from repro.durability.wal import WriteAheadLog, read_log_tail

__all__ = [
    "DurabilityConfig",
    "DurabilityManager",
    "FaultInjector",
    "SimulatedCrash",
    "WriteAheadLog",
    "corrupt_record",
    "load_checkpoint",
    "read_log_tail",
    "recover_engine",
    "tear_tail",
    "truncate_tail",
    "write_checkpoint",
]
