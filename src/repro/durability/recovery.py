"""Crash recovery: checkpoint restore plus batched WAL-tail replay.

Recovery rebuilds an engine in four steps:

1. **Checkpoint** — :func:`repro.durability.checkpoint.load_checkpoint`
   validates and loads the checkpoint ``CURRENT`` names (CRC-checked);
   with no checkpoint the whole log replays from an empty working
   memory.
2. **Program** — the manifest's program text (or an explicit
   *program* override) is loaded, so the matcher compiles the same
   rule base the crashed process had.
3. **Restore** — the WM snapshot replays through
   :func:`repro.wm.snapshot.restore_wm`, which rides the batched
   propagation path; refraction stamps recorded in the manifest are
   re-applied to the rebuilt conflict set.
4. **Replay** — the WAL tail past the checkpoint position replays:
   each delta record (one original batch flush, or one single event)
   goes through its own ``wm.batch()``, so original batches replay
   set-oriented while the record sequence preserves the original
   timeline; firing records re-stamp refraction at exactly the state
   the original firing saw.

Firings are logged as bracketed transactions (``f`` stamp, the RHS's
delta records, ``e`` terminator).  A log that ends inside such a
bracket is a firing the crash cut short: replaying its ``f`` stamp
would mark the instantiation fired while its effects are lost, a state
no uninterrupted run can reach.  Recovery therefore rolls the whole
unterminated firing back — the trailing records from its ``f`` onward
are dropped (and, when logging resumes, physically truncated so a
second crash-and-recover sees the same history).  The scan walks
backward and matches ``e`` terminators to ``f`` stamps so firings
nested through RHS ``call`` actions roll back as a unit.


Because every matcher consumes the same batched delta stream, the
recovered conflict set, dominance order, refire eligibility, and WM
contents are identical whichever of Rete/TREAT/naive/DIPS is attached
— the crash-recovery property tests assert exactly that.
"""

from __future__ import annotations

import os

from repro.errors import RecoveryError, WorkingMemoryError


class RecoveryReport:
    """What a recovery did; exposed as ``engine.recovery_report``."""

    __slots__ = ("checkpoint_path", "restored_wmes", "replayed_records",
                 "replayed_deltas", "replayed_firings", "tail_damaged",
                 "dropped_records", "wal_position")

    def __init__(self, checkpoint_path, restored_wmes, replayed_records,
                 replayed_deltas, replayed_firings, tail_damaged,
                 dropped_records, wal_position):
        self.checkpoint_path = checkpoint_path
        self.restored_wmes = restored_wmes
        self.replayed_records = replayed_records
        self.replayed_deltas = replayed_deltas
        self.replayed_firings = replayed_firings
        self.tail_damaged = tail_damaged
        self.dropped_records = dropped_records
        self.wal_position = wal_position

    def __repr__(self):
        extra = ""
        if self.tail_damaged:
            extra += ", damaged tail dropped"
        if self.dropped_records:
            extra += (
                f", {self.dropped_records} records of an incomplete "
                f"firing rolled back"
            )
        return (
            f"RecoveryReport({self.restored_wmes} WMEs restored, "
            f"{self.replayed_deltas} deltas + "
            f"{self.replayed_firings} firings replayed{extra})"
        )


def recover_engine(engine_cls, path, *, program=None, matcher=None,
                   strategy=None, stats=None, echo=False,
                   durability=True, trace_limit=None, on_error=None,
                   workers=None, backend=None, kernels=None):
    """Rebuild a :class:`RuleEngine` from the WAL directory *path*.

    *matcher* may be a matcher instance or a registry name
    (``rete``/``treat``/``naive``/``dips``); by default the manifest's
    recorded matcher (falling back to Rete) is used, so recovery is
    matcher-faithful without the caller restating it.  *backend*
    overrides the storage backend spec for substrate-backed matchers
    (default: the manifest's recorded backend).  *durability*
    re-attaches logging to the same directory (pass ``False`` for a
    read-only resurrection, or a :class:`DurabilityConfig` to change
    the policy).  The recovered engine carries a
    :class:`RecoveryReport` as ``engine.recovery_report``.
    """
    from repro.durability.checkpoint import build_matcher, load_checkpoint
    from repro.durability.manager import DurabilityConfig, DurabilityManager
    from repro.durability.wal import read_log_tail, truncate_after
    from repro.wm.snapshot import restore_wm

    if not os.path.isdir(path):
        raise RecoveryError(f"no write-ahead log directory at {path!r}")
    loaded = load_checkpoint(path)
    manifest = loaded.manifest if loaded is not None else {}
    start = tuple(manifest["wal"]) if loaded is not None else None
    payloads, end_position, tail_damage = read_log_tail(path, start)

    # A log ending inside a firing transaction (an ``f`` stamp with
    # neither its ``e`` commit nor its ``a`` abort on disk) is a firing
    # the crash cut short — possibly mid-rollback: the live engine
    # stages RHS effects, so nothing of it is durable either way, and
    # dropping it wholesale is correct for both.  Scan backward
    # matching terminators to stamps so firings nested through RHS
    # ``call`` → ``run()`` are handled.
    drop_from = None
    depth = 0
    for index in range(len(payloads) - 1, -1, -1):
        kind = payloads[index].get("k")
        if kind in ("e", "a"):
            depth += 1
        elif kind == "f":
            if depth:
                depth -= 1
            else:
                drop_from = index
    dropped = 0
    if drop_from is not None:
        dropped = len(payloads) - drop_from
        payloads = payloads[:drop_from]

    # Session-meta records in the tail are newer than the manifest (a
    # resumed session may have overridden the matcher), so they win.
    meta = {}
    for payload in payloads:
        if payload.get("k") == "m":
            meta = payload
    if matcher is None:
        matcher = (
            meta.get("matcher") or manifest.get("matcher") or "rete"
        )
    if isinstance(matcher, str):
        matcher = build_matcher(
            matcher, backend=backend or manifest.get("rdb_backend"),
            kernels=kernels,
        )
    if strategy is None:
        strategy = (
            meta.get("strategy") or manifest.get("strategy") or "lex"
        )
    # Error policies are not persisted (they may hold callables and
    # tuning the policy is a per-session decision); callers restate
    # one via *on_error*, defaulting to the engine's own default.
    engine = engine_cls(matcher=matcher, strategy=strategy, echo=echo,
                        stats=stats, trace_limit=trace_limit,
                        workers=workers,
                        **({} if on_error is None
                           else {"on_error": on_error}))

    program_text = program
    if program_text is None:
        program_text = manifest.get("program")
    if program_text:
        engine.load(program_text)

    restored = 0
    if loaded is not None:
        # When the checkpoint carries the matcher's sqlite database
        # (backup-API member), prime the COND tables from it and have
        # the WM restore skip repopulating them — the cheap-checkpoint
        # path.  Only safe when the program was not overridden: the
        # member's template rows belong to the manifest's program.
        primed = program is None and _prime_dips(engine, loaded)
        if primed:
            engine.matcher.begin_restore()
        try:
            restored = len(
                restore_wm(engine.wm, loaded.wm_snapshot,
                           stats=engine.stats)
            )
        finally:
            if primed:
                engine.matcher.end_restore()
        engine.wm._next_tag = max(
            engine.wm._next_tag, manifest.get("next_tag", 1)
        )
        engine.cycle_count = manifest.get("cycle_count", 0)
        # Quarantine parking first (so stamps are looked up where the
        # instantiations actually live), then refraction stamps.
        _restore_reliability(engine, manifest.get("reliability"))
        for entry in manifest.get("fired", ()):
            _mark_fired(engine, entry)
        for key, resp in manifest.get("requests", ()):
            engine.request_journal[key] = resp

    deltas, firings = _replay(engine, payloads)
    engine.stats.incr("replayed_deltas", deltas)

    if durability:
        config = (
            durability
            if isinstance(durability, DurabilityConfig)
            else DurabilityConfig(path)
        )
        from repro.durability.checkpoint import matcher_name

        if dropped:
            # Logging resumes past the rolled-back firing, so cut it
            # out of the file too: otherwise a second crash-and-recover
            # would see the dropped stamp mid-log and replay it.
            cut = truncate_after(path, start, drop_from)
            if cut is not None:
                end_position = cut
        manager = DurabilityManager(config, stats=engine.stats,
                                    resume=True)
        manager.attach(engine.wm)
        manager.log_meta(matcher_name(engine.matcher),
                         engine.strategy.name)
        engine.durability = manager

    engine.recovery_report = RecoveryReport(
        loaded.path if loaded is not None else None,
        restored,
        len(payloads),
        deltas,
        firings,
        tail_damage is not None,
        dropped,
        end_position,
    )
    return engine


def _prime_dips(engine, loaded):
    """Restore the matcher's database from a checkpoint binary member.

    Returns True when the member existed and the attached matcher runs
    on a backup-capable storage backend; False means the caller should
    let the WM restore rebuild COND tables the ordinary way.
    """
    from repro.durability.checkpoint import DIPS_DB_NAME

    data = loaded.binary.get(DIPS_DB_NAME)
    if data is None:
        return False
    storage = getattr(engine.matcher, "storage_backend", None)
    if storage is None or not getattr(
        storage, "supports_file_backup", False
    ):
        return False
    storage.restore(data)
    return True


def _replay(engine, payloads):
    """Apply WAL records to *engine*; returns (deltas, firings) counts.

    Each delta record — one flushed batch, or one single event — is
    applied through its own ``wm.batch()``, so original batches replay
    set-oriented while the record *sequence* preserves the original
    timeline.  Records are never merged: coalescing two records would
    let a make/remove pair net away and silently keep a fired
    instantiation alive where the original run retracted and re-created
    it eligible.

    Firing brackets replay with their recorded outcome: an ``e``
    commit keeps the refraction stamp its ``f`` applied; an ``a``
    abort under the ``halt`` outcome restores the pre-fire stamp
    (the live engine rolled the firing back wholesale), while
    skip/retry/quarantine aborts leave the stamp consumed and
    skip/quarantine rebuild the dead-letter record.
    """
    wm = engine.wm
    deltas = 0
    firings = 0
    open_firings = []

    def apply_record(record):
        nonlocal deltas
        try:
            with wm.batch(stats=engine.stats):
                for entry in record["e"]:
                    _apply_delta(wm, entry)
                    deltas += 1
        except WorkingMemoryError as error:
            raise RecoveryError(
                f"WAL replay failed: {error}"
            ) from error
        wm._next_tag = max(wm._next_tag, record.get("n", 1))
        # A delta record carrying an idempotency key is a keyed assert
        # whose effects and dedup marker share one atomic frame: mark
        # the key applied so a post-recovery retry is deduplicated
        # instead of double-applied.  The synthesized response carries
        # the applied delta count; the server adds ``deduped`` when it
        # answers a retry from the journal.
        key = record.get("q")
        if key is not None:
            engine.request_journal[key] = {
                "ingested": sum(
                    1 for entry in record["e"] if entry[0] == "+"
                ),
                "wm_size": len(wm),
                "recovered": True,
            }

    for payload in payloads:
        kind = payload.get("k")
        if kind == "d":
            apply_record(payload)
        elif kind == "f":
            open_firings.append(_mark_fired(engine, payload))
            firings += 1
            engine.cycle_count += 1
        elif kind == "l":
            engine.literalize(payload["c"], *payload["a"])
        elif kind == "p":
            _replay_rule(engine, payload["src"])
        elif kind == "x":
            if payload["r"] in engine.rules:
                engine.excise(payload["r"])
        elif kind == "P":
            _replay_replace(engine, payload["r"], payload["src"])
        elif kind == "e":
            if open_firings:
                open_firings.pop()
        elif kind == "a":
            _replay_abort(engine, payload, open_firings)
        elif kind == "q":
            _replay_quarantine(engine, payload["r"])
        elif kind == "Q":
            engine.reliability.release(engine, payload["r"])
        elif kind == "R":
            # The reset's clear already replayed as an ordinary delta
            # record; zero the control state exactly as reset() did.
            engine.tracer.clear()
            engine.halted = False
            engine.cycle_count = 0
            engine.reliability.clear_runtime_state(engine)
        elif kind == "j":
            # A completed idempotent request's journal entry: restore
            # the recorded response so a retried request after recovery
            # is answered from the journal, never re-applied.
            engine.request_journal[payload["key"]] = payload["resp"]
        elif kind == "m":
            pass  # consumed by the pre-scan
        else:
            raise RecoveryError(f"unknown WAL record kind {kind!r}")
    return deltas, firings


def _replay_abort(engine, payload, open_firings):
    """Replay one rolled-back firing's terminator."""
    from repro.engine.reliability import DeadLetter

    instantiation = prior = None
    if open_firings:
        instantiation, prior = open_firings.pop()
    outcome = payload.get("o", "halt")
    engine.reliability.record_failure(payload["r"])
    if outcome == "halt":
        if instantiation is not None:
            instantiation.restore_refraction(prior)
        return
    if outcome in ("skip", "quarantine"):
        engine.reliability.add_dead_letter(DeadLetter(
            payload["r"],
            payload.get("c", 0),
            payload.get("n", 1),
            payload.get("i", ()),
            payload.get("err", ""),
            payload.get("t"),
            outcome,
        ))


def _replay_quarantine(engine, rule_name):
    """Replay a rule entering quarantine."""
    parked = engine.conflict_set.quarantine_rule(rule_name)
    engine.reliability.quarantined[rule_name] = {
        "cycle": engine.cycle_count,
        "failures": engine.reliability.failure_counts.get(rule_name, 0),
        "reason": "recovered from log",
        "parked": parked,
    }


def _restore_reliability(engine, state):
    """Apply a checkpoint manifest's reliability section."""
    from repro.engine.reliability import DeadLetter

    if not state:
        return
    manager = engine.reliability
    manager.failure_counts.update(state.get("failures", {}))
    for rule_name, info in state.get("quarantined", {}).items():
        parked = engine.conflict_set.quarantine_rule(rule_name)
        manager.quarantined[rule_name] = {
            "cycle": info.get("cycle", 0),
            "failures": info.get("failures", 0),
            "reason": info.get("reason", ""),
            "parked": parked,
        }
    for entry in state.get("dead_letters", ()):
        manager.add_dead_letter(DeadLetter(
            entry.get("r", "?"),
            entry.get("c", 0),
            entry.get("n", 1),
            entry.get("i", ()),
            entry.get("err", ""),
            entry.get("t"),
            entry.get("o", "skip"),
        ))


def _replay_rule(engine, source):
    """Add a logged rule unless the program override already has it."""
    from repro.lang.parser import parse_rule

    rule = parse_rule(source)
    if rule.name not in engine.rules:
        engine.add_rule(rule)


def _replay_replace(engine, old_name, source):
    """Replay an atomic rule replacement (one ``P`` record).

    In-memory the swap decomposes safely — atomicity only matters on
    disk.  Presence checks keep the replay idempotent against a
    program override that already reflects the surgery.
    """
    from repro.lang.parser import parse_rule

    rule = parse_rule(source)
    if old_name in engine.rules:
        engine.excise(old_name)
    if rule.name not in engine.rules:
        engine.add_rule(rule)


def _apply_delta(wm, entry):
    sign, wme_class, tag, values = entry
    if sign == "+":
        wm.ingest(wme_class, values, tag)
    elif sign == "-":
        wm.remove(tag)
    else:
        raise RecoveryError(f"unknown delta sign {sign!r}")


def _mark_fired(engine, entry):
    """Re-stamp refraction for one fired-instantiation record.

    Returns ``(instantiation, prior_refraction_state)`` so an abort
    terminator can restore the stamp the way the live rollback did.
    Parked (quarantined) instantiations are searched too — their
    stamps are as real as live ones.
    """
    from repro.durability.manager import fired_signature

    rule_name = entry["r"]
    wants_soi = bool(entry["s"])
    signature = entry["t"]
    candidates = engine.conflict_set.of_rule(rule_name)
    candidates.extend(engine.conflict_set.parked_of_rule(rule_name))
    for instantiation in candidates:
        if instantiation.is_set_oriented != wants_soi:
            continue
        if fired_signature(instantiation) == signature:
            prior = instantiation.refraction_state()
            instantiation.mark_fired()
            return instantiation, prior
    raise RecoveryError(
        f"fired instantiation of rule {rule_name!r} is not in the "
        f"recovered conflict set (tags {signature}); the log and the "
        f"rule base disagree"
    )
