"""Synthetic workloads for the benchmark suite.

Each generator is deterministic under its ``seed`` so benchmark rows
are reproducible.  The workload families mirror the paper's motivating
tasks:

* **team rosters** (Figures 1/2/4/5): ``player`` WMEs over teams, with
  a controllable duplicate rate for the RemoveDups experiments;
* **collection processing** (§7.1): the same update-every-element task
  written tuple-oriented (one firing per element, with the control/
  marking machinery the paper says set constructs eliminate) and
  set-oriented (one firing, ``set-modify``);
* **cardinality** (§4.2): acting when a collection reaches a size,
  written as count-by-iteration versus a direct ``(count ...)`` test;
* **join chains** (C1/C6): plain OPS5 multi-CE join rules for match
  cost and no-regression measurements.
"""

from __future__ import annotations

import random

FIRST_NAMES = (
    "Jack", "Janice", "Sue", "Mike", "Pat", "Alex", "Kim", "Lee",
    "Sam", "Ray", "Dana", "Chris", "Robin", "Terry", "Jo", "Max",
)


def team_roster(size, teams=("A", "B"), seed=7):
    """*size* (team, name) pairs spread over *teams*."""
    rng = random.Random(seed)
    roster = []
    for index in range(size):
        team = teams[index % len(teams)]
        name = f"{rng.choice(FIRST_NAMES)}-{index}"
        roster.append((team, name))
    return roster


def duplicate_roster(groups, group_size, seed=7):
    """*groups* distinct (name, team) pairs, each duplicated *group_size*×."""
    rng = random.Random(seed)
    roster = []
    for index in range(groups):
        team = "A" if index % 2 == 0 else "B"
        name = f"{rng.choice(FIRST_NAMES)}-{index}"
        roster.extend((team, name) for _ in range(group_size))
    return roster


# ---------------------------------------------------------------------------
# Collection processing: tuple-oriented vs set-oriented (§7.1, C2/C3)
# ---------------------------------------------------------------------------

#: Tuple-oriented unbounded iteration with its control WME: one firing
#: per element, each firing re-marking state, plus start/finish rules —
#: "unwieldy control mechanisms and marking schemes".
PROCESS_TUPLE_PROGRAM = """
(literalize item status value)
(literalize control phase)

(p start-processing
  (control ^phase start)
  -->
  (modify 1 ^phase run))

(p process-one
  (control ^phase run)
  (item ^status raw)
  -->
  (modify 2 ^status done))

(p finish-processing
  (control ^phase run)
  -(item ^status raw)
  -->
  (modify 1 ^phase finished))
"""

#: Set-oriented equivalent: the whole collection in one firing.
PROCESS_SET_PROGRAM = """
(literalize item status value)
(literalize control phase)

(p process-all
  (control ^phase start)
  { [item ^status raw] <Items> }
  -->
  (set-modify <Items> ^status done)
  (modify 1 ^phase finished))
"""


def process_tuple_program(engine, size):
    """Load the tuple-oriented processing task over *size* items."""
    engine.load(PROCESS_TUPLE_PROGRAM)
    for index in range(size):
        engine.make("item", status="raw", value=index)
    engine.make("control", phase="start")


def process_set_program(engine, size):
    """Load the set-oriented processing task over *size* items."""
    engine.load(PROCESS_SET_PROGRAM)
    for index in range(size):
        engine.make("item", status="raw", value=index)
    engine.make("control", phase="start")


# ---------------------------------------------------------------------------
# Cardinality: count-by-iteration vs direct aggregate match (§4.2, C4)
# ---------------------------------------------------------------------------

#: Tuple-oriented counting: cycle through the members maintaining a
#: counter WME, then test it — the paper's "it needs to cycle through
#: all the members of that set calculating the second order value".
CARDINALITY_TUPLE_PROGRAM = """
(literalize item counted value)
(literalize counter n)
(literalize verdict reached)

(p count-one
  (counter ^n <c>)
  (item ^counted no)
  -->
  (modify 2 ^counted yes)
  (modify 1 ^n (<c> + 1)))

(p check-threshold
  (counter ^n >= {threshold})
  -(verdict)
  -->
  (make verdict ^reached true))
"""

#: Set-oriented counting: the cardinality is matched directly and kept
#: current incrementally by the S-node.
CARDINALITY_SET_PROGRAM = """
(literalize item counted value)
(literalize verdict reached)

(p check-threshold
  {{ [item] <Items> }}
  -(verdict)
  :test ((count <Items>) >= {threshold})
  -->
  (make verdict ^reached true))
"""


def cardinality_tuple_program(engine, size, threshold=None):
    """Load the count-by-iteration task over *size* items."""
    threshold = size if threshold is None else threshold
    engine.load(CARDINALITY_TUPLE_PROGRAM.format(threshold=threshold))
    engine.make("counter", n=0)
    for index in range(size):
        engine.make("item", counted="no", value=index)


def cardinality_set_program(engine, size, threshold=None):
    """Load the direct-aggregate task over *size* items."""
    threshold = size if threshold is None else threshold
    engine.load(CARDINALITY_SET_PROGRAM.format(threshold=threshold))
    for index in range(size):
        engine.make("item", counted="no", value=index)


# ---------------------------------------------------------------------------
# Join chains: plain OPS5 rules for match-cost experiments (C1, C6)
# ---------------------------------------------------------------------------


def chain_program(rule_count=4, chain_length=3):
    """Plain OPS5 rules joining ``link`` WMEs into chains.

    Each rule matches a chain ``k0 -> k1 -> ... -> k_{chain_length-1}``
    of ``link`` elements within one lane, a classic join-heavy shape.
    """
    rules = []
    for rule_index in range(rule_count):
        ces = [f"(link ^lane {rule_index} ^src <x0> ^dst <x1>)"]
        for hop in range(1, chain_length):
            ces.append(
                f"(link ^lane {rule_index} ^src <x{hop}> ^dst <x{hop + 1}>)"
            )
        body = "\n  ".join(ces)
        rules.append(
            f"(p chain-{rule_index}\n  {body}\n  -->\n"
            f"  (write chain {rule_index} from <x0>))"
        )
    return "(literalize link lane src dst)\n" + "\n".join(rules)


def chain_events(wm, lanes=4, nodes=12, seed=7):
    """Populate ``link`` WMEs forming random edges within each lane."""
    rng = random.Random(seed)
    wmes = []
    for lane in range(lanes):
        for _ in range(nodes):
            src = rng.randrange(nodes)
            dst = rng.randrange(nodes)
            wmes.append(wm.make("link", lane=lane, src=src, dst=dst))
    return wmes
