"""Workload generators and reporting helpers for the experiment suite."""

from repro.bench.harness import format_table, print_table
from repro.bench.workloads import (
    cardinality_set_program,
    cardinality_tuple_program,
    chain_program,
    duplicate_roster,
    process_set_program,
    process_tuple_program,
    team_roster,
)

__all__ = [
    "cardinality_set_program",
    "cardinality_tuple_program",
    "chain_program",
    "duplicate_roster",
    "format_table",
    "print_table",
    "process_set_program",
    "process_tuple_program",
    "team_roster",
]
