"""Table formatting for benchmark output.

The benchmark modules print paper-style result tables with these
helpers so ``pytest benchmarks/ --benchmark-only -s`` reproduces the
rows recorded in EXPERIMENTS.md.
"""

from __future__ import annotations


def _render_cell(value):
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(title, headers, rows):
    """Render an aligned text table with a title rule."""
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append(
        "  ".join(
            header.ljust(width) for header, width in zip(headers, widths)
        )
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def print_table(title, headers, rows):
    """Print :func:`format_table` with surrounding blank lines."""
    print()
    print(format_table(title, headers, rows))
    print()
