"""Tokenizer for the OPS5/C5 rule language and its expression dialect.

Token kinds:

``LPAREN RPAREN``   ``(`` ``)``            regular CEs, actions, groups
``LBRACKET RBRACKET`` ``[`` ``]``          set-oriented CEs
``LBRACE RBRACE``   ``{`` ``}``            element bindings / conjunctions
``ARROW``           ``-->``                LHS/RHS separator
``ATTR``            ``^name``              attribute selector
``VAR``             ``<name>``             pattern variable
``PRED``            ``= <> < <= > >= <=>`` CE value predicates
``OP``              ``== != + - * / //``   infix expression operators
``LDISJ RDISJ``     ``<<`` ``>>``          value disjunctions
``CLAUSE``          ``:scalar :test``      LHS clause markers
``MINUS_LPAREN``    ``-(``                 negated CE opener
``NUMBER SYMBOL STRING``                   literals

The lexical overloading of ``<`` (predicate, variable opener, disjunction
opener) is resolved greedily: ``<ident>`` is a variable; ``<<`` ``<=>``
``<=`` ``<>`` are matched longest-first; a lone ``<`` is the predicate.
Comments run from ``;`` to end of line.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.symbols import coerce_literal

# Token kind constants.
LPAREN = "LPAREN"
RPAREN = "RPAREN"
LBRACKET = "LBRACKET"
RBRACKET = "RBRACKET"
LBRACE = "LBRACE"
RBRACE = "RBRACE"
ARROW = "ARROW"
ATTR = "ATTR"
VAR = "VAR"
PRED = "PRED"
OP = "OP"
LDISJ = "LDISJ"
RDISJ = "RDISJ"
CLAUSE = "CLAUSE"
MINUS_LPAREN = "MINUS_LPAREN"
NUMBER = "NUMBER"
SYMBOL = "SYMBOL"
STRING = "STRING"
EOF = "EOF"

_VAR_RE = re.compile(r"<([A-Za-z_][A-Za-z0-9_-]*)>")
_ATTR_RE = re.compile(r"\^([A-Za-z_][A-Za-z0-9_-]*)")
_CLAUSE_RE = re.compile(r":([A-Za-z][A-Za-z0-9_-]*)")
# A symbol/number atom: anything up to whitespace or a structural char.
_ATOM_RE = re.compile(r"[^\s()\[\]{};]+")
_NUMBER_RE = re.compile(r"[-+]?(\d+\.?\d*|\.\d+)([eE][-+]?\d+)?$")


class Token:
    """A single lexical token with its source position."""

    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind, value, line, column):
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


class Tokenizer:
    """Streaming tokenizer over a source string."""

    def __init__(self, source):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def _error(self, message):
        raise ParseError(message, line=self.line, column=self.column)

    def _advance(self, count):
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_whitespace_and_comments(self):
        while self.pos < len(self.source):
            char = self.source[self.pos]
            if char in " \t\r\n":
                self._advance(1)
            elif char == ";":
                while (
                    self.pos < len(self.source)
                    and self.source[self.pos] != "\n"
                ):
                    self._advance(1)
            else:
                return

    def _make(self, kind, value, length):
        token = Token(kind, value, self.line, self.column)
        self._advance(length)
        return token

    def _rest(self):
        return self.source[self.pos :]

    def next_token(self):
        """Scan and return the next token (``EOF`` at end of input)."""
        self._skip_whitespace_and_comments()
        if self.pos >= len(self.source):
            return Token(EOF, None, self.line, self.column)

        rest = self._rest()
        char = rest[0]

        if rest.startswith("-->"):
            return self._make(ARROW, "-->", 3)
        if rest.startswith("-("):
            return self._make(MINUS_LPAREN, "-(", 2)
        if char == "(":
            return self._make(LPAREN, "(", 1)
        if char == ")":
            return self._make(RPAREN, ")", 1)
        if char == "[":
            return self._make(LBRACKET, "[", 1)
        if char == "]":
            return self._make(RBRACKET, "]", 1)
        if char == "{":
            return self._make(LBRACE, "{", 1)
        if char == "}":
            return self._make(RBRACE, "}", 1)

        if char == "<":
            match = _VAR_RE.match(rest)
            if match:
                return self._make(VAR, match.group(1), match.end())
            if rest.startswith("<=>"):
                return self._make(PRED, "<=>", 3)
            if rest.startswith("<<"):
                return self._make(LDISJ, "<<", 2)
            if rest.startswith("<="):
                return self._make(PRED, "<=", 2)
            if rest.startswith("<>"):
                return self._make(PRED, "<>", 2)
            return self._make(PRED, "<", 1)

        if char == ">":
            if rest.startswith(">>"):
                return self._make(RDISJ, ">>", 2)
            if rest.startswith(">="):
                return self._make(PRED, ">=", 2)
            return self._make(PRED, ">", 1)

        if rest.startswith("=="):
            return self._make(OP, "==", 2)
        if rest.startswith("!="):
            return self._make(OP, "!=", 2)
        if char == "=":
            return self._make(PRED, "=", 1)

        if char == "^":
            match = _ATTR_RE.match(rest)
            if not match:
                self._error("'^' must be followed by an attribute name")
            return self._make(ATTR, match.group(1), match.end())

        if char == ":":
            match = _CLAUSE_RE.match(rest)
            if not match:
                self._error("':' must start a clause name like :scalar")
            return self._make(CLAUSE, match.group(1), match.end())

        if char == "|":
            end = rest.find("|", 1)
            if end < 0:
                self._error("unterminated |quoted symbol|")
            return self._make(STRING, rest[1:end], end + 1)
        if char == '"':
            end = rest.find('"', 1)
            if end < 0:
                self._error('unterminated "string"')
            return self._make(STRING, rest[1:end], end + 1)

        match = _ATOM_RE.match(rest)
        if not match:
            self._error(f"unexpected character {char!r}")
        text = match.group(0)
        # Arithmetic operators that stand alone become OP tokens; a '-42'
        # or '+' glued to digits is a number.
        if text in ("+", "-", "*", "/", "//", "mod"):
            return self._make(OP, text, len(text))
        value = coerce_literal(text)
        if isinstance(value, str):
            return self._make(SYMBOL, value, len(text))
        return self._make(NUMBER, value, len(text))


def tokenize(source):
    """Tokenize *source* fully, returning a list ending with an EOF token."""
    tokenizer = Tokenizer(source)
    tokens = []
    while True:
        token = tokenizer.next_token()
        tokens.append(token)
        if token.kind == EOF:
            return tokens
