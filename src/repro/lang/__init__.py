"""The rule language: OPS5 plus the paper's C5 set-oriented extensions.

The surface syntax follows Forgy's OPS5 with the extensions of Gordin &
Pasik (1991):

* ``[class ...]`` — set-oriented condition elements (square brackets);
* ``{ (ce) <Var> }`` / ``{ [ce] <Var> }`` — element variables binding a
  CE's match (a WME for a regular CE, the matched *set* for a
  set-oriented CE);
* ``:scalar (<v> ...)`` — force listed PVs to partition by value;
* ``:test (<expr>)`` — an aggregate test over the candidate SOI
  (``count``, ``min``, ``max``, ``sum``, ``avg``);
* RHS ``set-modify``, ``set-remove``, ``foreach`` (with
  ``ascending``/``descending`` order), ``if/else``, plus the classic
  ``make/remove/modify/write/bind/halt``.

Use :func:`parse_rule` / :func:`parse_program` for text, or
:mod:`repro.lang.builder` to assemble rules programmatically.
"""

from repro.lang.ast import (
    Aggregate,
    AttrTest,
    BinOp,
    BindAction,
    CallAction,
    Check,
    ConditionElement,
    Const,
    Disjunction,
    ForeachAction,
    HaltAction,
    IfAction,
    MakeAction,
    ModifyAction,
    RemoveAction,
    Rule,
    SetModifyAction,
    SetRemoveAction,
    UnaryOp,
    Var,
    WriteAction,
)
from repro.lang.parser import parse_expression, parse_program, parse_rule
from repro.lang.printer import format_rule
from repro.lang.builder import RuleBuilder, ce, set_ce

__all__ = [
    "Aggregate",
    "AttrTest",
    "BinOp",
    "BindAction",
    "CallAction",
    "Check",
    "ConditionElement",
    "Const",
    "Disjunction",
    "ForeachAction",
    "HaltAction",
    "IfAction",
    "MakeAction",
    "ModifyAction",
    "RemoveAction",
    "Rule",
    "RuleBuilder",
    "SetModifyAction",
    "SetRemoveAction",
    "UnaryOp",
    "Var",
    "WriteAction",
    "ce",
    "set_ce",
    "format_rule",
    "parse_expression",
    "parse_program",
    "parse_rule",
]
