"""Programmatic rule construction — an alternative to parsing source text.

Example, building the paper's Figure 5 ``SwitchTeams`` rule::

    rule = (
        RuleBuilder("SwitchTeams")
        .set_ce("player", team="A").bind("ATeam")
        .set_ce("player", team="B").bind("BTeam")
        .test("(count <ATeam>) == (count <BTeam>)")
        .set_modify("ATeam", team="B")
        .set_modify("BTeam", team="A")
        .build()
    )

Attribute keyword values map to AST checks: a plain value becomes an
``=`` constant check, a :func:`var` reference joins variables, and a
``(predicate, value)`` tuple applies another predicate.
"""

from __future__ import annotations

from repro import symbols
from repro.errors import RuleError
from repro.lang import ast
from repro.lang.parser import parse_expression


def var(name):
    """Reference a pattern variable by *name* (without angle brackets)."""
    return ast.Var(name)


def _check_from_value(value):
    if isinstance(value, ast.Var):
        return ast.Check("=", value)
    if isinstance(value, ast.Disjunction):
        return ast.Check("=", value)
    if isinstance(value, tuple) and len(value) == 2:
        predicate, operand = value
        if isinstance(operand, ast.Var):
            return ast.Check(predicate, operand)
        return ast.Check(predicate, ast.Const(operand))
    if symbols.is_value(value):
        return ast.Check("=", ast.Const(value))
    raise RuleError(f"cannot build a check from {value!r}")


def _tests_from_kwargs(attributes):
    tests = []
    for attribute, value in attributes.items():
        if isinstance(value, list):
            checks = [_check_from_value(item) for item in value]
        else:
            checks = [_check_from_value(value)]
        tests.append(ast.AttrTest(attribute, checks))
    return tests


def ce(wme_class, **attributes):
    """Build a regular condition element."""
    return ast.ConditionElement(wme_class, _tests_from_kwargs(attributes))


def set_ce(wme_class, **attributes):
    """Build a set-oriented condition element (``[...]``)."""
    return ast.ConditionElement(
        wme_class, _tests_from_kwargs(attributes), set_oriented=True
    )


def neg_ce(wme_class, **attributes):
    """Build a negated condition element (``-(...)``)."""
    return ast.ConditionElement(
        wme_class, _tests_from_kwargs(attributes), negated=True
    )


def _value_expr(value):
    if isinstance(value, ast.Expr):
        return value
    if isinstance(value, str) and value.startswith("("):
        return parse_expression(value)
    return ast.Const(value)


class RuleBuilder:
    """Fluent builder assembling a :class:`repro.lang.ast.Rule`."""

    def __init__(self, name):
        self._name = name
        self._ces = []
        self._scalar = []
        self._test = None
        self._actions = []

    # -- LHS ------------------------------------------------------------

    def ce(self, wme_class, **attributes):
        """Append a regular CE."""
        self._ces.append(ce(wme_class, **attributes))
        return self

    def set_ce(self, wme_class, **attributes):
        """Append a set-oriented CE."""
        self._ces.append(set_ce(wme_class, **attributes))
        return self

    def neg_ce(self, wme_class, **attributes):
        """Append a negated CE."""
        self._ces.append(neg_ce(wme_class, **attributes))
        return self

    def bind(self, element_var):
        """Attach an element variable to the most recent CE."""
        if not self._ces:
            raise RuleError("bind() must follow a condition element")
        last = self._ces[-1]
        self._ces[-1] = ast.ConditionElement(
            last.wme_class,
            last.tests,
            set_oriented=last.set_oriented,
            negated=last.negated,
            element_var=element_var,
        )
        return self

    def scalar(self, *names):
        """Add variables to the ``:scalar`` clause."""
        self._scalar.extend(names)
        return self

    def test(self, expression):
        """Set the ``:test`` clause (source text or an Expr node)."""
        if isinstance(expression, str):
            expression = parse_expression(expression)
        self._test = expression
        return self

    # -- RHS ------------------------------------------------------------

    def make(self, wme_class, **assignments):
        self._actions.append(
            ast.MakeAction(
                wme_class,
                [(a, _value_expr(v)) for a, v in assignments.items()],
            )
        )
        return self

    def remove(self, target):
        self._actions.append(ast.RemoveAction(target))
        return self

    def modify(self, target, **assignments):
        self._actions.append(
            ast.ModifyAction(
                target, [(a, _value_expr(v)) for a, v in assignments.items()]
            )
        )
        return self

    def write(self, *arguments):
        self._actions.append(
            ast.WriteAction([_value_expr(arg) for arg in arguments])
        )
        return self

    def bind_var(self, name, expression):
        self._actions.append(ast.BindAction(name, _value_expr(expression)))
        return self

    def halt(self):
        self._actions.append(ast.HaltAction())
        return self

    def set_modify(self, target, **assignments):
        self._actions.append(
            ast.SetModifyAction(
                target, [(a, _value_expr(v)) for a, v in assignments.items()]
            )
        )
        return self

    def set_remove(self, target):
        self._actions.append(ast.SetRemoveAction(target))
        return self

    def foreach(self, variable, *body, order="default"):
        """Append a foreach whose *body* actions come from a nested builder.

        *body* items are Action nodes; build them with a helper builder's
        :meth:`actions` or construct AST nodes directly.
        """
        self._actions.append(ast.ForeachAction(variable, body, order=order))
        return self

    def if_(self, condition, then_body, else_body=()):
        if isinstance(condition, str):
            condition = parse_expression(condition)
        self._actions.append(ast.IfAction(condition, then_body, else_body))
        return self

    def actions(self):
        """Return the actions built so far (for nesting into foreach/if)."""
        return tuple(self._actions)

    def build(self):
        """Validate and return the finished rule."""
        return ast.Rule(
            self._name,
            self._ces,
            self._actions,
            scalar_vars=self._scalar,
            test=self._test,
        )
