"""Pretty-printer: turn AST nodes back into C5 source text.

``parse_rule(format_rule(rule)) == rule`` is a property-tested invariant
(see ``tests/lang/test_roundtrip.py``).
"""

from __future__ import annotations

from repro import symbols
from repro.lang import ast


def _format_operand(operand):
    if isinstance(operand, ast.Var):
        return f"<{operand.name}>"
    if isinstance(operand, ast.Const):
        return _format_constant(operand.value)
    if isinstance(operand, ast.Disjunction):
        inner = " ".join(_format_constant(v) for v in operand.values)
        return f"<< {inner} >>"
    raise TypeError(f"cannot format operand {operand!r}")


def _format_constant(value):
    if symbols.is_number(value):
        return symbols.format_value(value)
    needs_quoting = any(c in value for c in " ()[]{};^<>") or value == ""
    if needs_quoting:
        return f"|{value}|"
    return value


def format_expression(expr):
    """Render an expression in the infix dialect used by ``:test``."""
    if isinstance(expr, ast.Const):
        return _format_constant(expr.value)
    if isinstance(expr, ast.Var):
        return f"<{expr.name}>"
    if isinstance(expr, ast.Aggregate):
        if expr.attribute is not None:
            return f"({expr.op} <{expr.target}> ^{expr.attribute})"
        return f"({expr.op} <{expr.target}>)"
    if isinstance(expr, ast.BinOp):
        left = format_expression(expr.left)
        right = format_expression(expr.right)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, ast.UnaryOp):
        operand = format_expression(expr.operand)
        if expr.op == "not":
            return f"(not {operand})"
        return f"(- {operand})"
    raise TypeError(f"cannot format expression {expr!r}")


def format_ce(ce):
    """Render one condition element (including binding/negation)."""
    parts = [ce.wme_class]
    for test in ce.tests:
        checks = []
        for check in test.checks:
            if check.predicate == "=":
                checks.append(_format_operand(check.operand))
            else:
                checks.append(
                    f"{check.predicate} {_format_operand(check.operand)}"
                )
        if len(test.checks) == 1:
            parts.append(f"^{test.attribute} {checks[0]}")
        else:
            parts.append(f"^{test.attribute} {{ {' '.join(checks)} }}")
    body = " ".join(parts)
    if ce.set_oriented:
        text = f"[{body}]"
    elif ce.negated:
        text = f"-({body})"
    else:
        text = f"({body})"
    if ce.element_var is not None:
        return f"{{ {text} <{ce.element_var}> }}"
    return text


def format_action(action, indent=""):
    """Render one RHS action (recursively for foreach/if)."""
    if isinstance(action, ast.MakeAction):
        return indent + _format_head_assignments(
            f"make {action.wme_class}", action.assignments
        )
    if isinstance(action, ast.RemoveAction):
        return f"{indent}(remove {_format_target(action.target)})"
    if isinstance(action, ast.ModifyAction):
        head = f"modify {_format_target(action.target)}"
        return indent + _format_head_assignments(head, action.assignments)
    if isinstance(action, ast.WriteAction):
        args = " ".join(_format_value(arg) for arg in action.arguments)
        return f"{indent}(write {args})".rstrip() + ("" if args else ")")
    if isinstance(action, ast.BindAction):
        return (
            f"{indent}(bind <{action.name}> "
            f"{_format_value(action.expression)})"
        )
    if isinstance(action, ast.HaltAction):
        return f"{indent}(halt)"
    if isinstance(action, ast.CallAction):
        args = " ".join(_format_value(arg) for arg in action.arguments)
        body = f"call {action.name} {args}".rstrip()
        return f"{indent}({body})"
    if isinstance(action, ast.SetModifyAction):
        head = f"set-modify <{action.target}>"
        return indent + _format_head_assignments(head, action.assignments)
    if isinstance(action, ast.SetRemoveAction):
        return f"{indent}(set-remove <{action.target}>)"
    if isinstance(action, ast.ForeachAction):
        order = "" if action.order == "default" else f" {action.order}"
        body = "\n".join(
            format_action(child, indent + "  ") for child in action.body
        )
        return f"{indent}(foreach <{action.variable}>{order}\n{body})"
    if isinstance(action, ast.IfAction):
        lines = [f"{indent}(if {format_expression(action.condition)}"]
        for child in action.then_body:
            lines.append(format_action(child, indent + "  "))
        if action.else_body:
            lines.append(f"{indent} else")
            for child in action.else_body:
                lines.append(format_action(child, indent + "  "))
        return "\n".join(lines) + ")"
    raise TypeError(f"cannot format action {action!r}")


def _format_target(target):
    if isinstance(target, int):
        return str(target)
    return f"<{target}>"


def _format_value(expr):
    """A value position: bare atoms stay bare, expressions get parens."""
    if isinstance(expr, (ast.Const, ast.Var)):
        return format_expression(expr)
    return format_expression(expr)


def _format_head_assignments(head, assignments):
    parts = [head]
    for attribute, expression in assignments:
        parts.append(f"^{attribute} {_format_value(expression)}")
    return f"({' '.join(parts)})"


def format_rule(rule):
    """Render a complete rule as parseable C5 source."""
    lines = [f"(p {rule.name}"]
    for ce in rule.ces:
        lines.append(f"  {format_ce(ce)}")
    if rule.scalar_vars:
        names = " ".join(f"<{name}>" for name in rule.scalar_vars)
        lines.append(f"  :scalar ({names})")
    if rule.test is not None:
        lines.append(f"  :test ({format_expression(rule.test)})")
    lines.append("  -->")
    for action in rule.actions:
        lines.append(format_action(action, "  "))
    return "\n".join(lines) + ")"
