"""Abstract syntax for rules, condition elements, tests, and RHS actions.

The AST is deliberately plain: small classes with ``__slots__``, value
equality, and informative reprs.  The Rete compiler
(:mod:`repro.rete.network`), the RHS executor (:mod:`repro.engine.rhs`),
and the DIPS compiler (:mod:`repro.dips`) all consume these nodes.

Terminology (paper section 4):

* a *condition element* (CE) matches WMEs of one class; a CE written
  with square brackets is **set-oriented**;
* a *pattern variable* (PV) such as ``<n>`` is set-oriented when it
  occurs only in set-oriented CEs and is not listed in ``:scalar``;
* an *element variable* binds a whole CE match
  (``{ (player ...) <P> }``): a single WME for a regular CE, the matched
  WME set for a set-oriented CE.
"""

from __future__ import annotations

from repro import symbols
from repro.errors import RuleError

#: Aggregate operators accepted on the LHS/RHS (paper section 4.2).
AGGREGATE_OPS = ("count", "min", "max", "sum", "avg")

#: Orders accepted by ``foreach`` (paper section 6).
FOREACH_ORDERS = ("default", "ascending", "descending")


class _Node:
    """Shared value-equality plumbing for AST nodes."""

    __slots__ = ()

    def _fields(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __eq__(self, other):
        if type(other) is not type(self):
            return NotImplemented
        return self._fields() == other._fields()

    def __hash__(self):
        return hash((type(self).__name__,) + self._fields())

    def __repr__(self):
        inner = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self.__slots__
        )
        return f"{type(self).__name__}({inner})"


# ---------------------------------------------------------------------------
# Expressions (used in :test clauses, RHS value positions, if conditions)
# ---------------------------------------------------------------------------


class Expr(_Node):
    """Base class for expression nodes."""

    __slots__ = ()


class Const(Expr):
    """A literal symbol or number."""

    __slots__ = ("value",)

    def __init__(self, value):
        if not symbols.is_value(value):
            raise RuleError(f"constant must be a symbol or number: {value!r}")
        self.value = value


class Var(Expr):
    """A reference to a pattern variable or element variable, ``<name>``."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name


class Aggregate(Expr):
    """An aggregate over a set-oriented variable, e.g. ``(count <P>)``.

    ``op`` is one of :data:`AGGREGATE_OPS`; ``target`` names either a
    set-oriented PV (aggregate over its value domain) or a set-oriented
    CE's element variable (aggregate over the matched WME set, meaningful
    for ``count``; for the numeric aggregates over an element variable a
    paired attribute is required, supplied as ``attribute``).
    """

    __slots__ = ("op", "target", "attribute")

    def __init__(self, op, target, attribute=None):
        if op not in AGGREGATE_OPS:
            raise RuleError(
                f"unknown aggregate {op!r}; expected one of "
                f"{', '.join(AGGREGATE_OPS)}"
            )
        self.op = op
        self.target = target
        self.attribute = attribute


class BinOp(Expr):
    """An infix binary operation.

    Comparison ops: ``== != < <= > >=``; arithmetic: ``+ - * / // mod``;
    boolean: ``and or``.
    """

    __slots__ = ("op", "left", "right")

    COMPARISONS = ("==", "!=", "<", "<=", ">", ">=")
    ARITHMETIC = ("+", "-", "*", "/", "//", "mod")
    BOOLEAN = ("and", "or")

    def __init__(self, op, left, right):
        if op not in self.COMPARISONS + self.ARITHMETIC + self.BOOLEAN:
            raise RuleError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right


class UnaryOp(Expr):
    """``not`` or numeric negation."""

    __slots__ = ("op", "operand")

    def __init__(self, op, operand):
        if op not in ("not", "-"):
            raise RuleError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand


# ---------------------------------------------------------------------------
# LHS: value checks, attribute tests, condition elements
# ---------------------------------------------------------------------------


class Disjunction(_Node):
    """A ``<< a b c >>`` disjunction of constant values."""

    __slots__ = ("values",)

    def __init__(self, values):
        self.values = tuple(values)


class Check(_Node):
    """One predicate applied to an attribute's value.

    ``operand`` is a :class:`Const`, :class:`Var`, or
    :class:`Disjunction` (the latter only with predicate ``=``).
    """

    __slots__ = ("predicate", "operand")

    def __init__(self, predicate, operand):
        if predicate not in symbols.PREDICATES:
            raise RuleError(f"unknown predicate {predicate!r}")
        if isinstance(operand, Disjunction) and predicate != "=":
            raise RuleError("a << >> disjunction only combines with '='")
        self.predicate = predicate
        self.operand = operand

    @property
    def is_constant(self):
        """True when this check needs no variable bindings to evaluate."""
        return isinstance(self.operand, (Const, Disjunction))


class AttrTest(_Node):
    """All checks a CE applies to one attribute (conjunction)."""

    __slots__ = ("attribute", "checks")

    def __init__(self, attribute, checks):
        self.attribute = attribute
        self.checks = tuple(checks)


class ConditionElement(_Node):
    """One LHS condition element.

    ``set_oriented`` distinguishes ``[...]`` from ``(...)``;
    ``negated`` marks ``-(...)`` absence tests (negated set-oriented CEs
    are rejected — a negation already quantifies over all matches);
    ``element_var`` holds the name bound by ``{ ce <Var> }``, or None.
    """

    __slots__ = ("wme_class", "tests", "set_oriented", "negated", "element_var")

    def __init__(self, wme_class, tests, set_oriented=False, negated=False,
                 element_var=None):
        if negated and set_oriented:
            raise RuleError(
                "a negated CE cannot be set-oriented: negation already "
                "quantifies over every match"
            )
        if negated and element_var is not None:
            raise RuleError("a negated CE cannot bind an element variable")
        self.wme_class = wme_class
        self.tests = tuple(tests)
        self.set_oriented = set_oriented
        self.negated = negated
        self.element_var = element_var

    def variables(self):
        """Names of pattern variables this CE mentions, in order."""
        names = []
        for test in self.tests:
            for check in test.checks:
                if isinstance(check.operand, Var):
                    if check.operand.name not in names:
                        names.append(check.operand.name)
        return names

    def attribute_of_variable(self, name):
        """The first attribute bound to PV *name* by an ``=`` check, or None."""
        for test in self.tests:
            for check in test.checks:
                if (
                    check.predicate == "="
                    and isinstance(check.operand, Var)
                    and check.operand.name == name
                ):
                    return test.attribute
        return None

    def constant_tests(self):
        """(attribute, check) pairs evaluable without bindings."""
        pairs = []
        for test in self.tests:
            for check in test.checks:
                if check.is_constant:
                    pairs.append((test.attribute, check))
        return pairs

    def variable_tests(self):
        """(attribute, check) pairs that reference pattern variables."""
        pairs = []
        for test in self.tests:
            for check in test.checks:
                if not check.is_constant:
                    pairs.append((test.attribute, check))
        return pairs


# ---------------------------------------------------------------------------
# RHS actions
# ---------------------------------------------------------------------------


class Action(_Node):
    """Base class for RHS actions."""

    __slots__ = ()


class MakeAction(Action):
    """``(make class ^attr expr ...)``."""

    __slots__ = ("wme_class", "assignments")

    def __init__(self, wme_class, assignments):
        self.wme_class = wme_class
        self.assignments = tuple(assignments)


class RemoveAction(Action):
    """``(remove target)`` — target is a CE ordinal (1-based) or element var."""

    __slots__ = ("target",)

    def __init__(self, target):
        self.target = target


class ModifyAction(Action):
    """``(modify target ^attr expr ...)``."""

    __slots__ = ("target", "assignments")

    def __init__(self, target, assignments):
        self.target = target
        self.assignments = tuple(assignments)


class WriteAction(Action):
    """``(write expr ...)`` — collects rendered values onto the trace."""

    __slots__ = ("arguments",)

    def __init__(self, arguments):
        self.arguments = tuple(arguments)


class BindAction(Action):
    """``(bind <var> expr)`` — RHS-local variable binding."""

    __slots__ = ("name", "expression")

    def __init__(self, name, expression):
        self.name = name
        self.expression = expression


class HaltAction(Action):
    """``(halt)`` — stop the recognize-act cycle after this firing."""

    __slots__ = ()


class CallAction(Action):
    """``(call name expr ...)`` — invoke a registered host function.

    OPS5's external-routine escape hatch: the engine maps *name* to a
    Python callable (see :meth:`repro.engine.engine.RuleEngine.
    register_function`); evaluated arguments are passed positionally.
    """

    __slots__ = ("name", "arguments")

    def __init__(self, name, arguments):
        self.name = name
        self.arguments = tuple(arguments)


class SetModifyAction(Action):
    """``(set-modify <ElemVar> ^attr expr ...)`` — modify every member WME.

    The paper's section 6: applies one modification uniformly to the
    entire matched set bound to a set-oriented CE's element variable
    (narrowed to the current subinstantiation inside ``foreach``).
    """

    __slots__ = ("target", "assignments")

    def __init__(self, target, assignments):
        self.target = target
        self.assignments = tuple(assignments)


class SetRemoveAction(Action):
    """``(set-remove <ElemVar>)`` — remove every member WME of the set."""

    __slots__ = ("target",)

    def __init__(self, target):
        self.target = target


class ForeachAction(Action):
    """``(foreach <var> [ascending|descending] action ...)``.

    Iterates the distinct values of a set-oriented PV (value grouping) or
    the member WMEs of a set-oriented CE's element variable (per time
    tag), narrowing the subinstantiation compositionally (paper §6.1/6.2).
    ``default`` order follows conflict-set ordering of the would-be
    separate instantiations.
    """

    __slots__ = ("variable", "order", "body")

    def __init__(self, variable, body, order="default"):
        if order not in FOREACH_ORDERS:
            raise RuleError(
                f"foreach order must be one of {FOREACH_ORDERS}, got {order!r}"
            )
        self.variable = variable
        self.order = order
        self.body = tuple(body)


class IfAction(Action):
    """``(if (cond) action... else action...)`` — C5-style RHS conditional."""

    __slots__ = ("condition", "then_body", "else_body")

    def __init__(self, condition, then_body, else_body=()):
        self.condition = condition
        self.then_body = tuple(then_body)
        self.else_body = tuple(else_body)


# ---------------------------------------------------------------------------
# The rule
# ---------------------------------------------------------------------------


class Rule(_Node):
    """A production: name, LHS CEs, scalar clause, test clause, RHS actions."""

    __slots__ = ("name", "ces", "scalar_vars", "test", "actions")

    def __init__(self, name, ces, actions, scalar_vars=(), test=None):
        if not ces:
            raise RuleError(f"rule {name}: LHS must have at least one CE")
        positives = [ce for ce in ces if not ce.negated]
        if not positives:
            raise RuleError(
                f"rule {name}: LHS needs at least one non-negated CE"
            )
        self.name = name
        self.ces = tuple(ces)
        self.actions = tuple(actions)
        self.scalar_vars = tuple(scalar_vars)
        self.test = test
        self._validate()

    # -- derived structure ------------------------------------------------

    @property
    def is_set_oriented(self):
        """True when any CE is set-oriented (the rule compiles to an S-node)."""
        return any(ce.set_oriented for ce in self.ces)

    def positive_ces(self):
        """The non-negated CEs, in LHS order."""
        return [ce for ce in self.ces if not ce.negated]

    def set_ces(self):
        return [ce for ce in self.ces if ce.set_oriented]

    def regular_ces(self):
        return [ce for ce in self.ces if not ce.set_oriented and not ce.negated]

    def variable_occurrences(self):
        """Map PV name -> list of (ce_index, set_oriented) occurrences."""
        occurrences = {}
        for index, ce in enumerate(self.ces):
            for name in ce.variables():
                occurrences.setdefault(name, []).append(
                    (index, ce.set_oriented)
                )
        return occurrences

    def set_variables(self):
        """PVs that are set-oriented under the paper's section 4.1 rules.

        A PV is set-oriented iff it occurs *only* in set-oriented CEs and
        is not named in the ``:scalar`` clause.  Occurring in any regular
        (or negated) CE forces a scalar binding.
        """
        result = []
        for name, occs in self.variable_occurrences().items():
            if name in self.scalar_vars:
                continue
            if all(is_set for _, is_set in occs):
                result.append(name)
        return result

    def scalar_variables(self):
        """PVs with scalar bindings (regular-CE occurrences or :scalar)."""
        return [
            name
            for name in self.variable_occurrences()
            if name not in self.set_variables()
        ]

    def element_vars(self):
        """Map element-variable name -> CE index."""
        return {
            ce.element_var: index
            for index, ce in enumerate(self.ces)
            if ce.element_var is not None
        }

    def specificity(self):
        """LEX specificity: number of attribute checks + class tests."""
        total = 0
        for ce in self.ces:
            total += 1  # the class test
            for test in ce.tests:
                total += len(test.checks)
        return total

    # -- validation ---------------------------------------------------------

    def _validate(self):
        occurrences = self.variable_occurrences()
        element_vars = self.element_vars()
        for name in self.scalar_vars:
            if name not in occurrences:
                raise RuleError(
                    f"rule {self.name}: :scalar names unknown variable "
                    f"<{name}>"
                )
            if not all(is_set for _, is_set in occurrences[name]):
                # :scalar on an already-scalar PV is redundant but harmless;
                # OPS5 tradition tolerates it, we do too.
                pass
        overlap = set(occurrences) & set(element_vars)
        if overlap:
            raise RuleError(
                f"rule {self.name}: name(s) {sorted(overlap)} used both as "
                f"pattern variable and element variable"
            )
        if self.test is not None and not self.is_set_oriented:
            raise RuleError(
                f"rule {self.name}: :test requires at least one "
                f"set-oriented CE"
            )
        self._validate_test_targets(element_vars)

    def _validate_test_targets(self, element_vars):
        if self.test is None:
            return
        set_vars = set(self.set_variables())
        set_elem_vars = {
            name
            for name, index in element_vars.items()
            if self.ces[index].set_oriented
        }
        for aggregate in walk_aggregates(self.test):
            target = aggregate.target
            if target in set_vars or target in set_elem_vars:
                continue
            raise RuleError(
                f"rule {self.name}: aggregate ({aggregate.op} <{target}>) "
                f"must target a set-oriented variable"
            )


def walk_expr(expr):
    """Yield *expr* and every sub-expression, depth first."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)


def walk_aggregates(expr):
    """Yield every :class:`Aggregate` node inside *expr*."""
    for node in walk_expr(expr):
        if isinstance(node, Aggregate):
            yield node


def walk_actions(actions):
    """Yield every action in *actions*, descending into foreach/if bodies."""
    for action in actions:
        yield action
        if isinstance(action, ForeachAction):
            yield from walk_actions(action.body)
        elif isinstance(action, IfAction):
            yield from walk_actions(action.then_body)
            yield from walk_actions(action.else_body)
