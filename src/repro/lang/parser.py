"""Recursive-descent parser for the OPS5/C5 rule language.

Entry points:

* :func:`parse_program` — a whole source string of ``literalize``
  declarations and ``(p ...)`` rules;
* :func:`parse_rule` — a single rule;
* :func:`parse_expression` — an infix test expression (as found inside
  ``:test (...)`` and RHS ``if`` conditions).

The ``-->`` LHS/RHS separator is accepted but optional: the paper's own
examples omit it, so when absent the first top-level form whose head is
a known action keyword starts the RHS.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang import ast
from repro.lang import tokens as tk

#: Form heads that unambiguously start the RHS when ``-->`` is omitted.
ACTION_HEADS = (
    "make",
    "remove",
    "modify",
    "write",
    "bind",
    "halt",
    "set-modify",
    "set-remove",
    "foreach",
    "if",
    "call",
)


class _Parser:
    """Cursor over a token list with the usual expect/accept helpers."""

    def __init__(self, source):
        self._tokens = tk.tokenize(source)
        self._pos = 0

    # -- cursor helpers -------------------------------------------------

    def peek(self, offset=0):
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self):
        token = self._tokens[self._pos]
        if token.kind != tk.EOF:
            self._pos += 1
        return token

    def check(self, kind, value=None):
        token = self.peek()
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def accept(self, kind, value=None):
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind, value=None, what=None):
        token = self.peek()
        if not self.check(kind, value):
            wanted = what or value or kind
            raise ParseError(
                f"expected {wanted}, found {token.value!r}",
                line=token.line,
                column=token.column,
            )
        return self.advance()

    def error(self, message):
        token = self.peek()
        raise ParseError(message, line=token.line, column=token.column)

    @property
    def at_eof(self):
        return self.peek().kind == tk.EOF

    # -- program / declarations ------------------------------------------

    def parse_program(self):
        """Parse declarations and rules until EOF.

        Returns ``(literalizations, rules)`` where literalizations is a
        list of ``(class, attributes)`` pairs.
        """
        literalizations = []
        rules = []
        while not self.at_eof:
            self.expect(tk.LPAREN, what="'('")
            head = self.expect(tk.SYMBOL, what="'literalize' or 'p'")
            if head.value == "literalize":
                literalizations.append(self._parse_literalize_body())
            elif head.value == "p":
                rules.append(self._parse_rule_body())
            else:
                self.error(
                    f"expected 'literalize' or 'p' at top level, "
                    f"found {head.value!r}"
                )
        return literalizations, rules

    def _parse_literalize_body(self):
        name = self.expect(tk.SYMBOL, what="class name").value
        attributes = []
        while not self.check(tk.RPAREN):
            attributes.append(
                self.expect(tk.SYMBOL, what="attribute name").value
            )
        self.expect(tk.RPAREN)
        return name, attributes

    # -- rules -------------------------------------------------------------

    def parse_rule(self):
        """Parse exactly one ``(p name ...)`` form."""
        self.expect(tk.LPAREN, what="'('")
        self.expect(tk.SYMBOL, "p", what="'p'")
        rule = self._parse_rule_body()
        if not self.at_eof:
            self.error("trailing input after rule")
        return rule

    def _parse_rule_body(self):
        name = self.expect(tk.SYMBOL, what="rule name").value
        ces = []
        scalar_vars = []
        test = None
        saw_arrow = False

        while True:
            if self.accept(tk.ARROW):
                saw_arrow = True
                break
            if self.check(tk.CLAUSE):
                clause = self.advance()
                if clause.value == "scalar":
                    scalar_vars.extend(self._parse_scalar_clause())
                elif clause.value == "test":
                    if test is not None:
                        self.error("a rule may have only one :test clause")
                    test = self._parse_test_clause()
                else:
                    self.error(f"unknown clause :{clause.value}")
                continue
            if self._at_action_form():
                break
            if self.check(tk.RPAREN):
                break
            ces.append(self._parse_condition_element())

        actions = []
        while not self.check(tk.RPAREN):
            if self.at_eof:
                self.error("unterminated rule")
            actions.extend(self._parse_action())
        self.expect(tk.RPAREN)

        if not actions and not saw_arrow:
            # A rule with no actions is legal-but-odd; keep it.
            pass
        return ast.Rule(
            name, ces, actions, scalar_vars=scalar_vars, test=test
        )

    def _at_action_form(self):
        """True when the cursor sits on a top-level action form."""
        if not self.check(tk.LPAREN):
            return False
        head = self.peek(1)
        return head.kind == tk.SYMBOL and head.value in ACTION_HEADS

    def _parse_scalar_clause(self):
        self.expect(tk.LPAREN, what="'(' after :scalar")
        names = []
        while not self.check(tk.RPAREN):
            names.append(self.expect(tk.VAR, what="a <variable>").value)
        self.expect(tk.RPAREN)
        return names

    def _parse_test_clause(self):
        self.expect(tk.LPAREN, what="'(' after :test")
        expression = self._parse_expression()
        self.expect(tk.RPAREN)
        return expression

    # -- condition elements --------------------------------------------------

    def _parse_condition_element(self):
        if self.check(tk.LBRACE):
            return self._parse_bound_ce()
        if self.accept(tk.MINUS_LPAREN):
            return self._parse_ce_tail(
                tk.RPAREN, set_oriented=False, negated=True
            )
        if self.accept(tk.LBRACKET):
            return self._parse_ce_tail(tk.RBRACKET, set_oriented=True)
        if self.accept(tk.LPAREN):
            return self._parse_ce_tail(tk.RPAREN, set_oriented=False)
        self.error("expected a condition element")

    def _parse_bound_ce(self):
        """``{ <ce> <Var> }`` or ``{ <Var> <ce> }``."""
        self.expect(tk.LBRACE)
        element_var = None
        if self.check(tk.VAR):
            element_var = self.advance().value
        inner = self._parse_condition_element()
        if element_var is None:
            element_var = self.expect(
                tk.VAR, what="an element <variable>"
            ).value
        self.expect(tk.RBRACE, what="'}'")
        return ast.ConditionElement(
            inner.wme_class,
            inner.tests,
            set_oriented=inner.set_oriented,
            negated=inner.negated,
            element_var=element_var,
        )

    def _parse_ce_tail(self, closer, set_oriented, negated=False):
        wme_class = self.expect(tk.SYMBOL, what="a WME class name").value
        tests = []
        while not self.check(closer):
            attr = self.expect(tk.ATTR, what="'^attribute'").value
            checks = self._parse_value_spec()
            tests.append(ast.AttrTest(attr, checks))
        self.expect(closer)
        return ast.ConditionElement(
            wme_class, tests, set_oriented=set_oriented, negated=negated
        )

    def _parse_value_spec(self):
        """The value position after ``^attr``: one check or ``{ check+ }``."""
        if self.accept(tk.LBRACE):
            checks = []
            while not self.check(tk.RBRACE):
                checks.append(self._parse_check())
            self.expect(tk.RBRACE)
            if not checks:
                self.error("empty { } conjunction")
            return checks
        return [self._parse_check()]

    def _parse_check(self):
        predicate = "="
        if self.check(tk.PRED):
            predicate = self.advance().value
        if self.accept(tk.LDISJ):
            values = []
            while not self.check(tk.RDISJ):
                token = self.peek()
                if token.kind in (tk.SYMBOL, tk.NUMBER, tk.STRING):
                    values.append(self.advance().value)
                else:
                    self.error("only constants may appear inside << >>")
            self.expect(tk.RDISJ)
            return ast.Check("=", ast.Disjunction(values))
        token = self.peek()
        if token.kind == tk.VAR:
            self.advance()
            return ast.Check(predicate, ast.Var(token.value))
        if token.kind in (tk.SYMBOL, tk.NUMBER, tk.STRING):
            self.advance()
            return ast.Check(predicate, ast.Const(token.value))
        self.error("expected a value, <variable>, or << >> disjunction")

    # -- RHS actions -----------------------------------------------------------

    def _parse_action(self):
        """Parse one action form; returns a *list* (remove expands)."""
        self.expect(tk.LPAREN, what="'(' starting an action")
        head = self.expect(tk.SYMBOL, what="an action keyword").value
        if head == "make":
            result = [self._parse_make()]
        elif head == "remove":
            result = self._parse_remove()
        elif head == "modify":
            result = [self._parse_modify()]
        elif head == "write":
            result = [self._parse_write()]
        elif head == "bind":
            result = [self._parse_bind()]
        elif head == "halt":
            result = [ast.HaltAction()]
        elif head == "call":
            result = [self._parse_call()]
        elif head == "set-modify":
            result = [self._parse_set_modify()]
        elif head == "set-remove":
            result = self._parse_set_remove()
        elif head == "foreach":
            result = [self._parse_foreach()]
        elif head == "if":
            result = [self._parse_if()]
        else:
            self.error(f"unknown action {head!r}")
        self.expect(tk.RPAREN, what="')' closing the action")
        return result

    def _parse_assignments(self):
        assignments = []
        while self.check(tk.ATTR):
            attr = self.advance().value
            assignments.append((attr, self._parse_value_expr()))
        return assignments

    def _parse_make(self):
        wme_class = self.expect(tk.SYMBOL, what="a WME class name").value
        return ast.MakeAction(wme_class, self._parse_assignments())

    def _parse_remove(self):
        targets = []
        while not self.check(tk.RPAREN):
            targets.append(self._parse_target())
        if not targets:
            self.error("remove needs at least one target")
        return [ast.RemoveAction(target) for target in targets]

    def _parse_modify(self):
        target = self._parse_target()
        return ast.ModifyAction(target, self._parse_assignments())

    def _parse_target(self):
        token = self.peek()
        if token.kind == tk.NUMBER and isinstance(token.value, int):
            self.advance()
            return token.value
        if token.kind == tk.VAR:
            self.advance()
            return token.value
        self.error("expected a CE number or element <variable>")

    def _parse_write(self):
        arguments = []
        while not self.check(tk.RPAREN):
            # OPS5's (crlf) newline marker inside write.
            if self.check(tk.LPAREN) and self.peek(1).value == "crlf":
                self.advance()
                self.advance()
                self.expect(tk.RPAREN)
                arguments.append(ast.Const("\n"))
                continue
            arguments.append(self._parse_value_expr())
        return ast.WriteAction(arguments)

    def _parse_bind(self):
        name = self.expect(tk.VAR, what="a <variable> to bind").value
        expression = self._parse_value_expr()
        return ast.BindAction(name, expression)

    def _parse_call(self):
        name = self.expect(tk.SYMBOL, what="a function name").value
        arguments = []
        while not self.check(tk.RPAREN):
            arguments.append(self._parse_value_expr())
        return ast.CallAction(name, arguments)

    def _parse_set_modify(self):
        target = self.expect(tk.VAR, what="a set element <variable>").value
        return ast.SetModifyAction(target, self._parse_assignments())

    def _parse_set_remove(self):
        targets = []
        while self.check(tk.VAR):
            targets.append(self.advance().value)
        if not targets:
            self.error("set-remove needs at least one element <variable>")
        return [ast.SetRemoveAction(target) for target in targets]

    def _parse_foreach(self):
        variable = self.expect(tk.VAR, what="an iterator <variable>").value
        order = "default"
        if self.check(tk.SYMBOL, "ascending") or self.check(
            tk.SYMBOL, "descending"
        ):
            order = self.advance().value
        body = []
        while not self.check(tk.RPAREN):
            body.extend(self._parse_action())
        return ast.ForeachAction(variable, body, order=order)

    def _parse_if(self):
        self.expect(tk.LPAREN, what="'(' opening the if condition")
        condition = self._parse_expression()
        self.expect(tk.RPAREN, what="')' closing the if condition")
        then_body = []
        else_body = []
        target = then_body
        while not self.check(tk.RPAREN):
            if self.accept(tk.SYMBOL, "else"):
                if target is else_body:
                    self.error("duplicate else in if action")
                target = else_body
                continue
            target.extend(self._parse_action())
        return ast.IfAction(condition, then_body, else_body)

    # -- expressions --------------------------------------------------------

    def _parse_value_expr(self):
        """A value position on the RHS: literal, variable, or (expr)."""
        token = self.peek()
        if token.kind == tk.VAR:
            self.advance()
            return ast.Var(token.value)
        if token.kind in (tk.SYMBOL, tk.NUMBER, tk.STRING):
            self.advance()
            return ast.Const(token.value)
        if token.kind == tk.LPAREN:
            self.advance()
            expression = self._parse_paren_expr_body()
            self.expect(tk.RPAREN)
            return expression
        self.error("expected a value, <variable>, or (expression)")

    def _parse_paren_expr_body(self):
        """Contents of a parenthesized expression: aggregate call or infix."""
        head = self.peek()
        if head.kind == tk.SYMBOL and head.value == "compute":
            # OPS5 compatibility: (compute <x> + 1) is plain arithmetic.
            self.advance()
            return self._parse_expression()
        if (
            head.kind == tk.SYMBOL
            and head.value in ast.AGGREGATE_OPS
            and self.peek(1).kind == tk.VAR
        ):
            self.advance()
            target = self.advance().value
            attribute = None
            if self.check(tk.ATTR):
                attribute = self.advance().value
            return ast.Aggregate(head.value, target, attribute)
        return self._parse_expression()

    def _parse_expression(self):
        return self._parse_or()

    def _parse_or(self):
        left = self._parse_and()
        while self.accept(tk.SYMBOL, "or"):
            left = ast.BinOp("or", left, self._parse_and())
        return left

    def _parse_and(self):
        left = self._parse_not()
        while self.accept(tk.SYMBOL, "and"):
            left = ast.BinOp("and", left, self._parse_not())
        return left

    def _parse_not(self):
        if self.accept(tk.SYMBOL, "not"):
            return ast.UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    _COMPARISON_MAP = {
        "==": "==",
        "!=": "!=",
        "<>": "!=",
        "<": "<",
        "<=": "<=",
        ">": ">",
        ">=": ">=",
        "=": "==",
    }

    def _parse_comparison(self):
        left = self._parse_additive()
        token = self.peek()
        if token.kind == tk.OP and token.value in ("==", "!="):
            self.advance()
            return ast.BinOp(token.value, left, self._parse_additive())
        if token.kind == tk.PRED and token.value in self._COMPARISON_MAP:
            self.advance()
            op = self._COMPARISON_MAP[token.value]
            return ast.BinOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while self.check(tk.OP, "+") or self.check(tk.OP, "-"):
            op = self.advance().value
            left = ast.BinOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self):
        left = self._parse_unary()
        while (
            self.check(tk.OP, "*")
            or self.check(tk.OP, "/")
            or self.check(tk.OP, "//")
            or self.check(tk.OP, "mod")
        ):
            op = self.advance().value
            left = ast.BinOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self):
        if self.accept(tk.OP, "-"):
            return ast.UnaryOp("-", self._parse_unary())
        return self._parse_atom()

    def _parse_atom(self):
        token = self.peek()
        if token.kind == tk.VAR:
            self.advance()
            return ast.Var(token.value)
        if token.kind in (tk.NUMBER, tk.STRING):
            self.advance()
            return ast.Const(token.value)
        if token.kind == tk.SYMBOL:
            self.advance()
            return ast.Const(token.value)
        if token.kind == tk.LPAREN:
            self.advance()
            inner = self._parse_paren_expr_body()
            self.expect(tk.RPAREN)
            return inner
        self.error("expected an expression atom")


def parse_program(source):
    """Parse a full program; returns ``(literalizations, rules)``."""
    return _Parser(source).parse_program()


def parse_rule(source):
    """Parse a single ``(p ...)`` rule from *source*."""
    return _Parser(source).parse_rule()


def parse_expression(source):
    """Parse a bare infix expression (for tests and tooling)."""
    parser = _Parser(source)
    expression = parser._parse_expression()
    if not parser.at_eof:
        parser.error("trailing input after expression")
    return expression
