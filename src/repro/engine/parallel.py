"""Parallel execution: the firing pool, plus the §1 cost model.

"A parallel architecture could perform an operation on the members of a
set in parallel.  Furthermore, research has shown that a limiting
factor for parallelization of the Rete network is the number of
operations done per rule firing [Gupta 1984, Miranker 1986, Pasik
1989].  The number of actions in a set-oriented rule should be
substantially greater, providing the ability to increase parallelism."

Two layers live here:

* **The cost model** — :func:`firing_latency` / :func:`run_latency` /
  :func:`speedup` turn a firing trace into schedule lengths on
  ``workers`` parallel units.  Costs follow the real executor: a make
  is one independent unit, a remove is one unit chained on its element,
  and a modify is remove+insert of the same element — a two-unit chain
  link (``UNIT_COST``).  Actions touching one logical element form a
  chain keyed by the element's *chain root* tag (a modify re-tags, so
  the tracer maps replacement tags back — see
  :meth:`~repro.engine.tracing.FiringRecord.touch`).
  :func:`measured_schedule` is an event-driven greedy scheduler over
  the same chains; the property suite checks the closed form against
  it on traced runs.

* **The firing pool** — :func:`execute_cycle` implements
  ``RuleEngine.parallel_cycle`` (the DIPS §8.1 model, actually
  concurrent).  The cycle's eligible instantiations are snapshotted,
  every member's RHS is *speculated* concurrently on a thread pool
  against a sandbox (no working-memory mutation, no WAL traffic), and
  the recorded action plans are then committed **serially in
  conflict-resolution order** through the ordinary atomic-firing
  transaction.  Commit order — and with it time tags, WAL record
  order, tracer contents, and conflict accounting — is therefore
  bit-identical to the sequential simulation; the pool only moves the
  RHS evaluation (expression work, set iteration, aggregate folds)
  off the commit path.  A plan invalidated by an earlier commit of the
  same cycle (validation below) falls back to live execution, which is
  what the sequential path would have run anyway.

Speculation safety: the RHS reads working memory only through
liveness checks on its own targets and mutates it only through
make/remove/modify — everything else (expressions, foreach, aggregates)
reads the instantiation's token snapshot.  The sandbox records the
evaluated action list plus the set of base time tags the firing
depends on; a plan is replayed only when (a) the instantiation
survived commit-time validation (still present, SOI version unchanged,
eligible) and (b) no earlier commit of the cycle consumed a tag the
plan depends on.  ``(call ...)`` actions run arbitrary host code and
are never speculated (:class:`_Unspeculable`); such firings execute
live at commit, exactly as the sequential path does.
"""

from __future__ import annotations

import heapq
import math
from collections import namedtuple

from repro.engine.tracing import FiringRecord
from repro.engine.rhs import RhsExecutor
from repro.errors import EngineError, WorkingMemoryError
from repro.wm.wme import WME

#: Schedule cost of one RHS WM action, in time units.  A modify is
#: remove+insert on the same element: two units on one chain.
UNIT_COST = {"make": 1, "remove": 1, "modify": 2}

#: One parallel cycle's accounting: every snapshot member is exactly
#: one of fired / conflicted (invalidated by an earlier firing of the
#: same cycle) / abandoned (given up by its error policy).
CycleResult = namedtuple("CycleResult", "fired conflicted abandoned")

#: ``RuleEngine.run_parallel`` totals.
ParallelRunResult = namedtuple(
    "ParallelRunResult", "cycles fired conflicted abandoned"
)


# -- the cost model ----------------------------------------------------------


def firing_chains(record):
    """The firing's dependency chains, as a list of unit lengths.

    Each make is its own 1-unit chain; removes and modifies accumulate
    onto the chain of their element's root tag.
    """
    independent = []
    per_root = {}
    for kind, root in record.touched_ops:
        units = UNIT_COST[kind]
        if root is None:
            independent.append(units)
        else:
            per_root[root] = per_root.get(root, 0) + units
    independent.extend(per_root.values())
    return independent


def firing_latency(record, workers):
    """Schedule length of one firing's WM actions on *workers* units.

    The latency is bounded below by the longest same-element chain and
    by ``ceil(total units / workers)``; for unit-task chains the bound
    is achieved by the greedy longest-remaining-chain-first schedule
    (:func:`measured_schedule` — the property suite holds the two
    equal), so it is returned exactly.
    """
    chains = firing_chains(record)
    total = sum(chains)
    if total == 0:
        return 0
    if workers <= 1:
        return total
    return max(max(chains), math.ceil(total / workers))


def measured_schedule(record, workers):
    """Event-driven greedy schedule length of one firing's actions.

    Simulates *workers* units executing the firing's chains one unit
    per step, always serving the chains with the most remaining work —
    the executable counterpart of :func:`firing_latency`'s closed form.
    """
    return simulate_chains(firing_chains(record), workers)


def simulate_chains(chains, workers):
    """Greedy longest-remaining-first schedule of unit-task *chains*."""
    remaining = [-units for units in chains if units > 0]
    if not remaining:
        return 0
    if workers <= 1:
        return -sum(remaining)
    heapq.heapify(remaining)
    steps = 0
    while remaining:
        served = [heapq.heappop(remaining)
                  for _ in range(min(workers, len(remaining)))]
        steps += 1
        for negative in served:
            if negative + 1 < 0:
                heapq.heappush(remaining, negative + 1)
    return steps


def run_latency(tracer, workers):
    """Total schedule length of a traced run on *workers* units."""
    return sum(
        firing_latency(record, workers) for record in tracer.firings
    )


def speedup(tracer, workers):
    """Sequential latency / parallel latency for the traced run."""
    sequential = run_latency(tracer, 1)
    parallel = run_latency(tracer, workers)
    if parallel == 0:
        return 1.0
    return sequential / parallel


def speedup_table(tracer, worker_counts=(1, 2, 4, 8, 16, 32)):
    """(workers, latency, speedup) rows for a traced run."""
    rows = []
    for workers in worker_counts:
        latency = run_latency(tracer, workers)
        rows.append((workers, latency, speedup(tracer, workers)))
    return rows


# -- speculation -------------------------------------------------------------


class _Unspeculable(BaseException):
    """The RHS reached an action the sandbox cannot evaluate safely
    (``call`` into arbitrary host code).  Derives from BaseException so
    no handler inside the executor can swallow it; the speculation is
    simply discarded and the firing runs live at commit."""


class FiringPlan:
    """The recorded effects of one successfully speculated RHS.

    *actions* is the evaluated WM/trace action list (make values,
    remove/modify target tags, write text, bind/halt markers) in
    execution order.  *depends* is the set of live (base) time tags the
    firing read or wrote: the plan is valid only while none of them has
    been consumed by an earlier commit of the same cycle.
    """

    __slots__ = ("rule_name", "actions", "depends")

    def __init__(self, rule_name, actions, depends):
        self.rule_name = rule_name
        self.actions = actions
        self.depends = depends

    def __repr__(self):
        return (
            f"FiringPlan({self.rule_name}, {len(self.actions)} actions, "
            f"{len(self.depends)} deps)"
        )


class _CallBlocker:
    """Stands in for ``engine.functions`` during speculation."""

    __slots__ = ()

    def get(self, name):
        raise _Unspeculable(name)


class _SandboxTracer:
    """Records ``write`` output as plan actions instead of emitting."""

    __slots__ = ("actions",)

    def __init__(self, actions):
        self.actions = actions

    def write(self, text):
        self.actions.append(("write", text))


class _SandboxWM:
    """A write-free overlay over the real working memory.

    Mutations record plan actions; liveness (``in``) consults the real
    memory through an overlay of in-sandbox removals and provisional
    creations.  Provisional elements get negative time tags; the
    replayer maps them to real tags by allocation order.
    """

    __slots__ = ("base", "actions", "depends", "_removed", "_made",
                 "_provisional")

    def __init__(self, base, actions):
        self.base = base
        self.actions = actions
        self.depends = set()
        self._removed = set()
        self._made = {}
        self._provisional = 0

    def _create(self, wme_class, values):
        self._provisional -= 1
        wme = WME(wme_class, values, self._provisional)
        self._made[self._provisional] = wme
        return wme

    def __contains__(self, wme):
        if not isinstance(wme, WME):
            return False
        tag = wme.time_tag
        if tag < 0:
            return self._made.get(tag) is wme and tag not in self._removed
        self.depends.add(tag)
        return tag not in self._removed and wme in self.base

    def make(self, wme_class, **values):
        self.base.registry.validate(wme_class, values)
        wme = self._create(wme_class, values)
        self.actions.append(("make", wme_class, values))
        return wme

    def _consume(self, wme):
        tag = wme.time_tag
        if wme not in self:
            raise WorkingMemoryError(
                f"WME {wme!r} is not in working memory"
            )
        self._removed.add(tag)
        return tag

    def remove(self, wme):
        tag = self._consume(wme)
        self.actions.append(("remove", tag))
        return wme

    def modify(self, wme, **updates):
        new_values = wme.with_updates(updates)
        self.base.registry.validate(wme.wme_class, new_values)
        tag = self._consume(wme)
        self.actions.append(("modify", tag, dict(updates)))
        return self._create(wme.wme_class, new_values)


class _SandboxEngine:
    """The slice of the engine surface the RHS executor touches."""

    __slots__ = ("wm", "tracer", "functions", "actions")

    def __init__(self, engine):
        self.actions = []
        self.wm = _SandboxWM(engine.wm, self.actions)
        self.tracer = _SandboxTracer(self.actions)
        self.functions = _CallBlocker()

    def halt(self):
        self.actions.append(("halt",))


def speculate(engine, instantiation):
    """Dry-run *instantiation*'s RHS; return a FiringPlan or None.

    Runs on a pool thread against a read-only view of the engine: no
    working-memory mutation, no tracer/WAL traffic, no stats.  Returns
    None when the RHS is unspeculable (``call``) or raised — either
    way the commit loop falls back to live execution, which reproduces
    the outcome (including the error, under the rule's policy).
    """
    analysis = engine.analyses.get(instantiation.rule.name)
    if analysis is None:
        return None
    sandbox = _SandboxEngine(engine)
    record = FiringRecord(
        0,
        instantiation.rule.name,
        instantiation.is_set_oriented,
        instantiation.recency_key(),
        len(instantiation.tokens()),
    )
    executor = RhsExecutor(
        sandbox, instantiation.rule, analysis, instantiation, record
    )
    try:
        executor.run()
    except _Unspeculable:
        return None
    except Exception:
        return None
    return FiringPlan(
        instantiation.rule.name, sandbox.actions, sandbox.wm.depends
    )


class PlanReplayer:
    """Executor-protocol replay of a :class:`FiringPlan`.

    Substituted for :class:`~repro.engine.rhs.RhsExecutor` inside the
    atomic-firing transaction: applies the recorded actions to the real
    working memory in order, maintaining the firing record's counters
    and chain bookkeeping exactly as live execution would.  Provisional
    (negative) tags recorded by the sandbox resolve to the real WMEs by
    allocation order.
    """

    __slots__ = ("engine", "plan", "record", "action_path", "_made",
                 "_provisional")

    def __init__(self, engine, plan, record):
        self.engine = engine
        self.plan = plan
        self.record = record
        self.action_path = ()
        self._made = {}
        self._provisional = 0

    def _resolve(self, tag):
        if tag < 0:
            return self._made[tag]
        wme = self.engine.wm.get(tag)
        if wme is None:
            raise EngineError(
                f"stale firing plan for {self.plan.rule_name}: element "
                f"{tag} left working memory before commit"
            )
        return wme

    def _track(self, wme):
        self._provisional -= 1
        self._made[self._provisional] = wme
        return wme

    def run(self):
        engine = self.engine
        record = self.record
        for index, action in enumerate(self.plan.actions):
            self.action_path = (index,)
            kind = action[0]
            if kind == "make":
                self._track(engine.wm.make(action[1], **action[2]))
                record.makes += 1
                record.touch("make")
            elif kind == "remove":
                wme = self._resolve(action[1])
                engine.wm.remove(wme)
                record.removes += 1
                record.touch("remove", wme.time_tag)
            elif kind == "modify":
                wme = self._resolve(action[1])
                replacement = engine.wm.modify(wme, **action[2])
                self._track(replacement)
                record.modifies += 1
                record.touch(
                    "modify", wme.time_tag, replacement.time_tag
                )
            elif kind == "write":
                engine.tracer.write(action[1])
                record.writes += 1
            elif kind == "bind":
                record.binds += 1
            elif kind == "halt":
                engine.halt()
            else:  # pragma: no cover - plans only record the above
                raise EngineError(f"unknown plan action {action!r}")
        self.action_path = ()


# -- the parallel cycle ------------------------------------------------------


def execute_cycle(engine, workers=1):
    """One DIPS-style parallel cycle; returns :class:`CycleResult`.

    Snapshots the eligible conflict set, speculates every member's RHS
    on the firing pool when ``workers > 1`` (a barrier: all
    speculations finish before the first commit), then commits in
    conflict-resolution order.  Each member lands in exactly one
    bucket — fired, conflicted (invalidated by an earlier firing of
    this cycle), or abandoned (its error policy gave up on it) — and
    the accounting is asserted against the snapshot size unless a
    ``halt`` stopped the cycle midway.
    """
    if engine.halted:
        return CycleResult(0, 0, 0)
    snapshot = [
        (inst, inst.soi.version if inst.is_set_oriented else None)
        for inst in engine.conflict_set.eligible_snapshot(engine.strategy)
    ]
    plans = {}
    if workers is not None and workers > 1 and len(snapshot) > 1:
        pool = engine._firing_pool(workers)
        futures = [
            (inst, pool.submit(speculate, engine, inst))
            for inst, _ in snapshot
        ]
        for inst, future in futures:
            plans[id(inst)] = future.result()
        engine.stats.incr("pool_speculations", len(futures))
    fired = 0
    conflicted = 0
    abandoned = 0
    consumed = set()
    halted_mid_cycle = False
    for instantiation, version in snapshot:
        still_present = (
            engine.conflict_set.current(instantiation.identity())
            is instantiation
        )
        unchanged = (
            version is None
            or instantiation.soi.version == version
        )
        if not (still_present and unchanged
                and instantiation.eligible()):
            # Invalidated by an earlier firing of this cycle: the
            # mutual-invalidation case the paper criticises
            # tuple-oriented rules for.
            conflicted += 1
            continue
        plan = plans.get(id(instantiation))
        if plan is not None and not (plan.depends & consumed):
            engine.stats.incr("pool_plan_commits")
            record = engine.fire(instantiation, plan=plan)
        else:
            if plans:
                engine.stats.incr("pool_plan_fallbacks")
            record = engine.fire(instantiation)
        if record is not None:
            fired += 1
            for _, root in record.touched_ops:
                if root is not None:
                    consumed.add(root)
        else:
            # Abandoned by its error policy — not a firing, and not a
            # paper-sense conflict either; its consumed refraction
            # stamp keeps it out of the next cycle's snapshot.
            abandoned += 1
        if engine.halted:
            halted_mid_cycle = True
            break
    if not halted_mid_cycle:
        assert fired + conflicted + abandoned == len(snapshot), (
            f"parallel cycle accounting drifted: {fired} fired + "
            f"{conflicted} conflicted + {abandoned} abandoned != "
            f"{len(snapshot)} snapshotted"
        )
    return CycleResult(fired, conflicted, abandoned)
