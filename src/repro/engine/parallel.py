"""A cost model for parallel RHS execution (the paper's §1 argument).

"A parallel architecture could perform an operation on the members of a
set in parallel.  Furthermore, research has shown that a limiting
factor for parallelization of the Rete network is the number of
operations done per rule firing [Gupta 1984, Miranker 1986, Pasik
1989].  The number of actions in a set-oriented rule should be
substantially greater, providing the ability to increase parallelism."

This module turns that argument into numbers.  Firings are inherently
sequential (the recognize-act cycle), but *within* one firing, WM
actions that touch distinct elements are independent.  Given the firing
trace of a run, the model computes the schedule length on ``workers``
parallel units:

* each WM action costs one time unit;
* actions within a firing are scheduled greedily; actions touching the
  same WME (recorded per action by the tracer) form a chain;
* firings execute one after another, so the run's latency is the sum
  of firing latencies.

Sequential latency is simply the total number of WM actions, so the
speedup of a workload under ``workers`` units falls out directly —
the C3b benchmark sweeps it for the tuple and set formulations.
"""

from __future__ import annotations

import math


def firing_latency(record, workers):
    """Schedule length of one firing's WM actions on *workers* units.

    ``record.touched_tags`` holds one entry per WM action: the time tag
    of the element it removed/modified, or None for a make (always
    independent).  The latency is bounded below by the longest
    same-element chain and by ``ceil(actions / workers)``.
    """
    actions = record.wm_actions
    if actions == 0:
        return 0
    if workers <= 1:
        return actions
    per_tag = {}
    for tag in record.touched_tags:
        if tag is not None:
            per_tag[tag] = per_tag.get(tag, 0) + 1
    longest_chain = max(per_tag.values(), default=1)
    return max(longest_chain, math.ceil(actions / workers))


def run_latency(tracer, workers):
    """Total schedule length of a traced run on *workers* units."""
    return sum(
        firing_latency(record, workers) for record in tracer.firings
    )


def speedup(tracer, workers):
    """Sequential latency / parallel latency for the traced run."""
    sequential = run_latency(tracer, 1)
    parallel = run_latency(tracer, workers)
    if parallel == 0:
        return 1.0
    return sequential / parallel


def speedup_table(tracer, worker_counts=(1, 2, 4, 8, 16, 32)):
    """(workers, latency, speedup) rows for a traced run."""
    rows = []
    for workers in worker_counts:
        latency = run_latency(tracer, workers)
        rows.append((workers, latency, speedup(tracer, workers)))
    return rows
