"""The conflict set and OPS5 conflict-resolution strategies.

Both classic strategies are provided:

* **LEX** — refraction, then recency of the instantiation's time tags
  (sorted descending, compared lexicographically; with an equal prefix
  the longer list dominates), then specificity, then a deterministic
  tie-break;
* **MEA** — like LEX but the recency of the *first* CE's WME is
  compared before the full tag list (means-ends analysis).

Set-oriented instantiations are ranked by their head token (paper §5);
a ``time`` mark from the S-node repositions an SOI, which here simply
bumps a counter — ordering is computed at selection time from the live
recency keys, so repositioning is implicit.
"""

from __future__ import annotations

from repro.errors import ConflictResolutionError
from repro.match.base import ConflictListener


class LexStrategy:
    """OPS5 LEX ordering."""

    name = "lex"

    def key(self, instantiation):
        return (
            instantiation.recency_key(),
            instantiation.specificity(),
            instantiation.rule.name,
        )


class MeaStrategy:
    """OPS5 MEA ordering (first-CE recency dominates)."""

    name = "mea"

    def key(self, instantiation):
        return (
            instantiation.mea_tag(),
            instantiation.recency_key(),
            instantiation.specificity(),
            instantiation.rule.name,
        )


_STRATEGIES = {"lex": LexStrategy, "mea": MeaStrategy}


def strategy_named(name):
    """Instantiate a strategy by name ('lex' or 'mea')."""
    try:
        return _STRATEGIES[name]()
    except KeyError:
        raise ConflictResolutionError(
            f"unknown strategy {name!r}; expected one of "
            f"{sorted(_STRATEGIES)}"
        ) from None


class ConflictSet(ConflictListener):
    """The live set of satisfied instantiations."""

    def __init__(self):
        self._instantiations = {}
        # Quarantined rules: rule name -> {identity: instantiation}.
        # Parked instantiations stay matched (matchers keep them
        # current through insert/retract) but are invisible to
        # selection until released.
        self._parked = {}
        self.inserts = 0
        self.retracts = 0
        self.repositions = 0

    # -- listener side -----------------------------------------------------

    def insert(self, instantiation):
        pool = self._parked.get(instantiation.rule.name)
        if pool is not None:
            pool[instantiation.identity()] = instantiation
        else:
            self._instantiations[instantiation.identity()] = instantiation
        self.inserts += 1

    def retract(self, instantiation):
        identity = instantiation.identity()
        if self._instantiations.pop(identity, None) is None:
            pool = self._parked.get(instantiation.rule.name)
            if pool is not None:
                pool.pop(identity, None)
        self.retracts += 1

    def reposition(self, instantiation):
        # Ordering is recomputed from live keys at selection time, so a
        # 'time' mark needs no structural work; we record it for the
        # S-node protocol tests and statistics.
        self.repositions += 1

    # -- engine side ------------------------------------------------------

    def __len__(self):
        return len(self._instantiations)

    def __iter__(self):
        return iter(self._instantiations.values())

    def instantiations(self):
        return list(self._instantiations.values())

    def current(self, identity):
        """The live instantiation with *identity*, or None.

        Parked (quarantined) instantiations are excluded: they are not
        candidates for firing.
        """
        return self._instantiations.get(identity)

    def of_rule(self, rule_name):
        return [
            inst
            for inst in self._instantiations.values()
            if inst.rule.name == rule_name
        ]

    # -- quarantine parking ------------------------------------------------

    def quarantine_rule(self, rule_name):
        """Detach *rule_name*'s instantiations from selection.

        They move to a parked pool that insert/retract keep current, so
        a later :meth:`release_rule` re-admits exactly the
        instantiations that would be live had the rule never been
        quarantined.  Returns the number parked now.
        """
        pool = self._parked.setdefault(rule_name, {})
        moved = [
            identity
            for identity, inst in self._instantiations.items()
            if inst.rule.name == rule_name
        ]
        for identity in moved:
            pool[identity] = self._instantiations.pop(identity)
        return len(pool)

    def release_rule(self, rule_name):
        """Re-admit a quarantined rule; returns instantiations restored."""
        pool = self._parked.pop(rule_name, None)
        if not pool:
            return 0
        self._instantiations.update(pool)
        return len(pool)

    def drop_rule(self, rule_name):
        """Discard a rule's parked pool without re-admitting it.

        Excising a quarantined rule must not leave orphaned parked
        stamps behind (they would silently swallow the instantiations
        of any later rule reusing the name — ``insert`` routes by rule
        name).  Returns the number of parked instantiations dropped.
        """
        pool = self._parked.pop(rule_name, None)
        return len(pool) if pool else 0

    def parked_rules(self):
        """Names of currently quarantined rules."""
        return sorted(self._parked)

    def parked_of_rule(self, rule_name):
        """Parked instantiations of one quarantined rule."""
        return list(self._parked.get(rule_name, {}).values())

    def select(self, strategy):
        """The dominant eligible instantiation, or None (refraction applies)."""
        eligible = [
            inst for inst in self._instantiations.values() if inst.eligible()
        ]
        if not eligible:
            return None
        return max(eligible, key=strategy.key)

    def ordered(self, strategy):
        """All instantiations, dominant first (ignores refraction)."""
        return sorted(
            self._instantiations.values(),
            key=strategy.key,
            reverse=True,
        )

    def eligible_snapshot(self, strategy):
        """Eligible instantiations, dominant first (refraction applies).

        The parallel cycle fires this whole list; it is a snapshot —
        later mutations of the conflict set do not affect it.
        """
        return sorted(
            (
                inst
                for inst in self._instantiations.values()
                if inst.eligible()
            ),
            key=strategy.key,
            reverse=True,
        )
