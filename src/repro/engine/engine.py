"""The recognize-act cycle: :class:`RuleEngine` ties everything together.

Typical use::

    from repro import RuleEngine

    engine = RuleEngine()
    engine.load('''
        (literalize player name team)
        (p compete
          [player ^name <n1> ^team A]
          (player ^name <n2> ^team B)
          -->
          (write <n2> competes))
    ''')
    engine.make("player", name="Jack", team="A")
    engine.make("player", name="Sue", team="B")
    engine.run()
    print(engine.tracer.output)

The matcher defaults to the extended Rete network; pass
``matcher=TreatMatcher()`` or ``NaiveMatcher()`` to swap algorithms —
conflict-set contents and firing behaviour are identical by contract
(and by differential test).
"""

from __future__ import annotations

import os
import threading

from repro.analysis import RuleAnalysis
from repro.engine import parallel as _parallel
from repro.engine import reliability as _reliability
from repro.engine.conflict import ConflictSet, strategy_named
from repro.engine.reliability import ReliabilityManager
from repro.engine.stats import NULL_STATS
from repro.engine.tracing import Tracer
from repro.errors import EngineError, RuleError
from repro.lang.ast import Rule
from repro.lang.parser import parse_program, parse_rule
from repro.rete.network import ReteNetwork
from repro.wm.memory import WorkingMemory


class RuleEngine:
    """An OPS5/C5 interpreter with the paper's set-oriented constructs."""

    def __init__(self, matcher=None, strategy="lex", echo=False,
                 stats=None, trace_limit=None, durability=None,
                 on_error="halt", workers=None, kernels=None):
        """*stats*: a :class:`repro.engine.stats.MatchStats` collector,
        wired through the matcher, the tracer, and the cycle timer
        (default: the no-op :data:`~repro.engine.stats.NULL_STATS`).
        *trace_limit*: bound the tracer's record lists as ring buffers.
        *durability*: a :class:`repro.durability.DurabilityConfig` (or a
        WAL directory path) enabling write-ahead logging of every WM
        change and firing; see :meth:`checkpoint` and :meth:`recover`.
        *on_error*: the engine-wide firing error policy — a policy
        object or spec string (``halt`` / ``skip`` / ``retry[:n[:b]]``
        / ``quarantine[:k]``); see :mod:`repro.engine.reliability` and
        :meth:`set_error_policy` for per-rule overrides.
        *workers*: firing-pool width for :meth:`parallel_cycle` /
        :meth:`run_parallel` (default: the ``REPRO_WORKERS``
        environment variable, else 1 — the sequential simulation);
        see ``docs/PARALLELISM.md``.
        *kernels*: compiled-match-kernel mode for Rete-family matchers
        built here — ``off`` / ``closure`` / ``exec`` (default: the
        ``REPRO_KERNELS`` environment variable, else ``closure``);
        ignored when *matcher* is a pre-built matcher object.  See
        ``docs/KERNELS.md``.
        """
        self.wm = WorkingMemory()
        self.stats = stats if stats is not None else NULL_STATS
        if isinstance(matcher, str):
            from repro.durability.checkpoint import build_matcher

            matcher = build_matcher(matcher, kernels=kernels)
        self.matcher = (
            matcher
            if matcher is not None
            else self._default_matcher(kernels)
        )
        if stats is not None:
            self.matcher.set_stats(stats)
        self.conflict_set = ConflictSet()
        self.matcher.set_listener(self.conflict_set)
        self.matcher.attach(self.wm)
        self.strategy = (
            strategy_named(strategy) if isinstance(strategy, str) else strategy
        )
        self.durability = None
        if durability is not None:
            from repro.durability import DurabilityManager
            from repro.durability.checkpoint import matcher_name

            self.durability = DurabilityManager(
                durability, stats=self.stats
            )
            self.durability.attach(self.wm)
            self.durability.log_meta(
                matcher_name(self.matcher), self.strategy.name
            )
        self.tracer = Tracer(echo=echo, max_records=trace_limit,
                             stats=self.stats)
        self.reliability = ReliabilityManager(on_error)
        self.last_run_report = None
        self.rules = {}
        self.analyses = {}
        self.functions = {}
        self.halted = False
        self.cycle_count = 0
        self.workers = self._default_workers(workers)
        self._pool = None
        self._pool_size = 0
        self._close_lock = threading.Lock()
        self.closed = False
        # Request-dedup journal: idempotency key -> the response of the
        # mutating request that carried it.  The service layer consults
        # it before applying a retried request; durable sessions carry
        # the entries through the WAL and checkpoint manifest so a
        # crash-and-recover cannot double-apply an acknowledged request.
        self.request_journal = {}

    @staticmethod
    def _default_matcher(kernels=None):
        """The default matcher; honours ``REPRO_MATCH_SHARDS``.

        Setting the environment variable to N > 1 makes default-built
        engines match on a :class:`~repro.rete.sharded.ShardedReteNetwork`
        of N shards — the lever the CI parallel-soak job pulls to run
        ordinary suites against the sharded path.  *kernels* forwards
        the compiled-kernel mode (``REPRO_KERNELS`` applies when None).
        """
        shards = int(os.environ.get("REPRO_MATCH_SHARDS", "0") or 0)
        if shards > 1:
            from repro.rete.sharded import ShardedReteNetwork

            return ShardedReteNetwork(shards=shards, kernels=kernels)
        return ReteNetwork(kernels=kernels)

    @staticmethod
    def _default_workers(workers):
        if workers is not None:
            return max(1, int(workers))
        return max(1, int(os.environ.get("REPRO_WORKERS", "1") or 1))

    def _firing_pool(self, workers):
        """The lazily created speculation pool (resized on demand)."""
        if self._pool is not None and self._pool_size != workers:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-fire"
            )
            self._pool_size = workers
        return self._pool

    # -- program definition ---------------------------------------------------

    def register_function(self, name, function):
        """Expose a Python callable to RHS ``(call name args...)``.

        The callable receives the evaluated argument values; its return
        value is ignored (use it for side effects — logging, callbacks,
        bridging into host code).
        """
        self.functions[name] = function

    def literalize(self, wme_class, *attributes):
        """Declare a WME class (``(literalize class attr ...)``)."""
        self.wm.registry.literalize(wme_class, attributes)
        if self.durability is not None:
            self.durability.log_literalize(wme_class, attributes)

    def add_rule(self, rule):
        """Add one rule: an AST :class:`Rule` or ``(p ...)`` source text."""
        if isinstance(rule, str):
            rule = parse_rule(rule)
        if not isinstance(rule, Rule):
            raise RuleError(f"expected a Rule or source text, got {rule!r}")
        if rule.name in self.rules:
            raise RuleError(f"rule {rule.name} already defined")
        self._check_no_open_batch("add_rule")
        self.rules[rule.name] = rule
        self.analyses[rule.name] = RuleAnalysis(rule)
        self.matcher.add_rule(rule)
        if self.durability is not None:
            self.durability.log_rule(rule)
        return rule

    def excise(self, rule_name):
        """Remove a rule at runtime (OPS5 excise).

        Its conflict-set instantiations are retracted; working memory
        is untouched.  Fault-containment state is reconciled: a
        quarantined rule's parked pool is dropped (never resurrected)
        and its quarantine/failure bookkeeping cleared.
        """
        if rule_name not in self.rules:
            raise RuleError(f"no rule named {rule_name}")
        self._check_no_open_batch("excise")
        self._forget_rule(rule_name)
        if self.durability is not None:
            self.durability.log_excise(rule_name)

    def replace_rule(self, rule_name, rule):
        """Atomically excise *rule_name* and add *rule* in its place.

        *rule* is an AST :class:`Rule` or ``(p ...)`` source text; its
        name may differ from *rule_name*.  The swap is logged as one
        WAL record, so a crash between the excise and the add cannot
        leave recovery with neither (or both) rule.  The new rule
        backfills from live working memory exactly as :meth:`add_rule`
        does.  Returns the new rule.
        """
        if isinstance(rule, str):
            rule = parse_rule(rule)
        if not isinstance(rule, Rule):
            raise RuleError(f"expected a Rule or source text, got {rule!r}")
        if rule_name not in self.rules:
            raise RuleError(f"no rule named {rule_name}")
        if rule.name != rule_name and rule.name in self.rules:
            raise RuleError(f"rule {rule.name} already defined")
        self._check_no_open_batch("replace_rule")
        self._forget_rule(rule_name)
        self.rules[rule.name] = rule
        self.analyses[rule.name] = RuleAnalysis(rule)
        self.matcher.add_rule(rule)
        if self.durability is not None:
            self.durability.log_replace(rule_name, rule)
        return rule

    def _forget_rule(self, rule_name):
        """Drop every trace of *rule_name* from engine-side state."""
        self.matcher.remove_rule(rule_name)
        del self.rules[rule_name]
        del self.analyses[rule_name]
        # Parked instantiations and quarantine/failure bookkeeping must
        # not outlive the rule: an orphaned parked pool would silently
        # swallow the instantiations of any later rule reusing the name
        # (ConflictSet.insert routes by rule name).
        self.conflict_set.drop_rule(rule_name)
        self.reliability.quarantined.pop(rule_name, None)
        self.reliability.failure_counts.pop(rule_name, None)

    def _check_no_open_batch(self, op):
        """Rule surgery inside an open batch() would double-propagate:
        the backfill sees staged WMEs that the flush then re-delivers."""
        if self.wm.in_batch:
            raise EngineError(f"cannot {op}() inside an open batch()")

    def load(self, source):
        """Load a whole program: literalize declarations plus rules."""
        literalizations, rules = parse_program(source)
        for wme_class, attributes in literalizations:
            self.literalize(wme_class, *attributes)
        for rule in rules:
            self.add_rule(rule)
        return rules

    # -- working memory -----------------------------------------------------

    def make(self, wme_class, **values):
        """Add a WME to working memory (matching updates immediately)."""
        return self.wm.make(wme_class, **values)

    def remove(self, wme):
        """Remove a WME (by object or time tag) from working memory."""
        return self.wm.remove(wme)

    def modify(self, wme, **updates):
        """OPS5 modify: remove + re-make with a fresh time tag."""
        return self.wm.modify(wme, **updates)

    def batch(self):
        """Collect WM changes into one atomic delta-set.

        Inside the ``with`` block, ``make``/``remove``/``modify`` mutate
        working memory immediately but defer match propagation; on exit
        the net delta-set (cancelling make/remove pairs coalesced away)
        flows through the matcher in one set-oriented pass::

            with engine.batch():
                for name, team in roster:
                    engine.make("player", name=name, team=team)

        Nested ``batch()`` blocks extend the outermost one.  Semantics
        are those of applying the net delta-set atomically: the
        resulting conflict set and firing order are identical to
        per-event propagation.
        """
        return self.wm.batch(stats=self.stats)

    def load_facts(self, facts):
        """Bulk-load ``(wme_class, attrs_dict)`` pairs in one batch.

        Returns the created WMEs in input order.  This is the bulk-load
        entry point the paper's database framing calls for: one
        set-oriented pass through the match network (and, under DIPS,
        one INSERT statement per table) instead of one per fact.
        """
        made = []
        with self.batch():
            for wme_class, values in facts:
                made.append(self.wm.make(wme_class, **values))
        return made

    # -- the cycle ------------------------------------------------------------

    def halt(self):
        """Stop after the current firing (the RHS ``(halt)`` action)."""
        self.halted = True

    def step(self):
        """One recognize-act cycle; returns the fired instantiation or None."""
        if self.halted:
            return None
        instantiation = self.conflict_set.select(self.strategy)
        if instantiation is None:
            return None
        self.fire(instantiation)
        return instantiation

    def fire(self, instantiation, plan=None):
        """Fire *instantiation* atomically (normally via :meth:`step`).

        The RHS stages its effects in a working-memory transaction: on
        success they flush through the batched propagation path (the
        write-ahead log first); on an RHS exception the firing rolls
        back to the exact pre-fire state and the rule's error policy
        decides between halt (raise :class:`~repro.errors.FiringError`),
        skip, retry, and quarantine — see
        :mod:`repro.engine.reliability`.  Refraction is stamped before
        the RHS runs: per the paper's section 6 control semantics, any
        change to the instantiation — including one caused by its own
        firing — makes it eligible again.  In the WAL the stamp opens a
        bracketed transaction closed by an ``e`` (commit) or ``a``
        (abort) record, so recovery replays the same outcome.

        Returns the firing's trace record, or None when the policy
        abandoned the instantiation.  *plan* is a speculated
        :class:`~repro.engine.parallel.FiringPlan` to replay instead of
        evaluating the RHS live (the firing pool's commit path).
        """
        return _reliability.fire(self, instantiation, plan=plan)

    def run(self, limit=None, *, wall_clock=None, deadline=None,
            livelock_threshold=None, on_livelock="stop"):
        """Run cycles until quiescence, ``(halt)``, or a budget.

        *limit* bounds firings; *wall_clock* bounds elapsed seconds;
        *deadline* is an absolute :func:`time.monotonic` cutoff (the
        service layer propagates per-request deadlines here, stopping
        with reason ``"deadline"``); *livelock_threshold* arms the
        refire-cycle watchdog (same instantiation content firing more
        than N times with no net working-memory change), which stops
        gracefully or raises :class:`~repro.errors.LivelockError` per
        *on_livelock* (``"stop"``/``"raise"``).  Why the run stopped
        is recorded in ``self.last_run_report``.  Returns the number
        of firings.
        """
        return _reliability.run_guarded(
            self, limit, wall_clock=wall_clock, deadline=deadline,
            livelock_threshold=livelock_threshold,
            on_livelock=on_livelock,
        )

    # -- fault containment ------------------------------------------------

    def set_error_policy(self, policy, rule=None):
        """Set the firing error policy — engine-wide, or for one *rule*.

        *policy* is a policy object or spec string (``halt``, ``skip``,
        ``retry[:n[:backoff[:then]]]``, ``quarantine[:after]``).
        """
        return self.reliability.set_policy(policy, rule)

    @property
    def dead_letters(self):
        """Poison instantiations abandoned by skip/quarantine policies."""
        return list(self.reliability.dead_letters)

    def quarantined_rules(self):
        """Quarantine registry: rule name -> failure details."""
        return dict(self.reliability.quarantined)

    def release_rule(self, rule_name):
        """Re-admit a quarantined rule to conflict resolution.

        Its parked instantiations (kept current by the matcher all
        along) return to the conflict set; the rule's failure count
        resets.  Returns the number of instantiations restored.
        Releasing a rule that no longer exists (excised while
        quarantined) is an error — its stamps are gone for good.
        """
        if rule_name not in self.rules:
            raise RuleError(f"no rule named {rule_name}")
        restored = self.reliability.release(self, rule_name)
        if self.durability is not None:
            self.durability.log_release(rule_name)
        return restored

    # -- parallel firing (the DIPS §8.1 execution model, in memory) -------

    def parallel_cycle(self, workers=None):
        """Fire every eligible instantiation of one cycle in parallel.

        DIPS "attempts to execute all satisfied instantiations
        concurrently" (paper §8.1).  The eligible set is snapshotted;
        with *workers* > 1 every member's RHS is speculated
        concurrently on the firing pool, then the plans commit serially
        in conflict-resolution order (so time tags, WAL records, and
        trace output are bit-identical to the sequential path) — unless
        an earlier firing of the *same cycle* already invalidated a
        member (retracted it from the conflict set, or changed the SOI
        it views), in which case it is a *conflict*, the
        mutual-invalidation case the paper criticises tuple-oriented
        rules for.  See :mod:`repro.engine.parallel`.

        *workers* defaults to the engine's ``workers`` setting.
        Returns a ``CycleResult(fired, conflicted, abandoned)``
        namedtuple; ``abandoned`` counts members whose error policy
        gave up on them (skip/quarantine) — every snapshot member lands
        in exactly one of the three buckets unless a ``halt`` stopped
        the cycle midway.
        """
        return _parallel.execute_cycle(
            self, self.workers if workers is None else workers
        )

    def run_parallel(self, max_cycles=None, *, wall_clock=None,
                     deadline=None, firing_budget=None,
                     livelock_threshold=None, on_livelock="stop"):
        """Repeat :meth:`parallel_cycle` until quiescence or a budget.

        *max_cycles* bounds parallel cycles, *firing_budget* total
        firings, *wall_clock* elapsed seconds, *deadline* an absolute
        :func:`time.monotonic` cutoff; *livelock_threshold* /
        *on_livelock* arm the cycle-level refire watchdog (see
        :meth:`run`).  Returns a ``ParallelRunResult(cycles, fired,
        conflicted, abandoned)`` namedtuple; why the run stopped is in
        ``self.last_run_report``.
        """
        return _reliability.run_parallel_guarded(
            self, max_cycles, wall_clock=wall_clock, deadline=deadline,
            firing_budget=firing_budget,
            livelock_threshold=livelock_threshold,
            on_livelock=on_livelock,
        )

    def reset(self):
        """Clear working memory, trace, fault state, and the halt flag.

        Rules stay.  Matching state empties through one batched
        removal delta-set; dead letters and failure counts clear and
        quarantined rules are released, so the engine is ready for a
        fresh scenario against the same rule base.  With durability
        attached the clear is logged as an ordinary delta record
        followed by a reset record, so :meth:`recover` replays the
        reset instead of resurrecting pre-reset control state.
        """
        if self.wm.in_batch:
            raise EngineError("cannot reset() inside an open batch()")
        with self.wm.batch(stats=self.stats):
            self.wm.clear()
        self.tracer.clear()
        self.halted = False
        self.cycle_count = 0
        self.reliability.clear_runtime_state(self)
        self.last_run_report = None
        if self.durability is not None:
            self.durability.log_reset()

    # -- durability -----------------------------------------------------------

    def checkpoint(self):
        """Write an atomic durability checkpoint; returns its path.

        Requires the engine to have been constructed with
        ``durability=...`` (or recovered).  Obsolete WAL segments are
        truncated afterwards, bounding recovery time.
        """
        if self.durability is None:
            raise EngineError(
                "checkpoint() requires durability; construct the engine "
                "with durability=DurabilityConfig(...)"
            )
        return self.durability.checkpoint(self)

    @classmethod
    def recover(cls, path, **kwargs):
        """Rebuild an engine from the WAL directory *path*.

        Loads the latest valid checkpoint (if any) and replays the WAL
        tail through the batched propagation path, so the recovered
        conflict set, refraction state, and working memory match the
        crashed process exactly — up to the last durable record.  See
        :func:`repro.durability.recover_engine` for keyword options.
        """
        from repro.durability import recover_engine

        return recover_engine(cls, path, **kwargs)

    def close(self):
        """Release pools and the durability log (no-op without them).

        Idempotent and thread-safe: the service layer's eviction path
        (idle-TTL sweeps, LRU pressure) can race a client-initiated
        close — both calls succeed, the second (and any later one)
        doing nothing.  ``closed`` reports whether a close has
        completed.
        """
        with self._close_lock:
            if self.closed:
                return
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
                self._pool_size = 0
            closer = getattr(self.matcher, "close", None)
            if closer is not None:
                closer()
            if self.durability is not None:
                self.durability.close()
                self.durability = None
            self.closed = True

    # -- inspection -----------------------------------------------------------

    @property
    def output(self):
        """Lines produced by ``(write ...)`` so far."""
        return list(self.tracer.output)

    def conflict_set_size(self):
        """Number of instantiations currently in the conflict set."""
        return len(self.conflict_set)

    def __repr__(self):
        return (
            f"RuleEngine({len(self.rules)} rules, {len(self.wm)} WMEs, "
            f"{len(self.conflict_set)} instantiations)"
        )
