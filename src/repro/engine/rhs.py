"""The RHS executor: classic OPS5 actions plus the set-oriented ones.

A firing executes against a fire-time *snapshot* of the instantiation's
relation (its tokens), so RHS actions that mutate working memory do not
disturb the iteration in progress.  The executor maintains:

* **bind frames** — ``(bind <v> expr)`` assigns in the nearest enclosing
  frame already defining ``<v>``, else the current frame; ``foreach``
  bodies push/pop frames, giving the scoping both of the paper's
  ``RemoveDups`` (a flag bound before the loop and flipped inside it)
  and ``AlternativeRemoveDups`` (a flag re-initialised per iteration);
* **narrowing frames** — each ``foreach`` iteration restricts the
  current subinstantiation (paper §6: "each iterator acts to reduce the
  size of the subinstantiation further by performing a selection") and
  fixes iterator variables as scalars; for iteration over a set CE, all
  PVs referenced in that CE become regular PVs bound through the
  current member WME (§6.2).
"""

from __future__ import annotations

from repro import symbols
from repro.errors import EngineError
from repro.core.expr import evaluate, is_truthy
from repro.lang import ast
from repro.rete.aggregates import AggregateSpec, AggregateState


class _Narrow:
    """One foreach level: restricted tokens + scalars it fixes."""

    __slots__ = ("tokens", "fixed_values", "fixed_wmes")

    def __init__(self, tokens, fixed_values, fixed_wmes):
        self.tokens = tokens
        self.fixed_values = fixed_values  # var name -> scalar value
        self.fixed_wmes = fixed_wmes  # CE level -> single WME


class _RhsResolver:
    """Expression resolver delegating to the executor's scopes."""

    __slots__ = ("executor",)

    def __init__(self, executor):
        self.executor = executor

    def var(self, name):
        return self.executor.value_of(name)

    def aggregate(self, node):
        return self.executor.aggregate_value(node)


class RhsExecutor:
    """Executes one rule firing."""

    def __init__(self, engine, rule, analysis, instantiation, record):
        self.engine = engine
        self.rule = rule
        self.analysis = analysis
        self.instantiation = instantiation
        self.record = record
        self.tokens = instantiation.tokens()  # fire-time snapshot
        self.frames = [{}]
        self.narrows = []
        self.element_vars = rule.element_vars()
        self._resolver = _RhsResolver(self)
        # Index path of the action being dispatched, outermost block
        # first; left at the failure point when the RHS raises, so
        # FiringError can name the poison action.
        self.action_path = ()

    # -- scope helpers -----------------------------------------------------

    def current_tokens(self):
        if self.narrows:
            return self.narrows[-1].tokens
        return self.tokens

    def _error(self, message):
        raise EngineError(f"rule {self.rule.name}: {message}")

    def value_of(self, name):
        """Resolve ``<name>`` through binds, narrows, then the match."""
        for frame in reversed(self.frames):
            if name in frame:
                return frame[name]
        for narrow in reversed(self.narrows):
            if name in narrow.fixed_values:
                return narrow.fixed_values[name]
        if not self.instantiation.is_set_oriented:
            return self.analysis.variable_value(
                name, self.instantiation.wme_at
            )
        return self._soi_value_of(name)

    def _soi_value_of(self, name):
        soi = self.instantiation
        site = self.analysis.binding_sites.get(name)
        if site is None:
            self._error(f"<{name}> is not bound")
        level, attribute = site
        if level in self.analysis.scalar_ce_levels:
            wme = soi.wme_at(level)
            return wme.get(attribute)
        if self._is_partition_var(name):
            return soi.p_value(name)
        # A set-oriented PV: scalar only when its current domain is a
        # singleton (e.g. inside a foreach that narrowed it, §6.2).
        domain = self.domain_of(name)
        if len(domain) == 1:
            return domain[0]
        self._error(
            f"set-oriented <{name}> used as a scalar while its domain "
            f"has {len(domain)} values (iterate it with foreach)"
        )

    def _is_partition_var(self, name):
        """Is *name* a ``:scalar`` variable sited in a set-oriented CE?"""
        if name not in self.rule.scalar_vars:
            return False
        site = self.analysis.binding_sites.get(name)
        return site is not None and self.rule.ces[site[0]].set_oriented

    def domain_of(self, name):
        """Distinct current-subinstantiation values of a set PV."""
        site = self.analysis.binding_sites.get(name)
        if site is None:
            self._error(f"<{name}> is not bound")
        level, attribute = site
        seen = {}
        for token in self.current_tokens():
            wme = token.wme_at(level)
            if wme is not None:
                seen.setdefault(wme.get(attribute), None)
        return list(seen)

    def members_of(self, level):
        """Distinct member WMEs of a set CE in the current narrowing."""
        for narrow in reversed(self.narrows):
            if level in narrow.fixed_wmes:
                return [narrow.fixed_wmes[level]]
        seen = {}
        for token in self.current_tokens():
            wme = token.wme_at(level)
            if wme is not None:
                seen.setdefault(wme, None)
        return list(seen)

    def single_wme(self, level):
        """The one WME at a CE level, for remove/modify targets."""
        if not self.instantiation.is_set_oriented:
            wme = self.instantiation.wme_at(level)
            if wme is None:
                self._error(
                    f"CE {level + 1} is negated and matches no element"
                )
            return wme
        if level in self.analysis.scalar_ce_levels:
            return self.instantiation.wme_at(level)
        members = self.members_of(level)
        if len(members) == 1:
            return members[0]
        self._error(
            f"CE {level + 1} is set-oriented with {len(members)} members; "
            f"use set-remove/set-modify or iterate with foreach"
        )

    def aggregate_value(self, node):
        """Evaluate an RHS aggregate over the current subinstantiation."""
        if node.target in self.element_vars:
            level = self.element_vars[node.target]
            spec = AggregateSpec(
                node.op, node.target, "ce", level, node.attribute
            )
        elif node.target in self.analysis.set_variable_sites:
            level, attribute = self.analysis.set_variable_sites[node.target]
            spec = AggregateSpec(node.op, node.target, "pv", level, attribute)
        else:
            self._error(
                f"aggregate target <{node.target}> is not set-oriented"
            )
        state = AggregateState(spec)
        for token in self.current_tokens():
            state.add_token(token)
        return state.value()

    def _eval(self, expression):
        return evaluate(expression, self._resolver)

    # -- execution ------------------------------------------------------------

    def run(self):
        self._run_block(self.rule.actions)

    def _run_block(self, actions):
        base = self.action_path
        for index, action in enumerate(actions):
            self.action_path = base + (index,)
            self._dispatch(action)
        self.action_path = base

    def _dispatch(self, action):
        if isinstance(action, ast.MakeAction):
            self._do_make(action)
        elif isinstance(action, ast.RemoveAction):
            self._do_remove(action)
        elif isinstance(action, ast.ModifyAction):
            self._do_modify(action)
        elif isinstance(action, ast.WriteAction):
            self._do_write(action)
        elif isinstance(action, ast.BindAction):
            self._do_bind(action)
        elif isinstance(action, ast.HaltAction):
            self.engine.halt()
        elif isinstance(action, ast.CallAction):
            self._do_call(action)
        elif isinstance(action, ast.SetModifyAction):
            self._do_set_modify(action)
        elif isinstance(action, ast.SetRemoveAction):
            self._do_set_remove(action)
        elif isinstance(action, ast.ForeachAction):
            self._do_foreach(action)
        elif isinstance(action, ast.IfAction):
            self._do_if(action)
        else:
            self._error(f"unknown action {action!r}")

    # -- classic actions ---------------------------------------------------------

    def _do_make(self, action):
        values = {
            attribute: self._eval(expression)
            for attribute, expression in action.assignments
        }
        self.engine.wm.make(action.wme_class, **values)
        self.record.makes += 1
        self.record.touch("make")

    def _resolve_target(self, target):
        if isinstance(target, int):
            level = target - 1
            if not 0 <= level < len(self.rule.ces):
                self._error(f"no CE numbered {target}")
            return self.single_wme(level)
        if target in self.element_vars:
            return self.single_wme(self.element_vars[target])
        self._error(f"<{target}> is not an element variable")

    def _check_live(self, wme):
        if wme not in self.engine.wm:
            self._error(
                f"element {wme!r} is no longer in working memory "
                f"(already removed or modified this firing?)"
            )

    def _do_remove(self, action):
        wme = self._resolve_target(action.target)
        self._check_live(wme)
        self.engine.wm.remove(wme)
        self.record.removes += 1
        self.record.touch("remove", wme.time_tag)

    def _do_modify(self, action):
        wme = self._resolve_target(action.target)
        self._check_live(wme)
        updates = {
            attribute: self._eval(expression)
            for attribute, expression in action.assignments
        }
        replacement = self.engine.wm.modify(wme, **updates)
        self.record.modifies += 1
        self.record.touch("modify", wme.time_tag, replacement.time_tag)

    def _do_write(self, action):
        parts = [
            symbols.format_value(self._eval(argument))
            for argument in action.arguments
        ]
        self.engine.tracer.write(" ".join(parts))
        self.record.writes += 1

    def _do_call(self, action):
        function = self.engine.functions.get(action.name)
        if function is None:
            self._error(f"no registered function named {action.name!r}")
        arguments = [self._eval(arg) for arg in action.arguments]
        function(*arguments)

    def _do_bind(self, action):
        value = self._eval(action.expression)
        for frame in reversed(self.frames):
            if action.name in frame:
                frame[action.name] = value
                break
        else:
            self.frames[-1][action.name] = value
        self.record.binds += 1

    # -- set-oriented actions --------------------------------------------------

    def _set_level(self, target, action_name):
        level = self.element_vars.get(target)
        if level is None:
            self._error(f"{action_name} target <{target}> does not bind a CE")
        if not self.rule.ces[level].set_oriented:
            self._error(
                f"{action_name} target <{target}> binds a regular CE; "
                f"use modify/remove"
            )
        return level

    def _do_set_modify(self, action):
        level = self._set_level(action.target, "set-modify")
        updates = {
            attribute: self._eval(expression)
            for attribute, expression in action.assignments
        }
        for wme in self.members_of(level):
            self._check_live(wme)
            replacement = self.engine.wm.modify(wme, **updates)
            self.record.modifies += 1
            self.record.touch("modify", wme.time_tag, replacement.time_tag)

    def _do_set_remove(self, action):
        level = self._set_level(action.target, "set-remove")
        for wme in self.members_of(level):
            self._check_live(wme)
            self.engine.wm.remove(wme)
            self.record.removes += 1
            self.record.touch("remove", wme.time_tag)

    # -- foreach ------------------------------------------------------------------

    def _do_foreach(self, action):
        name = action.variable
        if name in self.element_vars:
            level = self.element_vars[name]
            if not self.rule.ces[level].set_oriented:
                self._error(
                    f"foreach <{name}> iterates a regular CE; nothing to "
                    f"iterate"
                )
            self._foreach_ce(action, level)
            return
        if name in self.analysis.set_variable_sites:
            self._foreach_pv(action)
            return
        self._error(f"foreach <{name}> must name a set-oriented variable")

    def _foreach_pv(self, action):
        """Iterate distinct values of a set PV (group-by-value, §6.1)."""
        level, attribute = self.analysis.set_variable_sites[action.variable]
        groups = {}
        for token in self.current_tokens():
            wme = token.wme_at(level)
            if wme is None:
                continue
            groups.setdefault(wme.get(attribute), []).append(token)
        ordered = self._order_groups(groups, action.order, value_keyed=True)
        for value in ordered:
            narrow = _Narrow(
                groups[value], {action.variable: value}, {}
            )
            self._run_narrowed(action.body, narrow)

    def _foreach_ce(self, action, level):
        """Iterate distinct member WMEs of a set CE (§6.2)."""
        groups = {}
        for token in self.current_tokens():
            wme = token.wme_at(level)
            if wme is not None:
                groups.setdefault(wme, []).append(token)
        ordered = self._order_groups(groups, action.order, value_keyed=False)
        ce = self.rule.ces[level]
        for wme in ordered:
            fixed_values = {}
            for var_name in ce.variables():
                attribute = ce.attribute_of_variable(var_name)
                if attribute is not None:
                    fixed_values[var_name] = wme.get(attribute)
            narrow = _Narrow(groups[wme], fixed_values, {level: wme})
            self._run_narrowed(action.body, narrow)

    def _order_groups(self, groups, order, value_keyed):
        """Order iteration keys per §6: value order or conflict-set order."""
        keys = list(groups)
        if order == "ascending":
            if value_keyed:
                return sorted(keys, key=symbols.sort_key)
            return sorted(keys, key=lambda wme: wme.time_tag)
        if order == "descending":
            if value_keyed:
                return sorted(keys, key=symbols.sort_key, reverse=True)
            return sorted(keys, key=lambda wme: wme.time_tag, reverse=True)
        # Default: the order the subinstantiations would have had in the
        # conflict set — dominant (most recent) group first.
        def group_recency(key):
            tags = []
            for token in groups[key]:
                tags.extend(token.time_tags())
            return tuple(sorted(tags, reverse=True))

        return sorted(keys, key=group_recency, reverse=True)

    def _run_narrowed(self, body, narrow):
        self.narrows.append(narrow)
        self.frames.append({})
        try:
            self._run_block(body)
        finally:
            self.frames.pop()
            self.narrows.pop()

    # -- if ---------------------------------------------------------------------

    def _do_if(self, action):
        if is_truthy(self._eval(action.condition)):
            self._run_block(action.then_body)
        else:
            self._run_block(action.else_body)
