"""The inference engine: conflict set, resolution strategies, RHS, cycle.

Public entry point is :class:`~repro.engine.engine.RuleEngine`, which
wires a :class:`~repro.wm.WorkingMemory`, a matcher (Rete by default),
a conflict set with LEX or MEA resolution, and the RHS executor into
the classic recognize-act cycle — extended with the paper's set-oriented
semantics (SOIs, refire-on-change, ``foreach``/``set-modify``/
``set-remove``).
"""

from repro.engine.engine import RuleEngine
from repro.engine.conflict import ConflictSet, LexStrategy, MeaStrategy
from repro.core.instantiation import Instantiation, SetInstantiation
from repro.engine.reliability import (
    DeadLetter,
    HaltPolicy,
    LivelockDetector,
    QuarantinePolicy,
    ReliabilityManager,
    RetryPolicy,
    RunReport,
    SkipPolicy,
    policy_named,
)
from repro.engine.stats import NULL_STATS, MatchStats, NullStats
from repro.engine.tracing import FiringRecord, Tracer

__all__ = [
    "ConflictSet",
    "DeadLetter",
    "FiringRecord",
    "HaltPolicy",
    "Instantiation",
    "LexStrategy",
    "LivelockDetector",
    "MatchStats",
    "MeaStrategy",
    "NULL_STATS",
    "NullStats",
    "QuarantinePolicy",
    "ReliabilityManager",
    "RetryPolicy",
    "RuleEngine",
    "RunReport",
    "SetInstantiation",
    "SkipPolicy",
    "Tracer",
    "policy_named",
]
