"""Transactional firings and fault containment.

Three layers, bottom up:

* **Atomic firings** — :func:`fire` wraps every RHS in a working-memory
  transaction (:meth:`~repro.wm.memory.WorkingMemory.begin_transaction`):
  effects stage in the batch buffer, so no matcher — Rete, TREAT,
  naive, or DIPS — ever propagates a delta the firing did not commit.
  On any contained exception the transaction rewinds the WME multiset,
  the time-tag counter, the tracer output, the ``halted`` flag, and
  (under ``halt``) the refraction stamp, leaving the engine exactly as
  if the firing had never been attempted.  The write-ahead log gets a
  matching ``abort`` record so durable history agrees with memory and
  :meth:`RuleEngine.recover` replays the same outcome.

* **Error policies** — per-engine and per-rule ``on_error`` handling of
  a failed firing: :class:`HaltPolicy` (re-raise a
  :class:`~repro.errors.FiringError`, the default and the pre-existing
  behaviour), :class:`SkipPolicy` (abandon the instantiation and record
  it as a dead letter), :class:`RetryPolicy` (re-run the RHS up to *n*
  times with exponential backoff, then fall back), and
  :class:`QuarantinePolicy` (skip, and after *k* failures of the same
  rule detach the whole rule from conflict resolution).  The
  :class:`ReliabilityManager` keeps the dead-letter list and the
  quarantine registry, both inspectable from the CLI/REPL.

* **Run watchdogs** — :func:`run_guarded` and
  :func:`run_parallel_guarded` back ``RuleEngine.run`` /
  ``run_parallel``: wall-clock and firing budgets, plus a livelock
  detector that flags the same instantiation *content* identity firing
  more than N times while working memory keeps returning to the same
  content fingerprint — the refire loop no budget would catch before
  burning it.  Watchdogs degrade gracefully (stop and report via
  ``engine.last_run_report``) unless asked to raise.

Containment never catches a
:class:`~repro.durability.faultfs.SimulatedCrash`: an injected crash
means the process is dead, and recovery — not a policy — is the only
way forward.
"""

from __future__ import annotations

import time
from time import monotonic, perf_counter

from repro.engine.parallel import ParallelRunResult, PlanReplayer
from repro.engine.rhs import RhsExecutor
from repro.errors import (
    EngineError,
    FiringError,
    LivelockError,
    WalError,
)


def _is_contained(exc):
    """Is *exc* a fault a policy may handle (vs. one that must escape)?"""
    from repro.durability.faultfs import SimulatedCrash

    return isinstance(exc, Exception) and not isinstance(exc, SimulatedCrash)


def _summarize(exc):
    return f"{type(exc).__name__}: {exc}"


def content_identity(instantiation):
    """Identity by WME *contents* (class + values), not time tags.

    ``modify`` always re-tags, so tag-based identity can never observe
    "the same instantiation firing again"; content identity can.  Used
    by the livelock detector and stable across matchers.
    """
    levels = range(len(instantiation.rule.ces))
    items = []
    for token in instantiation.tokens():
        for level in levels:
            wme = token.wme_at(level)
            if wme is not None:
                items.append(
                    (wme.wme_class, tuple(sorted(wme.as_dict().items())))
                )
    items.sort(key=repr)
    return (instantiation.rule.name, tuple(items))


# -- error policies ----------------------------------------------------------


class HaltPolicy:
    """Roll back, restore the refraction stamp, re-raise (the default)."""

    name = "halt"

    def decide(self, error, attempt, rule_failures):
        return ("halt", 0.0)

    def __repr__(self):
        return "halt"


class SkipPolicy:
    """Roll back, dead-letter the instantiation, carry on."""

    name = "skip"

    def decide(self, error, attempt, rule_failures):
        return ("skip", 0.0)

    def __repr__(self):
        return "skip"


class RetryPolicy:
    """Re-attempt the firing up to *attempts* times, then fall back.

    *backoff* seconds are slept before retry ``i`` scaled by
    ``2**(i-1)`` (exponential).  *then* is the policy applied once the
    retry budget is spent (default: :class:`SkipPolicy`).
    """

    name = "retry"

    def __init__(self, attempts=3, backoff=0.0, then=None):
        if attempts < 1:
            raise EngineError("retry policy needs attempts >= 1")
        self.attempts = attempts
        self.backoff = backoff
        self.then = then if then is not None else SkipPolicy()

    def decide(self, error, attempt, rule_failures):
        if attempt <= self.attempts:
            return ("retry", self.backoff * (2 ** (attempt - 1)))
        return self.then.decide(error, attempt, rule_failures)

    def __repr__(self):
        return f"retry({self.attempts}, backoff={self.backoff}, {self.then})"


class QuarantinePolicy:
    """Skip failures; after *after* failures detach the whole rule.

    The failure count is cumulative per rule across the run (not per
    instantiation), so a rule that keeps producing poison
    instantiations is eventually taken out of conflict resolution
    entirely — its instantiations park outside the conflict set until
    :meth:`RuleEngine.release_rule`.
    """

    name = "quarantine"

    def __init__(self, after=3):
        if after < 1:
            raise EngineError("quarantine policy needs after >= 1")
        self.after = after

    def decide(self, error, attempt, rule_failures):
        if rule_failures >= self.after:
            return ("quarantine", 0.0)
        return ("skip", 0.0)

    def __repr__(self):
        return f"quarantine(after={self.after})"


def policy_named(spec):
    """Parse an ``on_error`` spec: object, or string form.

    Strings: ``halt``, ``skip``, ``retry``, ``retry:N``,
    ``retry:N:BACKOFF``, ``retry:N:BACKOFF:THEN``, ``quarantine``,
    ``quarantine:K``.
    """
    if not isinstance(spec, str):
        if hasattr(spec, "decide"):
            return spec
        raise EngineError(f"not an error policy: {spec!r}")
    head, _, rest = spec.partition(":")
    # The THEN tail of a retry spec is itself a policy spec, so it may
    # contain colons of its own — split off at most the two scalars.
    parts = rest.split(":", 2) if rest else []
    try:
        if head == "halt" and not parts:
            return HaltPolicy()
        if head == "skip" and not parts:
            return SkipPolicy()
        if head == "retry":
            attempts = int(parts[0]) if len(parts) > 0 else 3
            backoff = float(parts[1]) if len(parts) > 1 else 0.0
            then = policy_named(parts[2]) if len(parts) > 2 else None
            return RetryPolicy(attempts, backoff, then)
        if head == "quarantine" and len(parts) <= 1:
            after = int(parts[0]) if parts else 3
            return QuarantinePolicy(after)
    except ValueError as error:
        raise EngineError(
            f"malformed error policy {spec!r}: {error}"
        ) from None
    raise EngineError(
        f"unknown error policy {spec!r}; expected halt, skip, "
        f"retry[:n[:backoff[:then]]], or quarantine[:after]"
    )


# -- dead letters and the quarantine registry --------------------------------


class DeadLetter:
    """One poison instantiation the engine gave up on."""

    __slots__ = ("rule_name", "cycle", "attempts", "action_path",
                 "error", "signature", "outcome")

    def __init__(self, rule_name, cycle, attempts, action_path, error,
                 signature, outcome):
        self.rule_name = rule_name
        self.cycle = cycle
        self.attempts = attempts
        self.action_path = tuple(action_path)
        self.error = error
        self.signature = signature
        self.outcome = outcome

    def __repr__(self):
        path = ".".join(str(i) for i in self.action_path) or "-"
        return (
            f"DeadLetter({self.rule_name} @cycle {self.cycle}, "
            f"action {path}, {self.attempts} attempt(s), "
            f"{self.outcome}: {self.error})"
        )


class ReliabilityManager:
    """Per-engine policies, failure counts, dead letters, quarantine."""

    def __init__(self, default_policy=None):
        self.default_policy = (
            policy_named(default_policy)
            if default_policy is not None else HaltPolicy()
        )
        self.rule_policies = {}
        self.failure_counts = {}
        self.dead_letters = []
        self.quarantined = {}

    def set_policy(self, policy, rule_name=None):
        policy = policy_named(policy)
        if rule_name is None:
            self.default_policy = policy
        else:
            self.rule_policies[rule_name] = policy
        return policy

    def policy_for(self, rule_name):
        return self.rule_policies.get(rule_name, self.default_policy)

    def record_failure(self, rule_name):
        count = self.failure_counts.get(rule_name, 0) + 1
        self.failure_counts[rule_name] = count
        return count

    def add_dead_letter(self, letter):
        self.dead_letters.append(letter)
        return letter

    def quarantine(self, engine, rule_name, reason):
        """Park *rule_name* out of conflict resolution."""
        parked = engine.conflict_set.quarantine_rule(rule_name)
        self.quarantined[rule_name] = {
            "cycle": engine.cycle_count,
            "failures": self.failure_counts.get(rule_name, 0),
            "reason": reason,
            "parked": parked,
        }
        engine.stats.incr("rules_quarantined")
        return parked

    def release(self, engine, rule_name):
        """Re-admit a quarantined rule's instantiations."""
        self.quarantined.pop(rule_name, None)
        self.failure_counts.pop(rule_name, None)
        return engine.conflict_set.release_rule(rule_name)

    def clear_runtime_state(self, engine):
        """Forget failures/dead letters and release every quarantine
        (the ``reset()`` semantics: fresh scenario, same rule base)."""
        for rule_name in list(self.quarantined):
            engine.conflict_set.release_rule(rule_name)
        self.quarantined.clear()
        self.failure_counts.clear()
        self.dead_letters.clear()


# -- the transactional firing ------------------------------------------------


class _FiringTransaction:
    """Pre-fire snapshot + staged effects for one firing attempt."""

    __slots__ = ("engine", "instantiation", "record", "savepoint",
                 "refraction", "halted", "output_mark", "fault")

    def __init__(self, engine, instantiation, record):
        self.engine = engine
        self.instantiation = instantiation
        self.record = record
        durability = engine.durability
        self.fault = (
            durability.config.fault if durability is not None else None
        )

    def begin(self):
        """Snapshot pre-fire state, stage effects, open the WAL bracket."""
        engine = self.engine
        self.refraction = self.instantiation.refraction_state()
        self.halted = engine.halted
        self.output_mark = len(engine.tracer.output)
        self.savepoint = engine.wm.begin_transaction()
        self.instantiation.mark_fired()
        if engine.durability is not None:
            try:
                engine.durability.log_fire(self.instantiation)
            except BaseException:
                # The bracket never opened: nothing durable happened, so
                # undo the in-memory half and let the failure escape raw
                # (an unusable log is infrastructure, not a rule fault).
                self.instantiation.restore_refraction(self.refraction)
                engine.wm.rollback_transaction(self.savepoint, engine.stats)
                raise

    def commit(self):
        """Flush staged effects (WAL first), then close the bracket."""
        engine = self.engine
        try:
            engine.wm.commit_transaction(self.savepoint, engine.stats)
        except (WalError, OSError):
            if not engine.wm.in_batch:
                raise  # an observer already consumed the flush
            # The write-ahead append refused before any observer saw the
            # flush and the batch was reopened: unwind it and let the
            # caller decide (FiringError with stage="commit").
            engine.wm.rollback_transaction(self.savepoint, engine.stats)
            raise
        if engine.durability is not None:
            try:
                engine.durability.log_fire_end()
            except (WalError, OSError) as error:
                # The effects are durable but the terminator is not;
                # recovery will roll the firing back.  Surface it
                # instead of discarding: counter + trace note.
                engine.stats.incr("wal_append_errors")
                self.record.note = (
                    f"fire-end append failed: {_summarize(error)}"
                )

    def roll_back(self):
        """Rewind memory, output, and the halt flag to the snapshot."""
        engine = self.engine
        if self.fault is not None:
            self.fault.hit("fire.rollback")
        engine.wm.rollback_transaction(self.savepoint, engine.stats)
        engine.halted = self.halted
        output = engine.tracer.output
        while len(output) > self.output_mark:
            output.pop()
        if self.fault is not None:
            self.fault.hit("fire.abort")

    def unwind_raw(self):
        """Rollback for an *uncontained* exception escaping the RHS.

        Same in-memory rewind as :meth:`roll_back` — the staged batch
        must not leak into later operations — but with no fault-point
        hits (a simulated crash must not cascade) and no WAL record:
        the bracket stays open in the log, so recovery rolls the
        firing back wholesale, agreeing with memory.
        """
        engine = self.engine
        engine.wm.rollback_transaction(self.savepoint, engine.stats)
        engine.halted = self.halted
        output = engine.tracer.output
        while len(output) > self.output_mark:
            output.pop()
        self.instantiation.restore_refraction(self.refraction)

    def restore_refraction(self):
        self.instantiation.restore_refraction(self.refraction)

    def log_abort(self, outcome, error):
        """Close the WAL bracket as rolled back, recording the outcome.

        Recovery replays the record: ``halt`` restores the refraction
        stamp, every other outcome leaves it consumed — exactly what
        the live engine did.  A failed append is surfaced, not fatal:
        the bracket then stays open in the log and recovery rolls the
        firing back wholesale, which agrees with memory anyway.
        """
        engine = self.engine
        if engine.durability is None:
            return
        try:
            engine.durability.log_abort(self.instantiation, outcome, error)
        except (WalError, OSError) as log_error:
            engine.stats.incr("wal_append_errors")
            self.record.note = (
                f"abort append failed: {_summarize(log_error)}"
            )


def fire(engine, instantiation, plan=None):
    """Fire *instantiation* atomically under the rule's error policy.

    Returns the :class:`~repro.engine.tracing.FiringRecord` of the
    committed firing, or ``None`` when the policy abandoned it
    (skip/quarantine).  Raises :class:`~repro.errors.FiringError`
    under ``halt`` — after full rollback.

    *plan* is a :class:`~repro.engine.parallel.FiringPlan` speculated
    by the firing pool: the first attempt replays its recorded actions
    instead of evaluating the RHS; retries (and everything after a
    replay failure) fall back to live execution, so policy behaviour
    is identical either way.
    """
    reliability = engine.reliability
    rule_name = instantiation.rule.name
    policy = reliability.policy_for(rule_name)
    attempt = 0
    while True:
        attempt += 1
        engine.cycle_count += 1
        record = engine.tracer.begin_firing(engine.cycle_count,
                                            instantiation)
        analysis = engine.analyses.get(rule_name)
        if analysis is None:
            raise EngineError(f"rule {rule_name} is not registered")
        txn = _FiringTransaction(engine, instantiation, record)
        txn.begin()
        if plan is not None and attempt == 1:
            executor = PlanReplayer(engine, plan, record)
        else:
            executor = RhsExecutor(
                engine, instantiation.rule, analysis, instantiation,
                record
            )
        error = None
        try:
            if engine.stats.enabled:
                started = perf_counter()
                executor.run()
                engine.stats.cycle(rule_name, perf_counter() - started)
            else:
                executor.run()
        except BaseException as exc:
            if not _is_contained(exc):
                # Simulated crash / interrupt: no policy applies, but
                # the staged batch must not leak into later operations.
                txn.unwind_raw()
                raise
            txn.roll_back()
            error = FiringError(
                f"rule {rule_name} failed at action "
                f"{'.'.join(map(str, executor.action_path)) or '?'}: "
                f"{_summarize(exc)}",
                rule_name=rule_name, cycle=record.cycle, attempt=attempt,
                action_path=executor.action_path, stage="rhs",
            )
            error.__cause__ = exc
        else:
            try:
                txn.commit()
            except (WalError, OSError) as exc:
                if engine.wm.in_batch:
                    raise  # commit could not unwind; don't double-handle
                engine.halted = txn.halted
                output = engine.tracer.output
                while len(output) > txn.output_mark:
                    output.pop()
                error = FiringError(
                    f"rule {rule_name} failed publishing its effects: "
                    f"{_summarize(exc)}",
                    rule_name=rule_name, cycle=record.cycle,
                    attempt=attempt, action_path=(), stage="commit",
                )
                error.__cause__ = exc
            else:
                return record

        # -- containment: the attempt failed and is fully rolled back --
        failures = reliability.record_failure(rule_name)
        outcome, delay = policy.decide(error, attempt, failures)
        record.outcome = outcome
        record.error = _summarize(error.__cause__)
        engine.stats.incr("firing_aborts")
        if outcome == "halt":
            txn.restore_refraction()
            txn.log_abort("halt", error)
            raise error
        if outcome == "retry":
            txn.log_abort("retry", error)
            if delay:
                time.sleep(delay)
            continue
        # skip / quarantine: the stamp stays consumed so the poison
        # instantiation is not re-selected forever.
        txn.log_abort(outcome, error)
        reliability.add_dead_letter(DeadLetter(
            rule_name, record.cycle, attempt, error.action_path,
            _summarize(error.__cause__),
            _fired_signature(instantiation), outcome,
        ))
        engine.stats.incr("dead_letters")
        if outcome == "quarantine":
            reliability.quarantine(engine, rule_name,
                                   _summarize(error.__cause__))
            if engine.durability is not None:
                engine.durability.log_quarantine(rule_name)
        return None


def _fired_signature(instantiation):
    from repro.durability.manager import fired_signature

    return fired_signature(instantiation)


# -- run watchdogs -----------------------------------------------------------


class LivelockDetector:
    """Counts recurrences of (instantiation content, WM fingerprint).

    A quiescing run can revisit a content state, but the same rule
    firing on the same content and leaving working memory at the same
    content fingerprint more than *threshold* times is a refire cycle
    going nowhere — tag-level state always advances, content-level
    state is what spins.
    """

    __slots__ = ("threshold", "_counts")

    def __init__(self, threshold):
        if threshold < 1:
            raise EngineError("livelock threshold must be >= 1")
        self.threshold = threshold
        self._counts = {}

    def observe(self, identity, fingerprint):
        """Record one firing; True when it crossed the threshold."""
        key = (identity, fingerprint)
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        return count > self.threshold


class RunReport:
    """Why a guarded run stopped; ``engine.last_run_report``."""

    __slots__ = ("fired", "cycles", "conflicted", "abandoned", "reason",
                 "elapsed", "livelock_rule")

    def __init__(self, fired, reason, elapsed, cycles=None,
                 conflicted=None, abandoned=None, livelock_rule=None):
        self.fired = fired
        self.reason = reason
        self.elapsed = elapsed
        self.cycles = cycles
        self.conflicted = conflicted
        self.abandoned = abandoned
        self.livelock_rule = livelock_rule

    def __repr__(self):
        extra = ""
        if self.livelock_rule is not None:
            extra = f", livelocked on {self.livelock_rule}"
        return (
            f"RunReport({self.fired} fired, {self.reason} "
            f"after {self.elapsed:.3f}s{extra})"
        )


def _make_detector(engine, livelock_threshold):
    if livelock_threshold is None:
        return None
    engine.wm.enable_fingerprint()
    return LivelockDetector(livelock_threshold)


def _livelock(engine, on_livelock, rule_name, count):
    if on_livelock == "raise":
        raise LivelockError(
            f"livelock: rule {rule_name} fired more than {count} times "
            f"with no net working-memory change"
        )
    if on_livelock != "stop":
        raise EngineError(
            f"on_livelock must be 'stop' or 'raise', got {on_livelock!r}"
        )


def run_guarded(engine, limit=None, *, wall_clock=None, deadline=None,
                livelock_threshold=None, on_livelock="stop"):
    """``RuleEngine.run`` with budgets and the livelock watchdog.

    *deadline* is an absolute :func:`time.monotonic` instant (the
    service layer propagates a client's per-request deadline here);
    crossing it stops the run with reason ``"deadline"`` — distinct
    from ``"wall_clock"`` so callers can tell a client-imposed cutoff
    from the server-side cap.
    """
    if on_livelock not in ("stop", "raise"):
        raise EngineError(
            f"on_livelock must be 'stop' or 'raise', got {on_livelock!r}"
        )
    detector = _make_detector(engine, livelock_threshold)
    started = perf_counter()
    fired = 0
    reason = "quiescent"
    culprit = None
    while True:
        if limit is not None and fired >= limit:
            reason = "limit"
            break
        if deadline is not None and monotonic() >= deadline:
            reason = "deadline"
            break
        if (wall_clock is not None
                and perf_counter() - started >= wall_clock):
            reason = "wall_clock"
            break
        if engine.halted:
            reason = "halt"
            break
        instantiation = engine.conflict_set.select(engine.strategy)
        if instantiation is None:
            reason = "quiescent"
            break
        if engine.fire(instantiation) is None:
            continue  # abandoned (skip/quarantine): nothing changed
        fired += 1
        if detector is not None and detector.observe(
            content_identity(instantiation),
            engine.wm.content_fingerprint(),
        ):
            culprit = instantiation.rule.name
            _livelock(engine, on_livelock, culprit, detector.threshold)
            reason = "livelock"
            break
    engine.last_run_report = RunReport(
        fired, reason, perf_counter() - started, livelock_rule=culprit
    )
    return fired


def run_parallel_guarded(engine, max_cycles=None, *, wall_clock=None,
                         deadline=None, firing_budget=None,
                         livelock_threshold=None, on_livelock="stop"):
    """``RuleEngine.run_parallel`` with budgets and the watchdog.

    Livelock is judged per parallel cycle: a whole cycle that fires
    but returns working memory to an already-seen content fingerprint
    more than the threshold is a cycle-level refire loop.  *deadline*
    is an absolute :func:`time.monotonic` cutoff, as in
    :func:`run_guarded`.
    """
    if on_livelock not in ("stop", "raise"):
        raise EngineError(
            f"on_livelock must be 'stop' or 'raise', got {on_livelock!r}"
        )
    detector = _make_detector(engine, livelock_threshold)
    started = perf_counter()
    cycles = 0
    total_fired = 0
    total_conflicted = 0
    total_abandoned = 0
    reason = "quiescent"
    culprit = None
    while max_cycles is None or cycles < max_cycles:
        if deadline is not None and monotonic() >= deadline:
            reason = "deadline"
            break
        if (wall_clock is not None
                and perf_counter() - started >= wall_clock):
            reason = "wall_clock"
            break
        if (firing_budget is not None
                and total_fired >= firing_budget):
            reason = "limit"
            break
        fired, conflicted, abandoned = engine.parallel_cycle()
        if fired == 0 and conflicted == 0 and abandoned == 0:
            reason = "halt" if engine.halted else "quiescent"
            break
        cycles += 1
        total_fired += fired
        total_conflicted += conflicted
        total_abandoned += abandoned
        if engine.halted:
            reason = "halt"
            break
        if detector is not None and fired and detector.observe(
            "(cycle)", engine.wm.content_fingerprint()
        ):
            culprit = "(parallel cycle)"
            _livelock(engine, on_livelock, culprit, detector.threshold)
            reason = "livelock"
            break
    else:
        reason = "limit"
    engine.last_run_report = RunReport(
        total_fired, reason, perf_counter() - started, cycles=cycles,
        conflicted=total_conflicted, abandoned=total_abandoned,
        livelock_rule=culprit,
    )
    return ParallelRunResult(
        cycles, total_fired, total_conflicted, total_abandoned
    )
