"""Firing traces and statistics.

Every firing produces a :class:`FiringRecord` capturing which rule
fired, on which time tags, and how many WM actions of each kind the RHS
performed.  The per-firing action counts are the paper's parallelism
proxy ("the number of actions in a set-oriented rule should be
substantially greater") measured by experiment C3.

By default the tracer keeps every record — the paper-claim tests
inspect complete trajectories.  For long-running production workloads
pass ``max_records`` to switch both the firing list and the ``write``
output to bounded ring buffers; dropped records are counted (and
surfaced through the stats hook as ``tracer_dropped_firings`` /
``tracer_dropped_output``) so a profile never silently under-reports.
"""

from __future__ import annotations

from collections import deque

from repro.engine.stats import NULL_STATS


class FiringRecord:
    """What one rule firing did."""

    __slots__ = (
        "cycle",
        "rule_name",
        "is_set_oriented",
        "time_tags",
        "token_count",
        "makes",
        "removes",
        "modifies",
        "writes",
        "binds",
        "touched_tags",
        "touched_ops",
        "_chain_roots",
        "outcome",
        "error",
        "note",
    )

    def __init__(self, cycle, rule_name, is_set_oriented, time_tags,
                 token_count):
        self.cycle = cycle
        self.rule_name = rule_name
        self.is_set_oriented = is_set_oriented
        self.time_tags = tuple(time_tags)
        self.token_count = token_count
        self.makes = 0
        self.removes = 0
        self.modifies = 0
        self.writes = 0
        self.binds = 0
        # One entry per WM action: the touched element's *chain root*
        # time tag, or None for a make (used by the parallel-execution
        # cost model).  A modify re-tags its element, so the chain root
        # — the tag the element had when this firing first touched its
        # lineage — is recorded instead of the momentary tag: two
        # modifies of the same logical element form one dependency
        # chain even though the second one sees a fresh tag.
        self.touched_tags = []
        # Parallel list of (kind, root) pairs, kind in
        # {"make", "remove", "modify"}; the cost model needs the kind
        # because the executor performs a modify as remove+insert on
        # the same element (a 2-unit chain link).
        self.touched_ops = []
        self._chain_roots = {}
        # Reliability layer: "fired", or the abort outcome of a rolled
        # back attempt (halt/skip/retry/quarantine) plus the error; the
        # rolled-back WM action counts above describe staged effects
        # that never committed.
        self.outcome = "fired"
        self.error = None
        # Non-fatal anomaly noted by the engine (e.g. a WAL append that
        # failed after the effects were already published).
        self.note = None

    def touch(self, kind, tag=None, new_tag=None):
        """Record one WM action for the parallelism model.

        *tag* is the time tag of the element the action removed or
        modified (None for a make).  *new_tag*, for a modify, is the
        replacement element's tag: it joins the original element's
        dependency chain, so a later action on the replacement is
        correctly charged to the same chain.
        """
        root = None
        if tag is not None:
            root = self._chain_roots.get(tag, tag)
        self.touched_tags.append(root)
        self.touched_ops.append((kind, root))
        if new_tag is not None and root is not None:
            self._chain_roots[new_tag] = root

    @property
    def aborted(self):
        """Was this attempt rolled back (its effects never committed)?"""
        return self.outcome != "fired"

    @property
    def wm_actions(self):
        """WM changes this firing performed (the parallelism proxy)."""
        return self.makes + self.removes + self.modifies

    @property
    def total_actions(self):
        return self.wm_actions + self.writes + self.binds

    def __repr__(self):
        return (
            f"FiringRecord({self.cycle}: {self.rule_name}, "
            f"{self.wm_actions} wm actions)"
        )


class Tracer:
    """Accumulates firing records and ``write`` output.

    *max_records* bounds both collections as ring buffers (oldest
    records evicted first); the default ``None`` keeps everything.
    """

    def __init__(self, echo=False, max_records=None, stats=None):
        self.echo = echo
        self.max_records = max_records
        self.stats = stats if stats is not None else NULL_STATS
        if max_records is None:
            self.firings = []
            self.output = []
        else:
            self.firings = deque(maxlen=max_records)
            self.output = deque(maxlen=max_records)
        self.dropped_firings = 0
        self.dropped_output = 0

    def begin_firing(self, cycle, instantiation):
        record = FiringRecord(
            cycle,
            instantiation.rule.name,
            instantiation.is_set_oriented,
            instantiation.recency_key(),
            len(instantiation.tokens()),
        )
        if (self.max_records is not None
                and len(self.firings) == self.max_records):
            self.dropped_firings += 1
            self.stats.incr("tracer_dropped_firings")
        self.firings.append(record)
        return record

    def write(self, text):
        if (self.max_records is not None
                and len(self.output) == self.max_records):
            self.dropped_output += 1
            self.stats.incr("tracer_dropped_output")
        self.output.append(text)
        if self.echo:
            print(text)

    @property
    def dropped_records(self):
        """Records evicted from the ring buffers (0 in unbounded mode)."""
        return self.dropped_firings + self.dropped_output

    # -- summaries ----------------------------------------------------------

    @property
    def firing_count(self):
        return len(self.firings)

    def firings_of(self, rule_name):
        return [f for f in self.firings if f.rule_name == rule_name]

    def actions_per_firing(self):
        """WM actions per firing, in firing order."""
        return [record.wm_actions for record in self.firings]

    def total_wm_actions(self):
        return sum(record.wm_actions for record in self.firings)

    def clear(self):
        self.firings.clear()
        self.output.clear()
        self.dropped_firings = 0
        self.dropped_output = 0
