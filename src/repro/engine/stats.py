"""Node-level match statistics: the engine's observability layer.

The paper's quantitative claims — S-node incremental aggregation beats
re-matching, join sharing and indexing cut work, set firings raise
actions-per-firing — are claims about *match-level work*, not only
wall-clock time.  This module supplies the counters those claims are
measured against:

* per-node activation counts (alpha adds/removes, left/right join
  activations), join tests attempted vs. passed, index probes vs. full
  memory scans, tokens created/deleted;
* memory occupancy with high-water marks (beta memories, alpha
  memories, S-node γ-memories);
* S-node marks emitted by kind (``+`` / ``-`` / ``time``);
* per-cycle wall-clock timing aggregated per rule;
* a JSON-lines event sink for long runs, and a structured
  ``snapshot()`` / ``to_json()`` report.

The hook is designed for **zero overhead when disabled**: every
instrumented component holds a stats object that defaults to the shared
:data:`NULL_STATS` singleton, whose hooks are all no-ops, so the hot
path pays one attribute access plus an empty call — and the costlier
call sites additionally gate on the ``enabled`` class attribute.

Wire it end-to-end with::

    from repro import MatchStats, RuleEngine

    stats = MatchStats()
    engine = RuleEngine(stats=stats)
    ...
    print(stats.format_report())
    report = stats.snapshot()          # nested dicts
    text = stats.to_json(indent=2)     # same, serialised

or from the command line with ``repro-ops program.ops --profile``.
See ``docs/OBSERVABILITY.md`` for the schema and a worked example.
"""

from __future__ import annotations

import json


class NullStats:
    """The disabled hook: every method is a no-op.

    Shared through the :data:`NULL_STATS` singleton so identity checks
    and ``enabled`` gates stay trivially cheap.
    """

    __slots__ = ()

    enabled = False

    # -- registration / lifecycle ---------------------------------------

    def register_node(self, kind, detail=""):
        """Return the stats key for a new network node (None when off)."""
        return None

    def attach_sink(self, sink):
        pass

    def close(self):
        pass

    # -- hot-path hooks --------------------------------------------------

    def alpha_activation(self, key, sign, size):
        pass

    def left_activation(self, key):
        pass

    def right_activation(self, key):
        pass

    def join_batch(self, key, attempted, passed):
        pass

    def join_test(self, key, passed):
        pass

    def index_probe(self, key, candidates):
        pass

    def full_scan(self, key, candidates):
        pass

    def token_created(self):
        pass

    def token_deleted(self):
        pass

    def memory_size(self, key, size):
        pass

    def gamma_size(self, key, groups, tokens=0):
        pass

    def snode_mark(self, key, kind):
        pass

    def batch_flush(self, submitted, net, coalesced):
        pass

    def group_probe(self, key, groups, candidates):
        pass

    def snode_batch(self, key, sois, reevals):
        pass

    def shard_batch(self, shards, events):
        pass

    def kernel_compiled(self):
        pass

    def kernel_cache_hit(self):
        pass

    def cycle(self, rule_name, duration):
        pass

    def incr(self, name, amount=1):
        pass

    # -- reporting --------------------------------------------------------

    def snapshot(self):
        return {"enabled": False}

    def to_json(self, indent=None):
        return json.dumps(self.snapshot(), indent=indent)

    def format_report(self):
        return "match statistics are disabled (pass stats=MatchStats())"


#: The shared disabled hook handed to every node by default.
NULL_STATS = NullStats()


def _node_record():
    return {
        "activations": 0,
        "left_activations": 0,
        "right_activations": 0,
        "join_tests": 0,
        "join_passed": 0,
        "index_probes": 0,
        "probe_candidates": 0,
        "full_scans": 0,
        "scan_candidates": 0,
        "size": 0,
        "size_hwm": 0,
        "groups": 0,
        "groups_hwm": 0,
        "tokens": 0,
        "tokens_hwm": 0,
        "marks_add": 0,
        "marks_remove": 0,
        "marks_time": 0,
        "group_probes": 0,
        "group_probe_candidates": 0,
        "batch_sois": 0,
        "batch_reevals": 0,
    }


class MatchStats(NullStats):
    """The live collector: per-node counters, timings, and an event sink.

    One instance may be shared by several matchers (the differential
    tests do exactly that); node keys returned by :meth:`register_node`
    keep their contributions separate.
    """

    __slots__ = (
        "totals",
        "counters",
        "nodes",
        "rules",
        "cycle_count",
        "cycle_time",
        "_seq",
        "_sink",
        "_owns_sink",
    )

    enabled = True

    _TOTAL_FIELDS = (
        "alpha_activations",
        "left_activations",
        "right_activations",
        "join_tests_attempted",
        "join_tests_passed",
        "index_probes",
        "index_probe_candidates",
        "full_scans",
        "full_scan_candidates",
        "tokens_created",
        "tokens_deleted",
        "snode_marks_add",
        "snode_marks_remove",
        "snode_marks_time",
        "batches",
        "batch_deltas_submitted",
        "batch_deltas_net",
        "deltas_coalesced",
        "group_probes",
        "group_probe_candidates",
        "snode_batch_sois",
        "snode_batch_reevals",
        "shard_batches",
        "shard_events_routed",
        "kernels_compiled",
        "kernel_cache_hits",
    )

    def __init__(self, event_sink=None):
        self.totals = {name: 0 for name in self._TOTAL_FIELDS}
        self.counters = {}
        self.nodes = {}
        self.rules = {}
        self.cycle_count = 0
        self.cycle_time = 0.0
        self._seq = 0
        self._sink = None
        self._owns_sink = False
        if event_sink is not None:
            self.attach_sink(event_sink)

    # -- registration / lifecycle ---------------------------------------

    def register_node(self, kind, detail=""):
        self._seq += 1
        label = f"{kind}:{detail}#{self._seq}" if detail else (
            f"{kind}#{self._seq}"
        )
        self.nodes[label] = _node_record()
        return label

    def attach_sink(self, sink):
        """Stream events as JSON lines to *sink* (path or file object)."""
        if isinstance(sink, str):
            self._sink = open(sink, "a", encoding="utf-8")
            self._owns_sink = True
        else:
            self._sink = sink
            self._owns_sink = False

    def close(self):
        """Flush and (if we opened it) close the event sink."""
        if self._sink is None:
            return
        flush = getattr(self._sink, "flush", None)
        if flush is not None:
            flush()
        if self._owns_sink:
            self._sink.close()
        self._sink = None

    def emit(self, event):
        """Write one event (a dict) to the JSON-lines sink, if attached."""
        if self._sink is not None:
            self._sink.write(json.dumps(event) + "\n")

    # -- hot-path hooks --------------------------------------------------

    def alpha_activation(self, key, sign, size):
        self.totals["alpha_activations"] += 1
        if key is not None:
            node = self.nodes[key]
            node["activations"] += 1
            node["size"] = size
            if size > node["size_hwm"]:
                node["size_hwm"] = size

    def left_activation(self, key):
        self.totals["left_activations"] += 1
        if key is not None:
            self.nodes[key]["left_activations"] += 1

    def right_activation(self, key):
        self.totals["right_activations"] += 1
        if key is not None:
            self.nodes[key]["right_activations"] += 1

    def join_batch(self, key, attempted, passed):
        self.totals["join_tests_attempted"] += attempted
        self.totals["join_tests_passed"] += passed
        if key is not None:
            node = self.nodes[key]
            node["join_tests"] += attempted
            node["join_passed"] += passed

    def join_test(self, key, passed):
        self.totals["join_tests_attempted"] += 1
        if passed:
            self.totals["join_tests_passed"] += 1
        if key is not None:
            node = self.nodes[key]
            node["join_tests"] += 1
            if passed:
                node["join_passed"] += 1

    def index_probe(self, key, candidates):
        self.totals["index_probes"] += 1
        self.totals["index_probe_candidates"] += candidates
        if key is not None:
            node = self.nodes[key]
            node["index_probes"] += 1
            node["probe_candidates"] += candidates

    def full_scan(self, key, candidates):
        self.totals["full_scans"] += 1
        self.totals["full_scan_candidates"] += candidates
        if key is not None:
            node = self.nodes[key]
            node["full_scans"] += 1
            node["scan_candidates"] += candidates

    def token_created(self):
        self.totals["tokens_created"] += 1

    def token_deleted(self):
        self.totals["tokens_deleted"] += 1

    def memory_size(self, key, size):
        if key is not None:
            node = self.nodes[key]
            node["size"] = size
            if size > node["size_hwm"]:
                node["size_hwm"] = size

    def gamma_size(self, key, groups, tokens=0):
        if key is not None:
            node = self.nodes[key]
            node["groups"] = groups
            if groups > node["groups_hwm"]:
                node["groups_hwm"] = groups
            node["tokens"] = tokens
            if tokens > node["tokens_hwm"]:
                node["tokens_hwm"] = tokens

    _MARK_FIELD = {
        "+": ("snode_marks_add", "marks_add"),
        "-": ("snode_marks_remove", "marks_remove"),
        "time": ("snode_marks_time", "marks_time"),
    }

    def snode_mark(self, key, kind):
        total_field, node_field = self._MARK_FIELD[kind]
        self.totals[total_field] += 1
        if key is not None:
            self.nodes[key][node_field] += 1

    def batch_flush(self, submitted, net, coalesced):
        """One delta-set flushed: raw deltas in, net deltas out."""
        self.totals["batches"] += 1
        self.totals["batch_deltas_submitted"] += submitted
        self.totals["batch_deltas_net"] += net
        self.totals["deltas_coalesced"] += coalesced

    def group_probe(self, key, groups, candidates):
        """A join node probed its index once per value *group*."""
        self.totals["group_probes"] += groups
        self.totals["group_probe_candidates"] += candidates
        if key is not None:
            node = self.nodes[key]
            node["group_probes"] += groups
            node["group_probe_candidates"] += candidates

    def snode_batch(self, key, sois, reevals):
        """An S-node flushed a batch: *sois* touched, *reevals* run."""
        self.totals["snode_batch_sois"] += sois
        self.totals["snode_batch_reevals"] += reevals
        if key is not None:
            node = self.nodes[key]
            node["batch_sois"] += sois
            node["batch_reevals"] += reevals

    def shard_batch(self, shards, events):
        """A sharded matcher fanned one delta-set out to *shards*."""
        self.totals["shard_batches"] += 1
        self.totals["shard_events_routed"] += events

    def kernel_compiled(self):
        """A node's test list was compiled to a fresh match kernel."""
        self.totals["kernels_compiled"] += 1

    def kernel_cache_hit(self):
        """A node reused a structurally identical compiled kernel."""
        self.totals["kernel_cache_hits"] += 1

    def cycle(self, rule_name, duration):
        self.cycle_count += 1
        self.cycle_time += duration
        entry = self.rules.get(rule_name)
        if entry is None:
            entry = self.rules[rule_name] = {"firings": 0, "time": 0.0}
        entry["firings"] += 1
        entry["time"] += duration
        if self._sink is not None:
            self.emit({
                "event": "cycle",
                "cycle": self.cycle_count,
                "rule": rule_name,
                "duration": duration,
            })

    def incr(self, name, amount=1):
        self.counters[name] = self.counters.get(name, 0) + amount

    # -- reporting --------------------------------------------------------

    def snapshot(self):
        """The full structured report as nested plain dicts."""
        return {
            "enabled": True,
            "totals": dict(self.totals),
            "counters": dict(self.counters),
            "nodes": {label: dict(node) for label, node in
                      self.nodes.items()},
            "rules": {name: dict(entry) for name, entry in
                      self.rules.items()},
            "cycles": {"count": self.cycle_count, "time": self.cycle_time},
        }

    def to_json(self, indent=None):
        return json.dumps(self.snapshot(), indent=indent)

    def emit_snapshot(self):
        """Write the full snapshot as one event to the sink."""
        if self._sink is not None:
            self.emit({"event": "snapshot", "stats": self.snapshot()})

    def format_report(self):
        """Per-rule and per-node tables, paper-benchmark style."""
        from repro.bench.harness import format_table

        sections = []
        if self.rules:
            rows = [
                (name, entry["firings"], f"{entry['time']:.4f}")
                for name, entry in sorted(self.rules.items())
            ]
            rows.append(("(total)", self.cycle_count,
                         f"{self.cycle_time:.4f}"))
            sections.append(format_table(
                "profile — per-rule firings",
                ["rule", "firings", "rhs time (s)"],
                rows,
            ))
        node_rows = []
        for label, node in self.nodes.items():
            node_rows.append((
                label,
                node["left_activations"] + node["right_activations"]
                + node["activations"],
                node["join_tests"],
                node["join_passed"],
                node["index_probes"],
                node["full_scans"],
                node["size_hwm"] or node["groups_hwm"],
                (f"{node['marks_add']}/{node['marks_remove']}/"
                 f"{node['marks_time']}"),
            ))
        if node_rows:
            sections.append(format_table(
                "profile — per-node match work",
                ["node", "activations", "tests", "passed", "probes",
                 "scans", "hwm", "marks +/-/t"],
                node_rows,
            ))
        total_rows = [
            (name, value) for name, value in self.totals.items()
        ]
        total_rows.extend(sorted(self.counters.items()))
        sections.append(format_table(
            "profile — totals",
            ["counter", "value"],
            total_rows,
        ))
        return "\n\n".join(sections)

    def __repr__(self):
        return (
            f"MatchStats({len(self.nodes)} nodes, "
            f"{self.cycle_count} cycles)"
        )
