"""The logical query plan and its interpreter.

Plans are trees of small node objects evaluated bottom-up by
:func:`execute_plan`; rows flow as environments binding one row dict
per table alias, so qualified references (``COND_E.wme_tag``) and
unambiguous bare names both resolve.  Comparison semantics are SQL's
three-valued logic: any comparison touching NULL is *unknown*, and only
*true* rows survive a filter.

Supported plan shapes cover everything the paper's Figure 6 needs and
the usual relational toolbox: scan → filter → (nested-loop) join →
group-by with aggregates (including ``collect``, the nested-relation
aggregate the figure's grouped WME-TAGS column calls for) → project →
distinct → order-by → limit.
"""

from __future__ import annotations

from repro import symbols
from repro.errors import QueryError
from repro.rdb import stats as _plan_stats

# ---------------------------------------------------------------------------
# Environments
# ---------------------------------------------------------------------------


class Env:
    """Bindings of table aliases to row dicts during evaluation."""

    __slots__ = ("frames",)

    def __init__(self, frames=None):
        self.frames = dict(frames) if frames else {}

    def bind(self, alias, row):
        merged = dict(self.frames)
        merged[alias] = row
        return Env(merged)

    def resolve(self, qualifier, name):
        if qualifier is not None:
            frame = self.frames.get(qualifier)
            if frame is None:
                raise QueryError(f"unknown table alias {qualifier!r}")
            if name not in frame:
                raise QueryError(f"{qualifier} has no column {name!r}")
            return frame[name]
        hits = [frame for frame in self.frames.values() if name in frame]
        if not hits:
            raise QueryError(f"unknown column {name!r}")
        if len(hits) > 1:
            raise QueryError(f"ambiguous column {name!r}; qualify it")
        return hits[0][name]


# ---------------------------------------------------------------------------
# Scalar expressions (SQL three-valued logic)
# ---------------------------------------------------------------------------


class Literal:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def evaluate(self, env):
        return self.value

    def __repr__(self):
        return f"Literal({self.value!r})"


class ColumnRef:
    """A possibly-qualified column reference."""

    __slots__ = ("name", "qualifier")

    def __init__(self, name, qualifier=None):
        self.name = name
        self.qualifier = qualifier

    def evaluate(self, env):
        return env.resolve(self.qualifier, self.name)

    @property
    def display(self):
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    def __repr__(self):
        return f"ColumnRef({self.display})"


_COMPARE_OPS = ("=", "!=", "<>", "<", "<=", ">", ">=")


class Comparison:
    """Binary comparison under 3VL: returns True, False, or None."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        if op not in _COMPARE_OPS:
            raise QueryError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env):
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if left is None or right is None:
            return None
        if self.op == "=":
            return _values_equal(left, right)
        if self.op in ("!=", "<>"):
            return not _values_equal(left, right)
        try:
            if self.op == "<":
                return left < right
            if self.op == "<=":
                return left <= right
            if self.op == ">":
                return left > right
            return left >= right
        except TypeError:
            raise QueryError(
                f"cannot compare {left!r} {self.op} {right!r}"
            ) from None

    def __repr__(self):
        return f"Comparison({self.left!r} {self.op} {self.right!r})"


def _values_equal(left, right):
    if symbols.is_number(left) and symbols.is_number(right):
        return left == right
    return type(left) is type(right) and left == right


class IsNull:
    """``expr IS [NOT] NULL`` — always two-valued."""

    __slots__ = ("operand", "negated")

    def __init__(self, operand, negated=False):
        self.operand = operand
        self.negated = negated

    def evaluate(self, env):
        result = self.operand.evaluate(env) is None
        return not result if self.negated else result

    def __repr__(self):
        word = "IS NOT NULL" if self.negated else "IS NULL"
        return f"IsNull({self.operand!r} {word})"


class LogicalAnd:
    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self.left = left
        self.right = right

    def evaluate(self, env):
        left = self.left.evaluate(env)
        if left is False:
            return False
        right = self.right.evaluate(env)
        if right is False:
            return False
        if left is None or right is None:
            return None
        return True

    def __repr__(self):
        return f"LogicalAnd({self.left!r}, {self.right!r})"


class LogicalOr:
    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self.left = left
        self.right = right

    def evaluate(self, env):
        left = self.left.evaluate(env)
        if left is True:
            return True
        right = self.right.evaluate(env)
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False

    def __repr__(self):
        return f"LogicalOr({self.left!r}, {self.right!r})"


class LogicalNot:
    __slots__ = ("operand",)

    def __init__(self, operand):
        self.operand = operand

    def evaluate(self, env):
        value = self.operand.evaluate(env)
        if value is None:
            return None
        return not value

    def __repr__(self):
        return f"LogicalNot({self.operand!r})"


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------

AGGREGATE_FUNCS = ("count", "sum", "min", "max", "avg", "collect")


class Aggregate:
    """An aggregate over a group: ``count(*)``, ``sum(col)``, ``collect``.

    ``collect`` gathers the group's (non-NULL) values into a list — the
    nested-relation column of the paper's Figure 6 result.
    """

    __slots__ = ("func", "operand", "distinct")

    def __init__(self, func, operand=None, distinct=False):
        if func not in AGGREGATE_FUNCS:
            raise QueryError(f"unknown aggregate {func!r}")
        if func != "count" and operand is None:
            raise QueryError(f"{func} needs a column argument")
        self.func = func
        self.operand = operand  # None means '*'
        self.distinct = distinct

    def compute(self, envs):
        if self.operand is None:
            values = [1 for _ in envs]  # count(*)
        else:
            values = [
                value
                for value in (self.operand.evaluate(env) for env in envs)
                if value is not None
            ]
        if self.distinct:
            seen = []
            for value in values:
                if value not in seen:
                    seen.append(value)
            values = seen
        if self.func == "count":
            return len(values)
        if self.func == "collect":
            return list(values)
        if not values:
            return None
        if self.func == "sum":
            return sum(values)
        if self.func == "avg":
            return sum(values) / len(values)
        if self.func == "min":
            return min(values)
        return max(values)

    @property
    def display(self):
        arg = "*" if self.operand is None else self.operand.display
        prefix = "distinct " if self.distinct else ""
        return f"{self.func}({prefix}{arg})"

    def __repr__(self):
        return f"Aggregate({self.display})"


# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------


class Scan:
    """Read one table under an alias (defaults to the table name)."""

    __slots__ = ("table_name", "alias")

    def __init__(self, table_name, alias=None):
        self.table_name = table_name
        self.alias = alias or table_name

    def execute(self, db):
        table = db.table(self.table_name)
        envs = [Env({self.alias: row}) for row in table.scan()]
        work = _plan_stats.counters
        if work is not None:
            work.rows_scanned += len(envs)
        return envs

    def __repr__(self):
        return f"Scan({self.table_name} AS {self.alias})"


class Filter:
    __slots__ = ("child", "predicate")

    def __init__(self, child, predicate):
        self.child = child
        self.predicate = predicate

    def execute(self, db):
        return [
            env
            for env in self.child.execute(db)
            if self.predicate.evaluate(env) is True
        ]

    def __repr__(self):
        return f"Filter({self.predicate!r})"


class Join:
    """Nested-loop join; with no condition it is a cross product."""

    __slots__ = ("left", "right", "condition")

    def __init__(self, left, right, condition=None):
        self.left = left
        self.right = right
        self.condition = condition

    def execute(self, db):
        left_envs = self.left.execute(db)
        right_envs = self.right.execute(db)
        work = _plan_stats.counters
        if work is not None:
            work.pairs_examined += len(left_envs) * len(right_envs)
        results = []
        for left_env in left_envs:
            for right_env in right_envs:
                merged = dict(left_env.frames)
                overlap = set(merged) & set(right_env.frames)
                if overlap:
                    raise QueryError(
                        f"duplicate alias(es) in join: {sorted(overlap)}"
                    )
                merged.update(right_env.frames)
                env = Env(merged)
                if (
                    self.condition is None
                    or self.condition.evaluate(env) is True
                ):
                    results.append(env)
        return results

    def __repr__(self):
        return f"Join(on={self.condition!r})"


class Project:
    """Evaluate (expr, name) pairs into plain output rows."""

    __slots__ = ("child", "outputs")

    def __init__(self, child, outputs):
        self.outputs = []
        for output in outputs:
            if isinstance(output, tuple):
                expression, name = output
            else:
                expression = output
                name = getattr(output, "display", None) or "column"
            self.outputs.append((expression, name))
        self.child = child

    def execute(self, db):
        rows = []
        for env in self.child.execute(db):
            row = {
                name: expression.evaluate(env)
                for expression, name in self.outputs
            }
            rows.append(Env({None: row}))
        return rows

    def __repr__(self):
        return f"Project({[name for _, name in self.outputs]})"


class GroupBy:
    """Group on key expressions; emit keys + aggregates per group.

    Output rows carry the key columns (named by their display text or an
    explicit ``(expr, name)`` pair) and one column per ``(Aggregate,
    name)``.  Rows with equal key tuples form one group; NULL keys group
    together, as in SQL.
    """

    __slots__ = ("child", "keys", "aggregates", "having")

    def __init__(self, child, keys, aggregates, having=None):
        self.child = child
        self.keys = [
            key if isinstance(key, tuple) else (key, key.display)
            for key in keys
        ]
        self.aggregates = list(aggregates)
        self.having = having
        self.child = child

    def execute(self, db):
        groups = {}
        order = []
        for env in self.child.execute(db):
            key = tuple(
                _hashable(expression.evaluate(env))
                for expression, _ in self.keys
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(env)
        rows = []
        for key in order:
            envs = groups[key]
            row = {}
            for (expression, name), value in zip(self.keys, key):
                row[name] = _unhash(value)
            for aggregate, name in self.aggregates:
                row[name] = aggregate.compute(envs)
            out_env = Env({None: row})
            if self.having is not None:
                if self.having.evaluate(out_env) is not True:
                    continue
            rows.append(out_env)
        return rows

    def __repr__(self):
        return f"GroupBy(keys={[name for _, name in self.keys]})"


class _Null:
    __repr__ = lambda self: "<NULL>"


_NULL_SENTINEL = _Null()


def _hashable(value):
    return _NULL_SENTINEL if value is None else value


def _unhash(value):
    return None if value is _NULL_SENTINEL else value


class OrderBy:
    """Sort by (expr, ascending) keys; NULLs sort first."""

    __slots__ = ("child", "sort_keys")

    def __init__(self, child, sort_keys):
        self.child = child
        self.sort_keys = [
            key if isinstance(key, tuple) else (key, True)
            for key in sort_keys
        ]

    def execute(self, db):
        rows = self.child.execute(db)

        def composite(env):
            parts = []
            for expression, ascending in self.sort_keys:
                value = expression.evaluate(env)
                null_rank = 0 if value is None else 1
                rank = (null_rank, _orderable(value))
                parts.append(rank if ascending else _Inverted(rank))
            return parts

        return sorted(rows, key=composite)

    def __repr__(self):
        return f"OrderBy({len(self.sort_keys)} keys)"


def _orderable(value):
    if value is None:
        return (0, 0, "")
    return symbols.sort_key(value) if symbols.is_value(value) else (2, 0, str(value))


class _Inverted:
    """Wrapper inverting comparison for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return other.value < self.value

    def __eq__(self, other):
        return self.value == other.value


class Distinct:
    __slots__ = ("child",)

    def __init__(self, child):
        self.child = child

    def execute(self, db):
        seen = []
        result = []
        for env in self.child.execute(db):
            snapshot = tuple(
                sorted(
                    (alias if alias else "", tuple(sorted(
                        (k, _freeze(v)) for k, v in row.items()
                    )))
                    for alias, row in env.frames.items()
                )
            )
            if snapshot not in seen:
                seen.append(snapshot)
                result.append(env)
        return result


def _freeze(value):
    return tuple(value) if isinstance(value, list) else value


class Limit:
    __slots__ = ("child", "count")

    def __init__(self, child, count):
        self.child = child
        self.count = count

    def execute(self, db):
        return self.child.execute(db)[: self.count]


def execute_plan(plan, db):
    """Run *plan* against *db*; returns a list of plain row dicts."""
    rows = []
    for env in plan.execute(db):
        if len(env.frames) == 1:
            rows.append(dict(next(iter(env.frames.values()))))
        else:
            merged = {}
            for alias, frame in env.frames.items():
                for name, value in frame.items():
                    merged[f"{alias}.{name}"] = value
            rows.append(merged)
    return rows
