"""Logical-plan optimisation: hash joins and filter pushdown.

Two classic rewrites, applied by :func:`optimize`:

* **hash join** — a :class:`~repro.rdb.query.Join` whose condition is
  (a conjunction containing) an equality between a left-side and a
  right-side column is replaced by :class:`HashJoin`, turning the
  O(|L|·|R|) nested loop into O(|L| + |R|) build/probe, with any
  residual condition applied per probe hit;
* **filter pushdown** — a :class:`~repro.rdb.query.Filter` directly
  above a join moves into the join's condition, where the hash-join
  rewrite can then exploit it.

The DIPS SOI queries are pure equi-joins over COND tables, so this is
exactly the optimisation a disk-based production system would lean on;
the ablation benchmark (``benchmarks/test_ablation_hash_join.py``)
measures the effect.
"""

from __future__ import annotations

from repro.rdb import query as q
from repro.rdb import stats as _plan_stats


def _conjuncts(condition):
    """Flatten a LogicalAnd tree into a list of conjuncts."""
    if isinstance(condition, q.LogicalAnd):
        return _conjuncts(condition.left) + _conjuncts(condition.right)
    return [condition]


def _conjoin(conditions):
    if not conditions:
        return None
    result = conditions[0]
    for condition in conditions[1:]:
        result = q.LogicalAnd(result, condition)
    return result


def _aliases_of(plan):
    """The table aliases a subplan produces."""
    if isinstance(plan, q.Scan):
        return {plan.alias}
    if isinstance(plan, (q.Join, HashJoin)):
        return _aliases_of(plan.left) | _aliases_of(plan.right)
    if isinstance(
        plan, (q.Filter, q.OrderBy, q.Distinct, q.Limit)
    ):
        return _aliases_of(plan.child)
    return set()


def _column_side(ref, left_aliases, right_aliases):
    """'left', 'right', or None (unresolvable/unqualified)."""
    if not isinstance(ref, q.ColumnRef) or ref.qualifier is None:
        return None
    if ref.qualifier in left_aliases:
        return "left"
    if ref.qualifier in right_aliases:
        return "right"
    return None


class HashJoin:
    """Equi-join evaluated by build (right) and probe (left).

    ``left_key``/``right_key`` are the equated column refs; a
    ``residual`` condition (possibly None) is evaluated on each probe
    hit.  NULL keys never join (SQL semantics).
    """

    __slots__ = ("left", "right", "left_key", "right_key", "residual")

    def __init__(self, left, right, left_key, right_key, residual=None):
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual

    def execute(self, db):
        right_envs = self.right.execute(db)
        buckets = {}
        for env in right_envs:
            key = self.right_key.evaluate(env)
            if key is None:
                continue
            buckets.setdefault(_hash_key(key), []).append(env)
        work = _plan_stats.counters
        results = []
        for left_env in self.left.execute(db):
            key = self.left_key.evaluate(left_env)
            if key is None:
                continue
            hits = buckets.get(_hash_key(key), ())
            if work is not None:
                work.pairs_examined += len(hits)
                work.probe_hits += len(hits)
            for right_env in hits:
                merged = dict(left_env.frames)
                merged.update(right_env.frames)
                env = q.Env(merged)
                if (
                    self.residual is None
                    or self.residual.evaluate(env) is True
                ):
                    results.append(env)
        return results

    def __repr__(self):
        return (
            f"HashJoin({self.left_key.display} = {self.right_key.display})"
        )


def _hash_key(value):
    # 2 == 2.0 must land in one bucket; Python hashing already agrees.
    return value


def optimize(plan):
    """Return an optimised copy of *plan* (the input is not mutated)."""
    return _rewrite(plan)


def _rewrite(plan):
    if isinstance(plan, q.Filter):
        child = _rewrite(plan.child)
        if isinstance(child, q.Join):
            merged = _conjoin(
                _conjuncts(plan.predicate)
                + (_conjuncts(child.condition) if child.condition else [])
            )
            return _rewrite(q.Join(child.left, child.right, merged))
        return q.Filter(child, plan.predicate)
    if isinstance(plan, q.Join):
        return _rewrite_join(plan)
    if isinstance(plan, q.Project):
        rewritten = q.Project.__new__(q.Project)
        rewritten.child = _rewrite(plan.child)
        rewritten.outputs = plan.outputs
        return rewritten
    if isinstance(plan, q.GroupBy):
        rewritten = q.GroupBy.__new__(q.GroupBy)
        rewritten.child = _rewrite(plan.child)
        rewritten.keys = plan.keys
        rewritten.aggregates = plan.aggregates
        rewritten.having = plan.having
        return rewritten
    if isinstance(plan, q.OrderBy):
        rewritten = q.OrderBy.__new__(q.OrderBy)
        rewritten.child = _rewrite(plan.child)
        rewritten.sort_keys = plan.sort_keys
        return rewritten
    if isinstance(plan, q.Distinct):
        return q.Distinct(_rewrite(plan.child))
    if isinstance(plan, q.Limit):
        return q.Limit(_rewrite(plan.child), plan.count)
    return plan


def _referenced_aliases(condition):
    """Qualifiers a condition mentions; None when any ref is unqualified."""
    refs = set()
    stack = [condition]
    while stack:
        node = stack.pop()
        if isinstance(node, q.ColumnRef):
            if node.qualifier is None:
                return None
            refs.add(node.qualifier)
        elif isinstance(node, q.Comparison):
            stack.extend((node.left, node.right))
        elif isinstance(node, (q.LogicalAnd, q.LogicalOr)):
            stack.extend((node.left, node.right))
        elif isinstance(node, q.LogicalNot):
            stack.append(node.operand)
        elif isinstance(node, q.IsNull):
            stack.append(node.operand)
    return refs


def _rewrite_join(plan):
    conjuncts = (
        _conjuncts(plan.condition) if plan.condition is not None else []
    )
    left_aliases = _aliases_of(plan.left)
    right_aliases = _aliases_of(plan.right)

    # Push single-side conjuncts below the join.
    left_only = []
    right_only = []
    spanning = []
    for conjunct in conjuncts:
        refs = _referenced_aliases(conjunct)
        if refs is not None and refs and refs <= left_aliases:
            left_only.append(conjunct)
        elif refs is not None and refs and refs <= right_aliases:
            right_only.append(conjunct)
        else:
            spanning.append(conjunct)

    left = plan.left
    if left_only:
        left = q.Filter(left, _conjoin(left_only))
    right = plan.right
    if right_only:
        right = q.Filter(right, _conjoin(right_only))
    left = _rewrite(left)
    right = _rewrite(right)

    # Pick one spanning equality as the hash key; the rest is residual.
    equi = None
    residual = []
    for conjunct in spanning:
        if (
            equi is None
            and isinstance(conjunct, q.Comparison)
            and conjunct.op == "="
        ):
            left_side = _column_side(
                conjunct.left, left_aliases, right_aliases
            )
            right_side = _column_side(
                conjunct.right, left_aliases, right_aliases
            )
            if left_side == "left" and right_side == "right":
                equi = (conjunct.left, conjunct.right)
                continue
            if left_side == "right" and right_side == "left":
                equi = (conjunct.right, conjunct.left)
                continue
        residual.append(conjunct)
    if equi is None:
        return q.Join(left, right, _conjoin(spanning))
    left_key, right_key = equi
    return HashJoin(left, right, left_key, right_key, _conjoin(residual))
