"""A mini SQL dialect: enough for the paper's Figure 6 and DIPS.

Supported statements::

    SELECT [DISTINCT] item [, item]* FROM t [AS a] [, t [AS a]]*
        [WHERE cond] [GROUP BY col [, col]*] [HAVING cond]
        [ORDER BY col [ASC|DESC] [, ...]] [LIMIT n]
    INSERT INTO t (col, ...) VALUES (v, ...) [, (v, ...)]*
    UPDATE t SET col = v [, ...] [WHERE cond]
    DELETE FROM t [WHERE cond]
    CREATE TABLE t (col [type] [NOT NULL], ...)
    DROP TABLE t

Select items are column references (``a.b`` or ``b``), literals, or
aggregates (``COUNT(*)``, ``COUNT(x)``, ``SUM/MIN/MAX/AVG/COLLECT(x)``),
optionally ``AS name``.  Conditions combine comparisons
(``= != <> < <= > >=``), ``IS [NOT] NULL``, ``AND``/``OR``/``NOT`` and
parentheses.  Identifiers may be double-quoted (``"COND-E"``) to allow
the paper's hyphenated table names; strings use single quotes; keywords
are case-insensitive.
"""

from __future__ import annotations

import re

from repro.errors import SqlError
from repro.rdb import query as q
from repro.rdb.schema import Column, Schema

_TOKEN_RE = re.compile(
    r"""
    \s*(
        (?P<number>-?\d+\.\d+|-?\d+)
      | (?P<string>'(?:[^']|'')*')
      | (?P<quoted_ident>"[^"]+")
      | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
      | (?P<op><=|>=|<>|!=|=|<|>|\(|\)|,|\*|\.)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having",
    "order", "asc", "desc", "limit", "and", "or", "not", "is", "null",
    "insert", "into", "values", "update", "set", "delete", "create",
    "table", "drop", "as",
}

_AGG_FUNCS = {"count", "sum", "min", "max", "avg", "collect"}


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind, value):
        self.kind = kind
        self.value = value

    def __repr__(self):
        return f"_Token({self.kind}, {self.value!r})"


def _tokenize(sql):
    tokens = []
    pos = 0
    while pos < len(sql):
        if sql[pos].isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(sql, pos)
        if not match or match.start(1) != pos:
            raise SqlError(f"cannot tokenize SQL at: {sql[pos:pos + 20]!r}")
        pos = match.end()
        if match.group("number"):
            text = match.group("number")
            value = float(text) if "." in text else int(text)
            tokens.append(_Token("number", value))
        elif match.group("string"):
            raw = match.group("string")[1:-1].replace("''", "'")
            tokens.append(_Token("string", raw))
        elif match.group("quoted_ident"):
            tokens.append(_Token("ident", match.group("quoted_ident")[1:-1]))
        elif match.group("ident"):
            word = match.group("ident")
            lowered = word.lower()
            if lowered in _KEYWORDS:
                tokens.append(_Token("keyword", lowered))
            else:
                tokens.append(_Token("ident", word))
        else:
            tokens.append(_Token("op", match.group("op")))
    tokens.append(_Token("eof", None))
    return tokens


class _SqlParser:
    def __init__(self, sql):
        self.tokens = _tokenize(sql)
        self.pos = 0

    def peek(self, offset=0):
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self):
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def accept(self, kind, value=None):
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    def expect(self, kind, value=None):
        token = self.accept(kind, value)
        if token is None:
            found = self.peek()
            raise SqlError(
                f"expected {value or kind}, found {found.value!r}"
            )
        return token

    def at_keyword(self, *words):
        token = self.peek()
        return token.kind == "keyword" and token.value in words

    # -- statements --------------------------------------------------------

    def parse_statement(self):
        if self.at_keyword("select"):
            return ("select", self._parse_select())
        if self.at_keyword("insert"):
            return ("insert", self._parse_insert())
        if self.at_keyword("update"):
            return ("update", self._parse_update())
        if self.at_keyword("delete"):
            return ("delete", self._parse_delete())
        if self.at_keyword("create"):
            return ("create", self._parse_create())
        if self.at_keyword("drop"):
            return ("drop", self._parse_drop())
        raise SqlError(f"unknown statement start: {self.peek().value!r}")

    # -- SELECT ---------------------------------------------------------------

    def _parse_select(self):
        self.expect("keyword", "select")
        distinct = bool(self.accept("keyword", "distinct"))
        items = self._parse_select_items()
        self.expect("keyword", "from")
        tables = self._parse_from()
        where = None
        if self.accept("keyword", "where"):
            where = self._parse_condition()
        group_keys = []
        if self.accept("keyword", "group"):
            self.expect("keyword", "by")
            group_keys.append(self._parse_column_ref())
            while self.accept("op", ","):
                group_keys.append(self._parse_column_ref())
        having = None
        if self.accept("keyword", "having"):
            having = self._parse_condition()
        order = []
        if self.accept("keyword", "order"):
            self.expect("keyword", "by")
            order.append(self._parse_order_key())
            while self.accept("op", ","):
                order.append(self._parse_order_key())
        limit = None
        if self.accept("keyword", "limit"):
            limit = self.expect("number").value
        self.expect("eof")
        return {
            "distinct": distinct,
            "items": items,
            "tables": tables,
            "where": where,
            "group_keys": group_keys,
            "having": having,
            "order": order,
            "limit": limit,
        }

    def _parse_select_items(self):
        if self.accept("op", "*"):
            return "*"
        items = [self._parse_select_item()]
        while self.accept("op", ","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self):
        expression = self._parse_value_expr(allow_aggregate=True)
        name = None
        if self.accept("keyword", "as"):
            name = self.expect("ident").value
        if name is None:
            name = getattr(expression, "display", None) or "column"
        return (expression, name)

    def _parse_from(self):
        tables = [self._parse_table_ref()]
        while self.accept("op", ","):
            tables.append(self._parse_table_ref())
        return tables

    def _parse_table_ref(self):
        name = self.expect("ident").value
        alias = name
        if self.accept("keyword", "as"):
            alias = self.expect("ident").value
        elif self.peek().kind == "ident":
            alias = self.advance().value
        return (name, alias)

    def _parse_order_key(self):
        ref = self._parse_column_ref()
        ascending = True
        if self.accept("keyword", "desc"):
            ascending = False
        else:
            self.accept("keyword", "asc")
        return (ref, ascending)

    # -- conditions --------------------------------------------------------------

    def _parse_condition(self):
        return self._parse_or()

    def _parse_or(self):
        left = self._parse_and()
        while self.accept("keyword", "or"):
            left = q.LogicalOr(left, self._parse_and())
        return left

    def _parse_and(self):
        left = self._parse_not()
        while self.accept("keyword", "and"):
            left = q.LogicalAnd(left, self._parse_not())
        return left

    def _parse_not(self):
        if self.accept("keyword", "not"):
            return q.LogicalNot(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self):
        if self.accept("op", "("):
            inner = self._parse_condition()
            self.expect("op", ")")
            return inner
        left = self._parse_value_expr(allow_aggregate=True)
        if self.accept("keyword", "is"):
            negated = bool(self.accept("keyword", "not"))
            self.expect("keyword", "null")
            return q.IsNull(left, negated)
        op_token = self.peek()
        if op_token.kind == "op" and op_token.value in (
            "=", "!=", "<>", "<", "<=", ">", ">=",
        ):
            self.advance()
            right = self._parse_value_expr(allow_aggregate=True)
            return q.Comparison(op_token.value, left, right)
        raise SqlError(f"expected a predicate, found {op_token.value!r}")

    # -- value expressions ----------------------------------------------------------

    def _parse_value_expr(self, allow_aggregate=False):
        token = self.peek()
        if token.kind == "number" or token.kind == "string":
            self.advance()
            return q.Literal(token.value)
        if token.kind == "keyword" and token.value == "null":
            self.advance()
            return q.Literal(None)
        if token.kind == "ident":
            lowered = token.value.lower()
            if (
                allow_aggregate
                and lowered in _AGG_FUNCS
                and self.peek(1).kind == "op"
                and self.peek(1).value == "("
            ):
                return self._parse_aggregate(lowered)
            return self._parse_column_ref()
        raise SqlError(f"expected a value, found {token.value!r}")

    def _parse_aggregate(self, func):
        self.advance()  # function name
        self.expect("op", "(")
        distinct = bool(self.accept("keyword", "distinct"))
        if self.accept("op", "*"):
            operand = None
        else:
            operand = self._parse_column_ref()
        self.expect("op", ")")
        return q.Aggregate(func, operand, distinct=distinct)

    def _parse_column_ref(self):
        first = self.expect("ident").value
        if self.accept("op", "."):
            second = self.expect("ident").value
            return q.ColumnRef(second, qualifier=first)
        return q.ColumnRef(first)

    # -- DML / DDL ---------------------------------------------------------------------

    def _parse_insert(self):
        self.expect("keyword", "insert")
        self.expect("keyword", "into")
        table = self.expect("ident").value
        self.expect("op", "(")
        columns = [self.expect("ident").value]
        while self.accept("op", ","):
            columns.append(self.expect("ident").value)
        self.expect("op", ")")
        self.expect("keyword", "values")
        rows = [self._parse_value_tuple(len(columns))]
        while self.accept("op", ","):
            rows.append(self._parse_value_tuple(len(columns)))
        self.expect("eof")
        return {"table": table, "columns": columns, "rows": rows}

    def _parse_value_tuple(self, arity):
        self.expect("op", "(")
        values = [self._parse_literal_value()]
        while self.accept("op", ","):
            values.append(self._parse_literal_value())
        self.expect("op", ")")
        if len(values) != arity:
            raise SqlError(
                f"VALUES arity {len(values)} != column count {arity}"
            )
        return values

    def _parse_literal_value(self):
        token = self.peek()
        if token.kind in ("number", "string"):
            self.advance()
            return token.value
        if token.kind == "keyword" and token.value == "null":
            self.advance()
            return None
        raise SqlError(f"expected a literal, found {token.value!r}")

    def _parse_update(self):
        self.expect("keyword", "update")
        table = self.expect("ident").value
        self.expect("keyword", "set")
        assignments = [self._parse_assignment()]
        while self.accept("op", ","):
            assignments.append(self._parse_assignment())
        where = None
        if self.accept("keyword", "where"):
            where = self._parse_condition()
        self.expect("eof")
        return {"table": table, "assignments": assignments, "where": where}

    def _parse_assignment(self):
        column = self.expect("ident").value
        self.expect("op", "=")
        return (column, self._parse_literal_value())

    def _parse_delete(self):
        self.expect("keyword", "delete")
        self.expect("keyword", "from")
        table = self.expect("ident").value
        where = None
        if self.accept("keyword", "where"):
            where = self._parse_condition()
        self.expect("eof")
        return {"table": table, "where": where}

    def _parse_create(self):
        self.expect("keyword", "create")
        self.expect("keyword", "table")
        name = self.expect("ident").value
        self.expect("op", "(")
        columns = [self._parse_column_def()]
        while self.accept("op", ","):
            columns.append(self._parse_column_def())
        self.expect("op", ")")
        self.expect("eof")
        return {"table": name, "columns": columns}

    def _parse_column_def(self):
        name = self.expect("ident").value
        col_type = "any"
        token = self.peek()
        if token.kind == "ident" and token.value.lower() in (
            "int", "float", "number", "str", "text", "any",
        ):
            self.advance()
            col_type = token.value.lower()
            if col_type == "text":
                col_type = "str"
        nullable = True
        if self.accept("keyword", "not"):
            self.expect("keyword", "null")
            nullable = False
        return Column(name, col_type, nullable)

    def _parse_drop(self):
        self.expect("keyword", "drop")
        self.expect("keyword", "table")
        name = self.expect("ident").value
        self.expect("eof")
        return {"table": name}


def parse_sql(sql):
    """Parse one statement; returns (kind, spec)."""
    return _SqlParser(sql).parse_statement()


def _build_select_plan(spec):
    plan = None
    for table_name, alias in spec["tables"]:
        scan = q.Scan(table_name, alias)
        plan = scan if plan is None else q.Join(plan, scan)
    if spec["where"] is not None:
        plan = q.Filter(plan, spec["where"])
    if spec["group_keys"]:
        aggregates = []
        keys = []
        if spec["items"] == "*":
            raise SqlError("SELECT * cannot combine with GROUP BY")
        for expression, name in spec["items"]:
            if isinstance(expression, q.Aggregate):
                aggregates.append((expression, name))
            else:
                keys.append((expression, name))
        # Grouping keys not in the select list still partition.
        selected = {name for _, name in keys}
        for ref in spec["group_keys"]:
            if ref.display not in selected and not any(
                k.display == ref.display for k, _ in keys
            ):
                keys.append((ref, ref.display))
        # Order group keys as given in GROUP BY first when they match.
        plan = q.GroupBy(plan, keys, aggregates, having=spec["having"])
    elif spec["items"] != "*" and any(
        isinstance(expression, q.Aggregate)
        for expression, _ in spec["items"]
    ):
        # Aggregate query without GROUP BY: one group of everything.
        aggregates = [
            (expression, name)
            for expression, name in spec["items"]
            if isinstance(expression, q.Aggregate)
        ]
        non_aggregates = [
            name
            for expression, name in spec["items"]
            if not isinstance(expression, q.Aggregate)
        ]
        if non_aggregates:
            raise SqlError(
                f"column(s) {non_aggregates} not allowed without GROUP BY"
            )
        plan = q.GroupBy(plan, [], aggregates, having=spec["having"])
    elif spec["items"] != "*":
        # ORDER BY may reference columns the projection drops (standard
        # SQL): sort before projecting unless every key names a select
        # alias.
        if spec["order"]:
            output_names = {name for _, name in spec["items"]}
            keys_are_aliases = all(
                ref.qualifier is None and ref.name in output_names
                for ref, _ in spec["order"]
            )
            if not keys_are_aliases:
                plan = q.OrderBy(plan, spec["order"])
                spec = dict(spec, order=[])
        plan = q.Project(plan, spec["items"])
    if spec["distinct"]:
        plan = q.Distinct(plan)
    if spec["order"]:
        plan = q.OrderBy(plan, spec["order"])
    if spec["limit"] is not None:
        plan = q.Limit(plan, spec["limit"])
    return plan


def run_sql(db, sql, optimize=True):
    """Parse and execute one statement against *db*.

    SELECT returns a list of row dicts; DML returns an affected-row
    count; DDL returns the table.  ``optimize=False`` skips the
    planner rewrites (hash joins, filter pushdown) — used by the
    ablation benchmark.
    """
    kind, spec = parse_sql(sql)
    backend = getattr(db, "backend", None)
    native = backend is not None and getattr(
        backend, "supports_native_sql", False
    )
    if kind == "select":
        if native:
            rows = backend.execute_select(db, spec)
            if rows is not None:
                return rows
        plan = _build_select_plan(spec)
        if optimize:
            from repro.rdb.planner import optimize as optimize_plan

            plan = optimize_plan(plan)
        return q.execute_plan(plan, db)
    if kind == "insert":
        table = db.table(spec["table"])
        # One atomic batch: a bad row leaves the table untouched.
        table.insert_many(
            dict(zip(spec["columns"], values)) for values in spec["rows"]
        )
        return len(spec["rows"])
    if kind == "update":
        if native:
            count = backend.execute_update(db, spec)
            if count is not None:
                return count
        table = db.table(spec["table"])
        count = 0
        for row_id, row in table.rows():
            if spec["where"] is None or spec["where"].evaluate(
                q.Env({spec["table"]: row})
            ) is True:
                table.update(row_id, dict(spec["assignments"]))
                count += 1
        return count
    if kind == "delete":
        if native:
            count = backend.execute_delete(db, spec)
            if count is not None:
                return count
        table = db.table(spec["table"])
        doomed = [
            row_id
            for row_id, row in table.rows()
            if spec["where"] is None
            or spec["where"].evaluate(q.Env({spec["table"]: row})) is True
        ]
        for row_id in doomed:
            table.delete(row_id)
        return len(doomed)
    if kind == "create":
        return db.create_table(spec["table"], Schema(spec["columns"]))
    if kind == "drop":
        db.drop_table(spec["table"])
        return None
    raise SqlError(f"unhandled statement kind {kind!r}")
