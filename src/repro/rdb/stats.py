"""Plan-execution work counters for the relational engine.

The hash-join ablation benchmark needs to report *work*, not only
wall-clock: how many candidate row pairs a join examined, and how many
rows were scanned.  Executors check the module-level :data:`counters`
slot (``None`` when profiling is off, so the hot path pays one global
load and a ``None`` test per batch).

Usage::

    from repro.rdb.stats import plan_counters

    with plan_counters() as work:
        run_sql(db, sql)
    print(work.pairs_examined, work.rows_scanned)
"""

from __future__ import annotations

from contextlib import contextmanager


class PlanCounters:
    """Work performed while executing query plans."""

    __slots__ = ("pairs_examined", "probe_hits", "rows_scanned")

    def __init__(self):
        self.pairs_examined = 0
        self.probe_hits = 0
        self.rows_scanned = 0

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        return (
            f"PlanCounters(pairs={self.pairs_examined}, "
            f"hits={self.probe_hits}, scanned={self.rows_scanned})"
        )


#: The active collector, or None when profiling is off.
counters = None


@contextmanager
def plan_counters():
    """Collect plan work counters for the duration of the block."""
    global counters
    previous = counters
    counters = PlanCounters()
    try:
        yield counters
    finally:
        counters = previous
