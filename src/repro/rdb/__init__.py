"""A small in-memory relational engine (the DIPS substrate).

The paper's section 8 grounds its set-oriented DIPS proposal in plain
relational machinery: COND tables, selections, joins, ``GROUP BY``, and
transaction semantics.  This package supplies exactly that, built from
scratch:

* :mod:`repro.rdb.schema` / :mod:`repro.rdb.table` — schemas, tables,
  rows, NULL handling;
* :mod:`repro.rdb.index` — hash indexes maintained on mutation;
* :mod:`repro.rdb.query` — a logical-plan interpreter (scan, filter,
  join, group/aggregate, project, order, distinct, limit);
* :mod:`repro.rdb.sql` — a parser for the SQL dialect the paper's
  Figure 6 uses (``SELECT ... FROM ... WHERE ... GROUP BY``, ``IS NOT
  NULL``, qualified names) plus DML/DDL;
* :mod:`repro.rdb.transaction` — optimistic transactions with
  first-committer-wins conflict detection, the mechanism DIPS relies on
  to serialise conflicting instantiations;
* :mod:`repro.rdb.backend` — the pluggable storage-backend seam
  (in-process dicts or out-of-core sqlite; see docs/STORAGE.md).
"""

from repro.rdb.backend import StorageBackend, TableStorage, resolve_backend
from repro.rdb.memory_backend import MemoryBackend
from repro.rdb.sqlite_backend import SqliteBackend
from repro.rdb.schema import Column, Schema
from repro.rdb.table import Table
from repro.rdb.database import Database
from repro.rdb.query import (
    Aggregate,
    ColumnRef,
    Comparison,
    Distinct,
    Filter,
    GroupBy,
    IsNull,
    Join,
    Limit,
    Literal,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    OrderBy,
    Project,
    Scan,
    execute_plan,
)
from repro.rdb.sql import run_sql
from repro.rdb.planner import HashJoin, optimize
from repro.rdb.stats import PlanCounters, plan_counters
from repro.rdb.transaction import (
    Transaction,
    TransactionManager,
)

__all__ = [
    "Aggregate",
    "Column",
    "ColumnRef",
    "Comparison",
    "Database",
    "Distinct",
    "Filter",
    "GroupBy",
    "HashJoin",
    "IsNull",
    "Join",
    "Limit",
    "Literal",
    "LogicalAnd",
    "LogicalNot",
    "LogicalOr",
    "MemoryBackend",
    "OrderBy",
    "PlanCounters",
    "Project",
    "Scan",
    "Schema",
    "SqliteBackend",
    "StorageBackend",
    "Table",
    "TableStorage",
    "Transaction",
    "TransactionManager",
    "resolve_backend",
    "execute_plan",
    "optimize",
    "plan_counters",
    "run_sql",
]
