"""Optimistic transactions with first-committer-wins conflict detection.

DIPS "attempts to execute all satisfied instantiations concurrently,
relying on transaction semantics to block inconsistent updates to the
working memory" (paper section 8.1) — and the paper's critique is that
tuple-oriented instantiations then conflict constantly.  To measure
that (experiment C5) we need real transactions over the COND/WM tables:

* a transaction buffers its writes and records a read set and write set
  of ``(table, row_id)`` pairs;
* at commit, it aborts (:class:`TransactionConflict`) if any row it
  read **or** wrote was written by a transaction that committed after
  this one began — classic backward optimistic validation;
* otherwise its buffered writes are applied atomically and stamped with
  a new commit timestamp.
"""

from __future__ import annotations

from repro.errors import DatabaseError, TransactionConflict, TransactionError

_PENDING = "pending"
_COMMITTED = "committed"
_ABORTED = "aborted"

#: Staging marker: the row was deleted earlier in the same transaction.
_DELETED = object()


class Transaction:
    """One optimistic transaction over a :class:`TransactionManager`."""

    def __init__(self, manager, txn_id, start_ts):
        self.manager = manager
        self.txn_id = txn_id
        self.start_ts = start_ts
        self.status = _PENDING
        self.read_set = set()
        self.write_set = set()
        self._operations = []  # buffered (kind, table, payload)

    def _check_pending(self):
        if self.status != _PENDING:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.status}"
            )

    # -- reads ------------------------------------------------------------

    def read(self, table, row_id):
        """Read one row (records the read)."""
        self._check_pending()
        self.read_set.add((table.name, row_id))
        return table.get(row_id)

    def scan(self, table, predicate=None):
        """Read all (matching) rows, recording each read."""
        self._check_pending()
        rows = []
        for row_id, row in table.rows():
            self.read_set.add((table.name, row_id))
            if predicate is None or predicate(row):
                rows.append((row_id, dict(row)))
        return rows

    # -- buffered writes ------------------------------------------------------

    def insert(self, table, row):
        self._check_pending()
        self._operations.append(("insert", table, dict(row)))

    def update(self, table, row_id, updates):
        self._check_pending()
        self.write_set.add((table.name, row_id))
        self._operations.append(("update", table, (row_id, dict(updates))))

    def delete(self, table, row_id):
        self._check_pending()
        self.write_set.add((table.name, row_id))
        self._operations.append(("delete", table, row_id))

    # -- outcome ------------------------------------------------------------

    def commit(self):
        """Validate and apply; raises TransactionConflict on failure."""
        self._check_pending()
        self.manager.validate_and_apply(self)
        return self

    def abort(self):
        self._check_pending()
        self.status = _ABORTED
        self.manager.record_abort(self)

    @property
    def committed(self):
        return self.status == _COMMITTED

    def __repr__(self):
        return f"Transaction({self.txn_id}, {self.status})"


class TransactionManager:
    """Hands out transactions and validates commits."""

    def __init__(self):
        self._next_id = 1
        self._clock = 0
        # (table_name, row_id) -> commit timestamp of last writer
        self._last_write = {}
        self.commits = 0
        self.aborts = 0

    def begin(self):
        txn = Transaction(self, self._next_id, self._clock)
        self._next_id += 1
        return txn

    def validate_and_apply(self, txn):
        for key in txn.read_set | txn.write_set:
            if self._last_write.get(key, -1) > txn.start_ts:
                txn.status = _ABORTED
                self.aborts += 1
                raise TransactionConflict(
                    f"transaction {txn.txn_id}: row {key} was modified by "
                    f"a concurrent committed transaction"
                )
        # Stage every buffered write against a virtual view of the
        # tables before touching any of them: a bad operation (deleting
        # a missing row, a schema violation) must abort the whole
        # transaction with nothing applied and no clock advance, never
        # leave it half-applied with status still pending.
        try:
            staged = self._stage(txn)
        except DatabaseError:
            txn.status = _ABORTED
            self.aborts += 1
            raise
        self._clock += 1
        commit_ts = self._clock
        for kind, table, row_id, full in staged:
            if kind == "insert":
                row_id = table.insert(full)
            elif kind == "update":
                table.update(row_id, full)
            else:
                table.delete(row_id)
            self._last_write[(table.name, row_id)] = commit_ts
        txn.status = _COMMITTED
        self.commits += 1

    def _stage(self, txn):
        """Dry-run the buffered operations; returns the apply list.

        ``effects`` tracks what each row would look like after the
        operations staged so far, so in-transaction sequences (update
        after delete, double delete) are judged against the state the
        transaction itself created, exactly as a sequential apply would.
        """
        staged = []  # (kind, table, row_id, normalised full row)
        effects = {}  # (table_name, row_id) -> full row or _DELETED
        for kind, table, payload in txn._operations:
            if kind == "insert":
                staged.append(
                    ("insert", table, None, table.schema.normalise(payload))
                )
            elif kind == "update":
                row_id, updates = payload
                key = (table.name, row_id)
                current = effects.get(key)
                if current is None:
                    current = table.get(row_id)
                if current is _DELETED or current is None:
                    raise TransactionError(
                        f"transaction {txn.txn_id}: table {table.name} "
                        f"has no row {row_id} to update"
                    )
                merged = dict(current)
                merged.update(updates)
                full = table.schema.normalise(merged)
                effects[key] = full
                staged.append(("update", table, row_id, full))
            else:
                row_id = payload
                key = (table.name, row_id)
                current = effects.get(key)
                if current is None:
                    current = table.get(row_id)
                if current is _DELETED or current is None:
                    raise TransactionError(
                        f"transaction {txn.txn_id}: table {table.name} "
                        f"has no row {row_id} to delete"
                    )
                effects[key] = _DELETED
                staged.append(("delete", table, row_id, None))
        return staged

    def record_abort(self, txn):
        self.aborts += 1

    def stats(self):
        return {"commits": self.commits, "aborts": self.aborts}
