"""Hash indexes over table columns.

An index maps a column value to the set of row ids holding it; tables
keep their indexes synchronised on every insert/update/delete.  NULLs
are indexed under a private sentinel so ``IS NULL`` scans can also be
served from an index.
"""

from __future__ import annotations


class _NullKey:
    """Private sentinel distinguishing NULL from any user value."""

    __repr__ = lambda self: "<NULL>"


NULL_KEY = _NullKey()


def _key(value):
    return NULL_KEY if value is None else value


class HashIndex:
    """value -> {row_id} for one column."""

    __slots__ = ("column", "_buckets")

    def __init__(self, column):
        self.column = column
        self._buckets = {}

    def insert(self, row_id, value):
        self._buckets.setdefault(_key(value), set()).add(row_id)

    def delete(self, row_id, value):
        bucket = self._buckets.get(_key(value))
        if bucket is None:
            return
        bucket.discard(row_id)
        if not bucket:
            del self._buckets[_key(value)]

    def update(self, row_id, old_value, new_value):
        if _key(old_value) == _key(new_value):
            return
        self.delete(row_id, old_value)
        self.insert(row_id, new_value)

    def lookup(self, value):
        """Row ids whose column equals *value* (or is NULL for None)."""
        return set(self._buckets.get(_key(value), ()))

    def distinct_values(self):
        return [key for key in self._buckets if key is not NULL_KEY]

    def __len__(self):
        return sum(len(bucket) for bucket in self._buckets.values())

    def __repr__(self):
        return f"HashIndex({self.column}, {len(self._buckets)} keys)"
