"""The pluggable storage backend contract for the relational substrate.

The paper's section 8 argument is that COND tables and working memory
are *relations* and should live wherever relations live — including on
disk, beyond one process heap.  This module defines the seam that makes
that a configuration choice instead of a rewrite:

* :class:`StorageBackend` — creates and drops per-table row stores and
  owns whatever shared resource they sit on (a dict registry, a sqlite
  connection);
* :class:`TableStorage` — the per-table contract
  :class:`repro.rdb.table.Table` delegates to: row CRUD, set-oriented
  batch operations (``insert_rows`` / ``delete_in``, the
  executemany-shaped calls one SQL statement corresponds to), index
  maintenance, and iteration in row-id order.

Two implementations ship: :class:`repro.rdb.memory_backend.MemoryBackend`
(the original dict-plus-:class:`~repro.rdb.index.HashIndex` store,
refactored behind this interface with identical semantics) and
:class:`repro.rdb.sqlite_backend.SqliteBackend` (rows in sqlite, batch
ops as real SQL statements, SELECTs pushed down natively).

Backend selection: :func:`resolve_backend` accepts a backend instance,
a spec string (``"memory"``, ``"sqlite"``, ``"sqlite:PATH"``), or
``None`` — which falls back to the ``REPRO_RDB_BACKEND`` environment
variable and finally to ``memory``.

Contract guarantees every backend must honour (the atomicity tests in
``tests/rdb/test_atomicity.py`` hold both to them):

* row ids are integers assigned monotonically from 1 and never reused;
* ``insert_rows`` is all-or-nothing: a failure mid-batch leaves the
  table (rows, indexes, and the id counter) byte-identical to its
  pre-batch state;
* ``items()`` / ``lookup()`` return rows in ascending row-id order
  (equal to insertion order, since ids are monotone);
* NULL is an indexable value: ``lookup(column, None)`` returns the
  rows where the column IS NULL.
"""

from __future__ import annotations

import os

from repro.errors import StorageError

#: Environment variable naming the default backend spec.
BACKEND_ENV = "REPRO_RDB_BACKEND"


class TableStorage:
    """Abstract per-table row store; see the module docstring contract.

    Rows handed to mutation methods are already schema-normalised full
    dicts (every column present, NULLs explicit) — validation is the
    :class:`~repro.rdb.table.Table`'s job, storage only stores.
    """

    name: str

    # -- batch mutation (set-oriented; one statement each) -----------------

    def insert_rows(self, rows):
        """Insert normalised *rows* all-or-nothing; returns their ids."""
        raise NotImplementedError

    def delete_in(self, column, values):
        """Delete rows whose *column* is any of *values*; returns count.

        The set-oriented counterpart of per-row delete — on a SQL
        backend this is one ``DELETE ... WHERE col IN (...)``.
        """
        raise NotImplementedError

    # -- row-at-a-time mutation --------------------------------------------

    def replace(self, row_id, row):
        """Overwrite the row stored under *row_id* with *row*."""
        raise NotImplementedError

    def delete_row(self, row_id):
        """Delete one row; returns the removed row dict or None."""
        raise NotImplementedError

    def delete_matching(self, predicate):
        """Delete rows where ``predicate(row)`` is true; returns count."""
        raise NotImplementedError

    def clear(self):
        """Delete every row (the id counter keeps advancing)."""
        raise NotImplementedError

    # -- reads --------------------------------------------------------------

    def get(self, row_id):
        """The row dict under *row_id*, or None."""
        raise NotImplementedError

    def items(self):
        """``(row_id, row)`` pairs in ascending row-id order."""
        raise NotImplementedError

    def lookup(self, column, value):
        """Row dicts whose *column* equals *value* (NULL-aware), in
        row-id order; served from an index when one exists."""
        raise NotImplementedError

    def count(self):
        raise NotImplementedError

    # -- indexes -------------------------------------------------------------

    def create_index(self, column):
        """Ensure an index on *column*; returns an index view exposing
        ``lookup(value) -> set[row_id]``, ``distinct_values()``, and
        ``len()``."""
        raise NotImplementedError

    def index_view(self, column):
        """The index view for *column*, or None when not indexed."""
        raise NotImplementedError

    def indexed_columns(self):
        """Sorted list of indexed column names."""
        raise NotImplementedError


class StorageBackend:
    """Abstract factory/owner of :class:`TableStorage` instances."""

    #: Registry name ("memory" / "sqlite").
    name = "abstract"
    #: True when run_sql may push SELECT/DML down as native SQL.
    supports_native_sql = False
    #: True when the whole database serialises via a file backup API
    #: (used by the checkpoint subsystem for cheap binary members).
    supports_file_backup = False

    @property
    def spec(self):
        """The spec string :func:`resolve_backend` would rebuild from."""
        return self.name

    def create_table_storage(self, name, schema):
        raise NotImplementedError

    def drop_table_storage(self, name):
        raise NotImplementedError

    def close(self):
        """Release backend resources (connections); idempotent."""

    # -- optional file-backup hooks (supports_file_backup backends) --------

    def serialize(self):
        """The whole database as bytes (for checkpoint members)."""
        raise StorageError(f"backend {self.name} does not serialize")

    def restore(self, data):
        """Replace the database contents from :meth:`serialize` bytes."""
        raise StorageError(f"backend {self.name} does not restore")


def backend_named(spec):
    """Instantiate a backend from a spec string.

    ``"memory"`` — the in-process dict store; ``"sqlite"`` — sqlite in
    ``:memory:``; ``"sqlite:PATH"`` — sqlite on a database file.
    """
    if spec == "memory":
        from repro.rdb.memory_backend import MemoryBackend

        return MemoryBackend()
    if spec == "sqlite" or spec.startswith("sqlite:"):
        from repro.rdb.sqlite_backend import SqliteBackend

        path = spec[len("sqlite:"):] or None if spec != "sqlite" else None
        return SqliteBackend(path)
    raise StorageError(
        f"unknown storage backend {spec!r} "
        f"(expected 'memory', 'sqlite', or 'sqlite:PATH')"
    )


def resolve_backend(backend=None):
    """Resolve *backend* to a :class:`StorageBackend` instance.

    Accepts an instance (returned as-is), a spec string, or ``None`` —
    which reads ``REPRO_RDB_BACKEND`` and defaults to ``memory``.
    """
    if isinstance(backend, StorageBackend):
        return backend
    if backend is None:
        backend = os.environ.get(BACKEND_ENV) or "memory"
    if not isinstance(backend, str):
        raise StorageError(
            f"backend must be a StorageBackend or spec string, "
            f"got {backend!r}"
        )
    return backend_named(backend)
