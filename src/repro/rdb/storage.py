"""Persistence for the relational substrate: JSON snapshots.

The paper motivates set orientation partly by "the emerging disk-based"
rule systems (DIPS stores its match state in relational tables so it
can exceed main memory).  This module provides the minimal durability
story for our substrate: a database — schemas, rows, and index
definitions — serialises to a JSON snapshot and loads back, so DIPS
match state (COND tables) survives a process restart
(``tests/rdb/test_storage.py`` checkpoints a matcher mid-run).

Format (version 1)::

    {"version": 1,
     "tables": {name: {"columns": [{"name","type","nullable"}...],
                       "indexes": [column, ...],
                       "rows": [row-dict, ...]}}}

Only JSON-representable values are supported (the substrate's value
domain: strings, numbers, NULL); row ids are not preserved — they are
storage-internal, and nothing in DIPS depends on them.
"""

from __future__ import annotations

import json

from repro.errors import DatabaseError
from repro.rdb.database import Database
from repro.rdb.schema import Column, Schema

FORMAT_VERSION = 1


def dump_database(db):
    """Serialise *db* to a JSON-compatible dict."""
    tables = {}
    for name in db.table_names():
        table = db.table(name)
        tables[name] = {
            "columns": [
                {
                    "name": column.name,
                    "type": column.type,
                    "nullable": column.nullable,
                }
                for column in table.schema
            ],
            "indexes": table.indexed_columns(),
            "rows": table.scan(),
        }
    return {"version": FORMAT_VERSION, "tables": tables}


def restore_database(snapshot, backend=None):
    """Rebuild a :class:`Database` from :func:`dump_database` output."""
    version = snapshot.get("version")
    if version != FORMAT_VERSION:
        raise DatabaseError(
            f"unsupported snapshot version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    db = Database(backend)
    for name, payload in snapshot.get("tables", {}).items():
        columns = [
            Column(spec["name"], spec["type"], spec["nullable"])
            for spec in payload["columns"]
        ]
        table = db.create_table(name, Schema(columns))
        for column in payload.get("indexes", ()):
            table.create_index(column)
        table.insert_many(payload.get("rows", ()))
    return db


def save_database(db, path):
    """Write a JSON snapshot of *db* to *path*."""
    snapshot = dump_database(db)
    with open(path, "w") as handle:
        json.dump(snapshot, handle)
    return snapshot


def load_database(path, backend=None):
    """Load a database snapshot written by :func:`save_database`."""
    with open(path) as handle:
        snapshot = json.load(handle)
    return restore_database(snapshot, backend=backend)
