"""The database object: a named collection of tables over one backend."""

from __future__ import annotations

from repro.errors import SchemaError
from repro.rdb.backend import resolve_backend
from repro.rdb.schema import Schema
from repro.rdb.table import Table


class Database:
    """Holds tables by name; the unit :mod:`repro.rdb.sql` runs against.

    All tables share one storage backend (see :mod:`repro.rdb.backend`):
    ``Database()`` resolves it from the ``REPRO_RDB_BACKEND`` environment
    variable (default ``memory``); pass a backend instance or spec
    string (``"memory"``, ``"sqlite"``, ``"sqlite:PATH"``) to choose.
    """

    def __init__(self, backend=None):
        self.backend = resolve_backend(backend)
        self._tables = {}

    def create_table(self, name, schema):
        if name in self._tables:
            raise SchemaError(f"table {name} already exists")
        if isinstance(schema, (list, tuple)):
            schema = Schema(schema)
        storage = self.backend.create_table_storage(name, schema)
        table = Table(name, schema, storage)
        self._tables[name] = table
        return table

    def drop_table(self, name):
        if name not in self._tables:
            raise SchemaError(f"no table named {name}")
        del self._tables[name]
        self.backend.drop_table_storage(name)

    def table(self, name):
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no table named {name}") from None

    def has_table(self, name):
        return name in self._tables

    def table_names(self):
        return sorted(self._tables)

    def close(self):
        """Release the backend's resources (no-op for memory)."""
        self.backend.close()

    def __contains__(self, name):
        return name in self._tables

    def __repr__(self):
        return f"Database({', '.join(self.table_names())})"
