"""The database object: a named collection of tables."""

from __future__ import annotations

from repro.errors import SchemaError
from repro.rdb.schema import Schema
from repro.rdb.table import Table


class Database:
    """Holds tables by name; the unit :mod:`repro.rdb.sql` runs against."""

    def __init__(self):
        self._tables = {}

    def create_table(self, name, schema):
        if name in self._tables:
            raise SchemaError(f"table {name} already exists")
        if isinstance(schema, (list, tuple)):
            schema = Schema(schema)
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def drop_table(self, name):
        if name not in self._tables:
            raise SchemaError(f"no table named {name}")
        del self._tables[name]

    def table(self, name):
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no table named {name}") from None

    def has_table(self, name):
        return name in self._tables

    def table_names(self):
        return sorted(self._tables)

    def __contains__(self, name):
        return name in self._tables

    def __repr__(self):
        return f"Database({', '.join(self.table_names())})"
