"""The out-of-core storage backend: rows in sqlite.

COND tables and working-memory relations live in a real SQL engine —
sqlite in ``:memory:`` or on a database file — so working memory is no
longer capped by one Python heap and the DIPS batch operations become
genuinely set-at-a-time SQL: ``insert_rows`` is one ``executemany``
INSERT inside an explicit transaction, ``delete_in`` is one
``DELETE ... WHERE col IN (...)``, and ``lookup`` is an indexed point
SELECT.  The SOI-retrieval SELECT itself pushes down natively via
:mod:`repro.rdb.pushdown`.

Layout: every table gets an explicit ``"__rid__" INTEGER PRIMARY KEY``
column carrying the substrate's row id.  Ids are assigned from a
per-table counter persisted in the ``__repro_meta__`` table, so they
are monotone and never reused — exactly the memory backend's contract
(sqlite's own rowid allocator would reuse the max id after a delete).
Columns are declared without type affinity, so values keep their
storage class and comparisons behave like the mini interpreter's
type-strict ones.

The storable value domain is NULL, integers, floats, and strings —
the relational value domain of the paper.  Anything else (bools,
lists, objects that the in-memory dicts would happily hold in an
``any`` column) raises :class:`~repro.errors.StorageError` before any
write happens.

Durability of the *engine* is the WAL's job (see docs/DURABILITY.md),
so the connection runs with ``synchronous=OFF`` and a memory journal;
checkpoints capture the whole database through sqlite's backup API
(:meth:`SqliteBackend.serialize` / :meth:`SqliteBackend.restore`).

A fault hook (:meth:`SqliteBackend.set_fault`) runs before every
statement so tests can inject sqlite-level failures mid-batch and
assert the all-or-nothing contract.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
import threading

from repro.errors import StorageError
from repro.rdb.backend import StorageBackend, TableStorage

_META_TABLE = "__repro_meta__"

#: Stay well under SQLITE_MAX_VARIABLE_NUMBER for IN-list parameters.
_MAX_PARAMS = 500


def quote_ident(name):
    """Quote an identifier for sqlite (handles the paper's hyphenated
    COND table names and embedded quotes)."""
    return '"' + str(name).replace('"', '""') + '"'


def check_storable(value, context=""):
    """Reject values outside the relational domain (NULL/int/float/str)."""
    if value is None or isinstance(value, (str, float)):
        return value
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    where = f" in {context}" if context else ""
    raise StorageError(
        f"sqlite backend cannot store {value!r}{where}: the storable "
        f"domain is NULL, numbers, and strings"
    )


class SqliteIndexView:
    """Index surface over a sqlite index: ``lookup(value) -> {row_id}``.

    Mirrors :class:`repro.rdb.index.HashIndex`'s read API; maintenance
    is the SQL engine's job.
    """

    __slots__ = ("_storage", "column")

    def __init__(self, storage, column):
        self._storage = storage
        self.column = column

    def lookup(self, value):
        sql = (
            f"SELECT __rid__ FROM {quote_ident(self._storage.name)} "
            f"WHERE {quote_ident(self.column)} IS ?"
        )
        rows = self._storage.backend.query(sql, (check_storable(value),))
        return {row[0] for row in rows}

    def distinct_values(self):
        sql = (
            f"SELECT DISTINCT {quote_ident(self.column)} "
            f"FROM {quote_ident(self._storage.name)} "
            f"WHERE {quote_ident(self.column)} IS NOT NULL"
        )
        return [row[0] for row in self._storage.backend.query(sql)]

    def __len__(self):
        return self._storage.count()

    def __repr__(self):
        return f"SqliteIndexView({self._storage.name}.{self.column})"


class SqliteTableStorage(TableStorage):
    """One sqlite table behind the :class:`TableStorage` contract."""

    def __init__(self, backend, name, columns):
        self.backend = backend
        self.name = name
        self.columns = tuple(columns)
        self._views = {}
        self._next_id = backend._load_next_id(name)

    # -- helpers -------------------------------------------------------------

    def _row_dict(self, values):
        return dict(zip(self.columns, values))

    def _column_list(self):
        return ", ".join(quote_ident(c) for c in self.columns)

    # -- batch mutation ------------------------------------------------------

    def insert_rows(self, rows):
        params = []
        ids = []
        next_id = self._next_id
        for full in rows:
            row_id = next_id
            next_id += 1
            ids.append(row_id)
            params.append(
                (row_id,)
                + tuple(
                    check_storable(full.get(c), f"table {self.name}")
                    for c in self.columns
                )
            )
        if not params:
            return ids
        placeholders = ", ".join("?" for _ in range(len(self.columns) + 1))
        sql = (
            f"INSERT INTO {quote_ident(self.name)} "
            f"(__rid__, {self._column_list()}) VALUES ({placeholders})"
        )
        with self.backend.transaction():
            self.backend.executemany(sql, params)
            self.backend.save_next_id(self.name, next_id)
        self._next_id = next_id
        return ids

    def delete_in(self, column, values):
        checked = sorted(
            {check_storable(v) for v in values if v is not None},
            key=lambda v: (str(type(v)), v),
        )
        want_null = any(v is None for v in values)
        deleted = 0
        with self.backend.transaction():
            for start in range(0, len(checked), _MAX_PARAMS):
                chunk = checked[start:start + _MAX_PARAMS]
                marks = ", ".join("?" for _ in chunk)
                sql = (
                    f"DELETE FROM {quote_ident(self.name)} "
                    f"WHERE {quote_ident(column)} IN ({marks})"
                )
                deleted += self.backend.execute(sql, chunk).rowcount
            if want_null:
                sql = (
                    f"DELETE FROM {quote_ident(self.name)} "
                    f"WHERE {quote_ident(column)} IS NULL"
                )
                deleted += self.backend.execute(sql).rowcount
        return deleted

    # -- row-at-a-time mutation ---------------------------------------------

    def replace(self, row_id, row):
        assignments = ", ".join(
            f"{quote_ident(c)} = ?" for c in self.columns
        )
        params = [
            check_storable(row.get(c), f"table {self.name}")
            for c in self.columns
        ]
        params.append(row_id)
        cursor = self.backend.execute(
            f"UPDATE {quote_ident(self.name)} SET {assignments} "
            f"WHERE __rid__ = ?",
            params,
        )
        if cursor.rowcount == 0:
            self.backend.execute(
                f"INSERT INTO {quote_ident(self.name)} "
                f"(__rid__, {self._column_list()}) VALUES "
                f"({', '.join('?' for _ in range(len(self.columns) + 1))})",
                [row_id] + params[:-1],
            )

    def delete_row(self, row_id):
        row = self.get(row_id)
        if row is None:
            return None
        self.backend.execute(
            f"DELETE FROM {quote_ident(self.name)} WHERE __rid__ = ?",
            (row_id,),
        )
        return row

    def delete_matching(self, predicate):
        doomed = [
            row_id
            for row_id, row in self.items()
            if predicate(row)
        ]
        with self.backend.transaction():
            for start in range(0, len(doomed), _MAX_PARAMS):
                chunk = doomed[start:start + _MAX_PARAMS]
                marks = ", ".join("?" for _ in chunk)
                self.backend.execute(
                    f"DELETE FROM {quote_ident(self.name)} "
                    f"WHERE __rid__ IN ({marks})",
                    chunk,
                )
        return len(doomed)

    def clear(self):
        self.backend.execute(f"DELETE FROM {quote_ident(self.name)}")

    # -- reads --------------------------------------------------------------

    def get(self, row_id):
        rows = self.backend.query(
            f"SELECT {self._column_list()} FROM {quote_ident(self.name)} "
            f"WHERE __rid__ = ?",
            (row_id,),
        )
        if not rows:
            return None
        return self._row_dict(rows[0])

    def items(self):
        rows = self.backend.query(
            f"SELECT __rid__, {self._column_list()} "
            f"FROM {quote_ident(self.name)} ORDER BY __rid__"
        )
        return [(row[0], self._row_dict(row[1:])) for row in rows]

    def lookup(self, column, value):
        rows = self.backend.query(
            f"SELECT {self._column_list()} FROM {quote_ident(self.name)} "
            f"WHERE {quote_ident(column)} IS ? ORDER BY __rid__",
            (check_storable(value),),
        )
        return [self._row_dict(row) for row in rows]

    def count(self):
        return self.backend.query(
            f"SELECT COUNT(*) FROM {quote_ident(self.name)}"
        )[0][0]

    # -- indexes -------------------------------------------------------------

    def create_index(self, column):
        view = self._views.get(column)
        if view is not None:
            return view
        index_name = f"idx__{self.name}__{column}"
        self.backend.execute(
            f"CREATE INDEX IF NOT EXISTS {quote_ident(index_name)} "
            f"ON {quote_ident(self.name)} ({quote_ident(column)})"
        )
        view = SqliteIndexView(self, column)
        self._views[column] = view
        return view

    def index_view(self, column):
        return self._views.get(column)

    def indexed_columns(self):
        return sorted(self._views)

    def reload_counter(self):
        """Re-read the persisted id counter (after a backup restore)."""
        self._next_id = self.backend._load_next_id(self.name)


class SqliteBackend(StorageBackend):
    """Factory/owner of :class:`SqliteTableStorage` over one connection."""

    name = "sqlite"
    supports_native_sql = True
    supports_file_backup = True

    def __init__(self, path=None):
        self.path = path
        self._lock = threading.RLock()
        self._fault = None
        self._storages = {}
        #: SELECT/UPDATE/DELETE statements served natively (not by the
        #: interpreter fallback) — observability for tests and benchmarks.
        self.statements_pushed = 0
        self._conn = sqlite3.connect(
            path or ":memory:",
            check_same_thread=False,
            isolation_level=None,  # autocommit; we issue BEGIN explicitly
        )
        self._conn.execute("PRAGMA journal_mode=MEMORY")
        self._conn.execute("PRAGMA synchronous=OFF")
        self._conn.execute("PRAGMA temp_store=MEMORY")
        self._conn.execute(
            f"CREATE TABLE IF NOT EXISTS {quote_ident(_META_TABLE)} "
            f"(name TEXT PRIMARY KEY, next_id INTEGER NOT NULL)"
        )

    @property
    def spec(self):
        return f"sqlite:{self.path}" if self.path else "sqlite"

    # -- statement execution (fault hook + lock) -----------------------------

    def set_fault(self, hook):
        """Install ``hook(sql)`` to run before every statement; a hook
        that raises aborts the statement (and rolls back any open
        transaction).  Pass None to clear."""
        self._fault = hook

    def execute(self, sql, params=()):
        with self._lock:
            if self._fault is not None:
                self._fault(sql)
            try:
                return self._conn.execute(sql, tuple(params))
            except sqlite3.Error as exc:
                raise StorageError(f"sqlite: {exc}") from exc

    def executemany(self, sql, params):
        with self._lock:
            if self._fault is not None:
                self._fault(sql)
            try:
                return self._conn.executemany(sql, params)
            except sqlite3.Error as exc:
                raise StorageError(f"sqlite: {exc}") from exc

    def query(self, sql, params=()):
        return self.execute(sql, params).fetchall()

    def transaction(self):
        """Context manager: BEGIN, then COMMIT or ROLLBACK on error.

        Nested uses inside an already-open transaction just join it
        (sqlite has one transaction per connection)."""
        return _SqliteTransaction(self)

    # -- table lifecycle -----------------------------------------------------

    def create_table_storage(self, name, schema):
        columns = tuple(schema.column_names())
        if "__rid__" in columns:
            raise StorageError("column name __rid__ is reserved")
        column_defs = ", ".join(quote_ident(c) for c in columns)
        with self._lock:
            # A fresh logical table must not see rows left by a same-named
            # table from an earlier run against the same database file.
            self.execute(f"DROP TABLE IF EXISTS {quote_ident(name)}")
            self.execute(
                f"CREATE TABLE {quote_ident(name)} "
                f'("__rid__" INTEGER PRIMARY KEY, {column_defs})'
            )
            self.execute(
                f"INSERT OR REPLACE INTO {quote_ident(_META_TABLE)} "
                f"(name, next_id) VALUES (?, 1)",
                (name,),
            )
        storage = SqliteTableStorage(self, name, columns)
        self._storages[name] = storage
        return storage

    def drop_table_storage(self, name):
        with self._lock:
            self.execute(f"DROP TABLE IF EXISTS {quote_ident(name)}")
            self.execute(
                f"DELETE FROM {quote_ident(_META_TABLE)} WHERE name = ?",
                (name,),
            )
        self._storages.pop(name, None)

    def close(self):
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass

    # -- id counter persistence ----------------------------------------------

    def _load_next_id(self, name):
        rows = self.query(
            f"SELECT next_id FROM {quote_ident(_META_TABLE)} "
            f"WHERE name = ?",
            (name,),
        )
        return rows[0][0] if rows else 1

    def save_next_id(self, name, next_id):
        self.execute(
            f"UPDATE {quote_ident(_META_TABLE)} SET next_id = ? "
            f"WHERE name = ?",
            (next_id, name),
        )

    # -- native SQL pushdown -------------------------------------------------

    def execute_select(self, db, spec):
        from repro.rdb.pushdown import run_native_select

        result = run_native_select(self, db, spec)
        if result is not None:
            self.statements_pushed += 1
        return result

    def execute_update(self, db, spec):
        from repro.rdb.pushdown import run_native_update

        result = run_native_update(self, db, spec)
        if result is not None:
            self.statements_pushed += 1
        return result

    def execute_delete(self, db, spec):
        from repro.rdb.pushdown import run_native_delete

        result = run_native_delete(self, db, spec)
        if result is not None:
            self.statements_pushed += 1
        return result

    # -- whole-database backup (checkpoint members) --------------------------

    def serialize(self):
        with self._lock:
            fd, tmp = tempfile.mkstemp(suffix=".sqlite3")
            os.close(fd)
            try:
                dest = sqlite3.connect(tmp)
                try:
                    self._conn.backup(dest)
                finally:
                    dest.close()
                with open(tmp, "rb") as handle:
                    return handle.read()
            except sqlite3.Error as exc:
                raise StorageError(f"sqlite backup failed: {exc}") from exc
            finally:
                os.unlink(tmp)

    def restore(self, data):
        with self._lock:
            fd, tmp = tempfile.mkstemp(suffix=".sqlite3")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                source = sqlite3.connect(tmp)
                try:
                    source.backup(self._conn)
                finally:
                    source.close()
            except sqlite3.Error as exc:
                raise StorageError(f"sqlite restore failed: {exc}") from exc
            finally:
                os.unlink(tmp)
            for storage in self._storages.values():
                storage.reload_counter()


class _SqliteTransaction:
    """BEGIN/COMMIT with ROLLBACK on error; joins an open transaction."""

    __slots__ = ("_backend", "_owns")

    def __init__(self, backend):
        self._backend = backend
        self._owns = False

    def __enter__(self):
        conn = self._backend._conn
        if not conn.in_transaction:
            self._backend.execute("BEGIN")
            self._owns = True
        return self

    def __exit__(self, exc_type, exc, tb):
        if not self._owns:
            return False
        conn = self._backend._conn
        if exc_type is None:
            try:
                self._backend.execute("COMMIT")
            except BaseException:
                if conn.in_transaction:
                    try:
                        conn.execute("ROLLBACK")
                    except sqlite3.Error:
                        pass
                raise
        elif conn.in_transaction:
            # Bypass the fault hook: rollback must always be attempted.
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
        return False
