"""Render mini-SQL statement specs to native sqlite SQL.

When the database's storage backend is sqlite, :func:`repro.rdb.sql.run_sql`
offers each parsed SELECT/UPDATE/DELETE spec to this module before
falling back to the interpreter.  The point is §8's: SOI retrieval is
*one* SQL statement with a single GROUP BY, so on an out-of-core
backend it should run inside the SQL engine instead of pulling every
row into Python.

The renderer is conservative: it must reproduce the mini interpreter's
semantics exactly (see docs/STORAGE.md for the parity table), and any
construct where the two could diverge raises the private ``_Fallback``
signal so the caller returns ``None`` and the interpreter runs instead.
Notable translations:

* ``collect(x)`` becomes ``json_group_array(x) FILTER (WHERE x IS NOT
  NULL)`` (the interpreter's collect skips NULLs; sqlite's would not),
  decoded back to a Python list;
* an aggregate query with no GROUP BY gains ``HAVING COUNT(*) > 0``:
  the interpreter returns no rows for an empty input where SQL returns
  one all-NULL row;
* the interpreter groups by *every* non-aggregate select item (plus
  listed GROUP BY keys), so the native GROUP BY clause lists them all;
* ungrouped, non-DISTINCT queries get the tables' ``__rid__`` columns
  as trailing ORDER BY terms, reproducing the interpreter's insertion
  order / stable sort exactly;
* ``HAVING``, multi-table ``*``, negative LIMIT, DISTINCT with
  non-alias ORDER BY keys, and aggregates inside WHERE all fall back.
"""

from __future__ import annotations

import json

from repro.rdb import query as q
from repro.rdb.sqlite_backend import quote_ident

_OPS = {"=": "=", "!=": "<>", "<>": "<>", "<": "<", "<=": "<=",
        ">": ">", ">=": ">="}


class _Fallback(Exception):
    """Raised when a spec cannot be rendered with identical semantics."""


class _SelectRenderer:
    def __init__(self, db, spec):
        self.db = db
        self.spec = spec
        self.params = []
        self.aliases = {}  # alias -> schema, in FROM order

    # -- resolution ----------------------------------------------------------

    def _resolve(self, ref):
        """Map a ColumnRef to its alias; fall back when ambiguous."""
        if ref.qualifier is not None:
            schema = self.aliases.get(ref.qualifier)
            if schema is None or not schema.has_column(ref.name):
                raise _Fallback
            return ref.qualifier
        owners = [
            alias
            for alias, schema in self.aliases.items()
            if schema.has_column(ref.name)
        ]
        if len(owners) != 1:
            raise _Fallback
        return owners[0]

    def _render_ref(self, ref):
        alias = self._resolve(ref)
        return f"{quote_ident(alias)}.{quote_ident(ref.name)}"

    # -- expressions ---------------------------------------------------------

    def _render_value(self, expr, allow_aggregate=False):
        if isinstance(expr, q.Literal):
            self.params.append(expr.value)
            return "?"
        if isinstance(expr, q.ColumnRef):
            return self._render_ref(expr)
        if isinstance(expr, q.Aggregate) and allow_aggregate:
            return self._render_aggregate(expr)
        raise _Fallback

    def _render_aggregate(self, agg):
        if agg.operand is None:
            return "COUNT(*)"
        operand = self._render_ref(agg.operand)
        inner = f"DISTINCT {operand}" if agg.distinct else operand
        if agg.func == "collect":
            return (
                f"json_group_array({inner}) "
                f"FILTER (WHERE {operand} IS NOT NULL)"
            )
        return f"{agg.func.upper()}({inner})"

    def _render_condition(self, cond):
        if isinstance(cond, q.Comparison):
            left = self._render_value(cond.left)
            right = self._render_value(cond.right)
            return f"({left} {_OPS[cond.op]} {right})"
        if isinstance(cond, q.IsNull):
            operand = self._render_value(cond.operand)
            negated = " NOT" if cond.negated else ""
            return f"({operand} IS{negated} NULL)"
        if isinstance(cond, q.LogicalAnd):
            return (
                f"({self._render_condition(cond.left)} AND "
                f"{self._render_condition(cond.right)})"
            )
        if isinstance(cond, q.LogicalOr):
            return (
                f"({self._render_condition(cond.left)} OR "
                f"{self._render_condition(cond.right)})"
            )
        if isinstance(cond, q.LogicalNot):
            return f"(NOT {self._render_condition(cond.operand)})"
        raise _Fallback

    # -- the statement -------------------------------------------------------

    def build(self):
        spec = self.spec
        if spec["having"] is not None:
            raise _Fallback
        for table_name, alias in spec["tables"]:
            if not self.db.has_table(table_name) or alias in self.aliases:
                raise _Fallback
            self.aliases[alias] = self.db.table(table_name).schema

        items = spec["items"]
        if items == "*":
            if len(spec["tables"]) != 1:
                raise _Fallback
            alias = next(iter(self.aliases))
            items = [
                (q.ColumnRef(name, qualifier=alias), name)
                for name in self.aliases[alias].column_names()
            ]

        aggregates = [
            (expr, name)
            for expr, name in items
            if isinstance(expr, q.Aggregate)
        ]
        grouped = bool(spec["group_keys"]) or bool(aggregates)

        select_parts = []
        collect_names = []
        group_exprs = []
        extra_having = None

        if grouped and spec["group_keys"]:
            keys = [
                (expr, name)
                for expr, name in items
                if not isinstance(expr, q.Aggregate)
            ]
            if any(not isinstance(expr, q.ColumnRef) for expr, _ in keys):
                raise _Fallback
            # The interpreter also partitions by GROUP BY keys absent
            # from the select list — and emits them as output columns.
            selected = {name for _, name in keys}
            for ref in spec["group_keys"]:
                if ref.display not in selected and not any(
                    k.display == ref.display for k, _ in keys
                ):
                    keys.append((ref, ref.display))
            final_items = keys + aggregates
            group_exprs = [self._render_ref(ref) for ref, _ in keys]
        elif grouped:
            # Aggregates with no GROUP BY: one group of everything —
            # but only when the input is non-empty (interpreter returns
            # no rows for an empty input, SQL would return one).
            if len(aggregates) != len(items):
                raise _Fallback  # interpreter raises SqlError; let it
            final_items = list(items)
            extra_having = "HAVING COUNT(*) > 0"
        else:
            final_items = list(items)

        for expr, name in final_items:
            rendered = self._render_value(expr, allow_aggregate=True)
            select_parts.append(f"{rendered} AS {quote_ident(name)}")
            if isinstance(expr, q.Aggregate) and expr.func == "collect":
                collect_names.append(name)

        where_sql = ""
        if spec["where"] is not None:
            where_sql = f" WHERE {self._render_condition(spec['where'])}"

        output_names = {name for _, name in final_items}
        order_terms = self._order_terms(grouped, output_names)

        from_sql = ", ".join(
            f"{quote_ident(name)} AS {quote_ident(alias)}"
            for name, alias in spec["tables"]
        )
        sql = "SELECT "
        if spec["distinct"]:
            sql += "DISTINCT "
        sql += ", ".join(select_parts) + f" FROM {from_sql}{where_sql}"
        if group_exprs:
            sql += " GROUP BY " + ", ".join(group_exprs)
        if extra_having:
            sql += f" {extra_having}"
        if order_terms:
            sql += " ORDER BY " + ", ".join(order_terms)
        if spec["limit"] is not None:
            if spec["limit"] < 0:
                raise _Fallback
            sql += " LIMIT ?"
            self.params.append(spec["limit"])
        return sql, self.params, collect_names

    def _order_terms(self, grouped, output_names):
        spec = self.spec
        terms = []
        keys_are_aliases = all(
            ref.qualifier is None and ref.name in output_names
            for ref, _ in spec["order"]
        )
        if spec["order"]:
            if grouped or spec["distinct"]:
                if not keys_are_aliases:
                    raise _Fallback
                for ref, ascending in spec["order"]:
                    direction = "ASC" if ascending else "DESC"
                    terms.append(f"{quote_ident(ref.name)} {direction}")
            else:
                for ref, ascending in spec["order"]:
                    direction = "ASC" if ascending else "DESC"
                    if keys_are_aliases:
                        terms.append(f"{quote_ident(ref.name)} {direction}")
                    else:
                        terms.append(f"{self._render_ref(ref)} {direction}")
        if not grouped and not spec["distinct"]:
            # Reproduce the interpreter's enumeration order (and its
            # stable sort): nested-loop order is (rid_1, rid_2, ...).
            for _, alias in spec["tables"]:
                terms.append(f'{quote_ident(alias)}."__rid__" ASC')
        return terms


def build_select(db, spec):
    """Render a SELECT spec to ``(sql, params, collect_names)``.

    Returns None when the renderer declines the query (the caller
    falls back to the interpreter) — the differential tests use this
    to pin which side of the seam each query exercises.
    """
    try:
        return _SelectRenderer(db, spec).build()
    except _Fallback:
        return None


def run_native_select(backend, db, spec):
    """Execute a SELECT spec natively; None means 'use the interpreter'."""
    rendered = build_select(db, spec)
    if rendered is None:
        return None
    sql, params, collect_names = rendered
    cursor = backend.execute(sql, params)
    names = [entry[0] for entry in cursor.description]
    results = []
    for values in cursor.fetchall():
        row = dict(zip(names, values))
        for name in collect_names:
            row[name] = json.loads(row[name] or "[]")
        results.append(row)
    return results


def run_native_update(backend, db, spec):
    """Execute an UPDATE spec natively; None means 'use the interpreter'."""
    if not db.has_table(spec["table"]):
        return None
    table = db.table(spec["table"])
    schema = table.schema
    for column, value in spec["assignments"]:
        if not schema.has_column(column):
            return None  # interpreter reproduces the exact error/no-op
        try:
            schema.column(column).check(value)
        except Exception:
            return None
    renderer = _SelectRenderer(db, spec_for_condition(spec))
    renderer.aliases[spec["table"]] = schema
    assignments = []
    for column, value in spec["assignments"]:
        assignments.append(f"{quote_ident(column)} = ?")
        renderer.params.append(value)
    where_sql = ""
    if spec["where"] is not None:
        try:
            where_sql = f" WHERE {renderer._render_condition(spec['where'])}"
        except _Fallback:
            return None
    sql = (
        f"UPDATE {quote_ident(spec['table'])} "
        f"SET {', '.join(assignments)}{where_sql}"
    )
    return backend.execute(sql, renderer.params).rowcount


def run_native_delete(backend, db, spec):
    """Execute a DELETE spec natively; None means 'use the interpreter'."""
    if not db.has_table(spec["table"]):
        return None
    renderer = _SelectRenderer(db, spec_for_condition(spec))
    renderer.aliases[spec["table"]] = db.table(spec["table"]).schema
    where_sql = ""
    if spec["where"] is not None:
        try:
            where_sql = f" WHERE {renderer._render_condition(spec['where'])}"
        except _Fallback:
            return None
    sql = f"DELETE FROM {quote_ident(spec['table'])}{where_sql}"
    return backend.execute(sql, renderer.params).rowcount


def spec_for_condition(spec):
    """A minimal spec shell so DML can reuse the SELECT renderer."""
    return {
        "distinct": False,
        "items": [],
        "tables": [],
        "where": spec.get("where"),
        "group_keys": [],
        "having": None,
        "order": [],
        "limit": None,
    }
