"""The in-process storage backend: dict rows plus hash indexes.

This is the original :class:`~repro.rdb.table.Table` row store factored
behind the :class:`~repro.rdb.backend.StorageBackend` contract with
zero behaviour change: rows live in an insertion-ordered dict keyed by
monotone integer ids, and :class:`~repro.rdb.index.HashIndex` instances
are maintained inline on every mutation.
"""

from __future__ import annotations

from repro.rdb.backend import StorageBackend, TableStorage
from repro.rdb.index import HashIndex


class MemoryTableStorage(TableStorage):
    """Rows in a dict, indexes maintained eagerly."""

    def __init__(self, name):
        self.name = name
        self._rows = {}
        self._next_id = 1
        self._indexes = {}

    # -- batch mutation ------------------------------------------------------

    def insert_rows(self, rows):
        ids = []
        saved_next = self._next_id
        try:
            for full in rows:
                row_id = self._next_id
                self._next_id += 1
                self._rows[row_id] = full
                for column, index in self._indexes.items():
                    index.insert(row_id, full.get(column))
                ids.append(row_id)
        except BaseException:
            # All-or-nothing: undo the partial batch (only reachable via
            # injected faults — e.g. a failing index shim in tests).
            for row_id in reversed(ids):
                row = self._rows.pop(row_id)
                for column, index in self._indexes.items():
                    index.delete(row_id, row.get(column))
            self._next_id = saved_next
            raise
        return ids

    def delete_in(self, column, values):
        wanted = set(values)
        index = self._indexes.get(column)
        if index is not None:
            doomed = set()
            for value in wanted:
                doomed |= index.lookup(value)
            doomed = sorted(doomed)
        else:
            doomed = [
                row_id
                for row_id, row in self._rows.items()
                if row.get(column) in wanted
            ]
        for row_id in doomed:
            self.delete_row(row_id)
        return len(doomed)

    # -- row-at-a-time mutation ---------------------------------------------

    def replace(self, row_id, row):
        old = self._rows.get(row_id)
        for column, index in self._indexes.items():
            if old is None:
                index.insert(row_id, row.get(column))
            else:
                index.update(row_id, old.get(column), row.get(column))
        self._rows[row_id] = row

    def delete_row(self, row_id):
        row = self._rows.pop(row_id, None)
        if row is None:
            return None
        for column, index in self._indexes.items():
            index.delete(row_id, row.get(column))
        return row

    def delete_matching(self, predicate):
        doomed = [
            row_id for row_id, row in self._rows.items() if predicate(row)
        ]
        for row_id in doomed:
            self.delete_row(row_id)
        return len(doomed)

    def clear(self):
        for row_id in list(self._rows):
            self.delete_row(row_id)

    # -- reads --------------------------------------------------------------

    def get(self, row_id):
        return self._rows.get(row_id)

    def items(self):
        return list(self._rows.items())

    def lookup(self, column, value):
        index = self._indexes.get(column)
        if index is not None:
            return [dict(self._rows[rid]) for rid in sorted(
                index.lookup(value)
            )]
        return [
            dict(row)
            for row in self._rows.values()
            if row.get(column) == value
        ]

    def count(self):
        return len(self._rows)

    # -- indexes -------------------------------------------------------------

    def create_index(self, column):
        index = self._indexes.get(column)
        if index is not None:
            return index
        index = HashIndex(column)
        for row_id, row in self._rows.items():
            index.insert(row_id, row.get(column))
        self._indexes[column] = index
        return index

    def index_view(self, column):
        return self._indexes.get(column)

    def indexed_columns(self):
        return sorted(self._indexes)


class MemoryBackend(StorageBackend):
    """Factory for :class:`MemoryTableStorage`; holds no shared state
    beyond the set of live table names (dropping one just forgets it)."""

    name = "memory"
    supports_native_sql = False
    supports_file_backup = False

    def __init__(self):
        self._tables = {}

    def create_table_storage(self, name, schema):
        storage = MemoryTableStorage(name)
        self._tables[name] = storage
        return storage

    def drop_table_storage(self, name):
        self._tables.pop(name, None)

    def close(self):
        self._tables.clear()
