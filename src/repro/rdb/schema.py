"""Schemas and columns for the relational substrate."""

from __future__ import annotations

from repro.errors import SchemaError

#: Accepted declared types; ``any`` skips type checking entirely.
COLUMN_TYPES = ("any", "int", "float", "number", "str")

_TYPE_CHECKS = {
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, float),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "str": lambda v: isinstance(v, str),
    "any": lambda v: True,
}


class Column:
    """One column: name, declared type, nullability."""

    __slots__ = ("name", "type", "nullable")

    def __init__(self, name, type="any", nullable=True):
        if not name or not isinstance(name, str):
            raise SchemaError(f"invalid column name {name!r}")
        if type not in COLUMN_TYPES:
            raise SchemaError(
                f"column {name}: unknown type {type!r} "
                f"(expected one of {COLUMN_TYPES})"
            )
        self.name = name
        self.type = type
        self.nullable = nullable

    def check(self, value):
        """Validate one value against this column's declaration."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name} is NOT NULL")
            return
        if not _TYPE_CHECKS[self.type](value):
            raise SchemaError(
                f"column {self.name} expects {self.type}, got {value!r}"
            )

    def __repr__(self):
        null = "" if self.nullable else " NOT NULL"
        return f"Column({self.name} {self.type}{null})"


class Schema:
    """An ordered set of columns belonging to one table."""

    def __init__(self, columns):
        resolved = []
        for column in columns:
            if isinstance(column, str):
                column = Column(column)
            resolved.append(column)
        names = [column.name for column in resolved]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column in schema: {names}")
        self.columns = tuple(resolved)
        self._by_name = {column.name: column for column in self.columns}

    def column_names(self):
        return tuple(column.name for column in self.columns)

    def column(self, name):
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no column named {name!r}") from None

    def has_column(self, name):
        return name in self._by_name

    def check_row(self, row):
        """Validate a row dict: known columns, value types, NOT NULLs."""
        for name in row:
            if name not in self._by_name:
                raise SchemaError(f"row has unknown column {name!r}")
        for column in self.columns:
            column.check(row.get(column.name))

    def normalise(self, row):
        """Return a full row dict with NULLs for absent columns."""
        self.check_row(row)
        return {
            column.name: row.get(column.name) for column in self.columns
        }

    def __len__(self):
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __repr__(self):
        return f"Schema({', '.join(self.column_names())})"
