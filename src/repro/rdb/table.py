"""Tables: schema validation and index maintenance over a row store.

A :class:`Table` owns the schema and validates every mutation; the rows
themselves live in a :class:`~repro.rdb.backend.TableStorage` supplied
by the database's storage backend — an in-process dict by default, a
sqlite table under ``--backend sqlite``.  Validation happens *before*
storage is touched, so a batch that fails schema checks leaves the
table untouched on every backend.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.rdb.schema import Schema


class Table:
    """One relation: named, schema-checked rows with optional indexes.

    Rows are stored under monotonically assigned integer row ids; all
    mutation goes through :meth:`insert`, :meth:`insert_many`,
    :meth:`update`, :meth:`delete`, keeping indexes synchronised.
    """

    def __init__(self, name, schema, storage=None):
        if isinstance(schema, (list, tuple)):
            schema = Schema(schema)
        if storage is None:
            from repro.rdb.memory_backend import MemoryTableStorage

            storage = MemoryTableStorage(name)
        self.name = name
        self.schema = schema
        self.storage = storage

    # -- index management --------------------------------------------------

    def create_index(self, column):
        """Create (or return) an index on *column*."""
        if not self.schema.has_column(column):
            raise SchemaError(f"table {self.name} has no column {column!r}")
        return self.storage.create_index(column)

    def index_on(self, column):
        return self.storage.index_view(column)

    def indexed_columns(self):
        """Sorted names of the indexed columns."""
        return self.storage.indexed_columns()

    # -- mutation ------------------------------------------------------------

    def insert(self, row):
        """Insert a row dict; returns its row id."""
        full = self.schema.normalise(row)
        return self.storage.insert_rows([full])[0]

    def insert_many(self, rows):
        """Insert several row dicts atomically; returns their row ids.

        The set-oriented counterpart of :meth:`insert` — one statement's
        worth of rows.  Every row is validated and normalised *before*
        storage is touched, so a schema error on any row leaves the
        table exactly as it was (no partial batch).
        """
        normalised = [self.schema.normalise(row) for row in rows]
        return self.storage.insert_rows(normalised)

    def update(self, row_id, updates):
        """Apply *updates* to a row; returns the new row dict."""
        row = self.storage.get(row_id)
        if row is None:
            raise SchemaError(f"table {self.name}: no row {row_id}")
        merged = dict(row)
        merged.update(updates)
        full = self.schema.normalise(merged)
        self.storage.replace(row_id, full)
        return full

    def delete(self, row_id):
        """Delete a row by id; returns the removed row dict."""
        row = self.storage.delete_row(row_id)
        if row is None:
            raise SchemaError(f"table {self.name}: no row {row_id}")
        return row

    def delete_where(self, predicate):
        """Delete every row satisfying *predicate(row)*; returns count."""
        return self.storage.delete_matching(predicate)

    def delete_in(self, column, values):
        """Delete rows whose *column* is any of *values*; returns count.

        The set-oriented counterpart of :meth:`delete_where` — one
        ``DELETE ... WHERE col IN (...)`` statement on a SQL backend.
        """
        if not self.schema.has_column(column):
            raise SchemaError(f"table {self.name} has no column {column!r}")
        return self.storage.delete_in(column, values)

    def clear(self):
        self.storage.clear()

    # -- reads --------------------------------------------------------------

    def get(self, row_id):
        return self.storage.get(row_id)

    def rows(self):
        """(row_id, row) pairs in insertion order."""
        return self.storage.items()

    def scan(self):
        """Row dicts in insertion order (copies; safe to mutate)."""
        return [dict(row) for _, row in self.storage.items()]

    def select(self, predicate=None):
        if predicate is None:
            return self.scan()
        return [
            dict(row)
            for _, row in self.storage.items()
            if predicate(row)
        ]

    def lookup(self, column, value):
        """Rows whose *column* equals *value*, via index when available."""
        return self.storage.lookup(column, value)

    def __len__(self):
        return self.storage.count()

    def __iter__(self):
        return iter(self.scan())

    def __repr__(self):
        return f"Table({self.name}, {self.storage.count()} rows)"
