"""Tables: row storage with schema validation and index maintenance."""

from __future__ import annotations

from repro.errors import SchemaError
from repro.rdb.index import HashIndex
from repro.rdb.schema import Schema


class Table:
    """One relation: named, schema-checked rows with optional indexes.

    Rows are stored under monotonically assigned integer row ids; all
    mutation goes through :meth:`insert`, :meth:`update`,
    :meth:`delete`, keeping indexes synchronised.
    """

    def __init__(self, name, schema):
        if isinstance(schema, (list, tuple)):
            schema = Schema(schema)
        self.name = name
        self.schema = schema
        self._rows = {}
        self._next_id = 1
        self._indexes = {}

    # -- index management --------------------------------------------------

    def create_index(self, column):
        """Create (or return) a hash index on *column*."""
        if not self.schema.has_column(column):
            raise SchemaError(f"table {self.name} has no column {column!r}")
        index = self._indexes.get(column)
        if index is not None:
            return index
        index = HashIndex(column)
        for row_id, row in self._rows.items():
            index.insert(row_id, row.get(column))
        self._indexes[column] = index
        return index

    def index_on(self, column):
        return self._indexes.get(column)

    # -- mutation ------------------------------------------------------------

    def insert(self, row):
        """Insert a row dict; returns its row id."""
        full = self.schema.normalise(row)
        row_id = self._next_id
        self._next_id += 1
        self._rows[row_id] = full
        for column, index in self._indexes.items():
            index.insert(row_id, full.get(column))
        return row_id

    def insert_many(self, rows):
        """Insert several row dicts at once; returns their row ids.

        The set-oriented counterpart of :meth:`insert` — one statement's
        worth of rows, validated and indexed in a single pass.
        """
        return [self.insert(row) for row in rows]

    def update(self, row_id, updates):
        """Apply *updates* to a row; returns the new row dict."""
        row = self._rows.get(row_id)
        if row is None:
            raise SchemaError(f"table {self.name}: no row {row_id}")
        merged = dict(row)
        merged.update(updates)
        full = self.schema.normalise(merged)
        for column, index in self._indexes.items():
            index.update(row_id, row.get(column), full.get(column))
        self._rows[row_id] = full
        return full

    def delete(self, row_id):
        """Delete a row by id; returns the removed row dict."""
        row = self._rows.pop(row_id, None)
        if row is None:
            raise SchemaError(f"table {self.name}: no row {row_id}")
        for column, index in self._indexes.items():
            index.delete(row_id, row.get(column))
        return row

    def delete_where(self, predicate):
        """Delete every row satisfying *predicate(row)*; returns count."""
        doomed = [
            row_id for row_id, row in self._rows.items() if predicate(row)
        ]
        for row_id in doomed:
            self.delete(row_id)
        return len(doomed)

    def clear(self):
        for row_id in list(self._rows):
            self.delete(row_id)

    # -- reads --------------------------------------------------------------

    def get(self, row_id):
        return self._rows.get(row_id)

    def rows(self):
        """(row_id, row) pairs in insertion order."""
        return list(self._rows.items())

    def scan(self):
        """Row dicts in insertion order (copies; safe to mutate)."""
        return [dict(row) for row in self._rows.values()]

    def select(self, predicate=None):
        if predicate is None:
            return self.scan()
        return [dict(row) for row in self._rows.values() if predicate(row)]

    def lookup(self, column, value):
        """Rows whose *column* equals *value*, via index when available."""
        index = self._indexes.get(column)
        if index is not None:
            return [dict(self._rows[rid]) for rid in sorted(
                index.lookup(value)
            )]
        return [
            dict(row)
            for row in self._rows.values()
            if row.get(column) == value
        ]

    def __len__(self):
        return len(self._rows)

    def __iter__(self):
        return iter(self.scan())

    def __repr__(self):
        return f"Table({self.name}, {len(self._rows)} rows)"
