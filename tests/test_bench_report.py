"""Unit tests for benchmarks/bench_report.py gate plumbing.

These cover the reference-resolution logic only — the scenarios
themselves run in the benchmark suite, not here.  ``bench_report`` is
loaded straight from the ``benchmarks/`` directory since it is a
script, not part of the installed package.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).parent.parent / "benchmarks" / "bench_report.py"


@pytest.fixture(scope="module")
def bench_report():
    spec = importlib.util.spec_from_file_location("_bench_report", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    saved = sys.modules.get("_bench_report")
    sys.modules["_bench_report"] = module
    spec.loader.exec_module(module)
    yield module
    if saved is None:
        sys.modules.pop("_bench_report", None)
    else:
        sys.modules["_bench_report"] = saved


@pytest.fixture
def bench_dir(bench_report, tmp_path, monkeypatch):
    """Point the module's baseline discovery at an empty directory."""
    monkeypatch.setattr(
        bench_report, "BASELINE_PATH", tmp_path / "BENCH_baseline.json"
    )
    return tmp_path


class TestLatestReference:
    def test_empty_directory_returns_none(self, bench_report, bench_dir):
        assert bench_report.latest_reference() is None

    def test_prefers_newest_numbered_report(self, bench_report, bench_dir):
        (bench_dir / "BENCH_baseline.json").write_text("{}")
        (bench_dir / "BENCH_3.json").write_text("{}")
        (bench_dir / "BENCH_12.json").write_text("{}")
        assert bench_report.latest_reference().name == "BENCH_12.json"

    def test_falls_back_to_baseline(self, bench_report, bench_dir):
        (bench_dir / "BENCH_baseline.json").write_text("{}")
        assert (
            bench_report.latest_reference().name == "BENCH_baseline.json"
        )

    def test_ignores_non_numbered_names(self, bench_report, bench_dir):
        (bench_dir / "BENCH_old.json").write_text("{}")
        assert bench_report.latest_reference() is None

    def test_excludes_the_report_being_written(
        self, bench_report, bench_dir
    ):
        """Gating a fresh report against itself would always pass."""
        (bench_dir / "BENCH_6.json").write_text("{}")
        current = bench_dir / "BENCH_7.json"
        current.write_text("{}")
        assert bench_report.latest_reference().name == "BENCH_7.json"
        assert (
            bench_report.latest_reference(exclude=current).name
            == "BENCH_6.json"
        )

    def test_excluding_only_report_falls_back(
        self, bench_report, bench_dir
    ):
        (bench_dir / "BENCH_baseline.json").write_text("{}")
        current = bench_dir / "BENCH_7.json"
        current.write_text("{}")
        assert (
            bench_report.latest_reference(exclude=current).name
            == "BENCH_baseline.json"
        )


class TestCheckWithoutBaseline:
    @pytest.fixture
    def stub_scenarios(self, bench_report, monkeypatch):
        """Replace the real scenario sweep with an instant stub."""
        report = {"schema": 1, "scenarios": {}}
        monkeypatch.setattr(
            bench_report, "run_scenarios", lambda: report
        )
        monkeypatch.setattr(
            bench_report, "print_report", lambda report: None
        )
        return report

    def test_check_exits_2_with_clear_message(
        self, bench_report, bench_dir, stub_scenarios, capsys, tmp_path
    ):
        out = tmp_path / "out" / "BENCH_X.json"
        out.parent.mkdir()
        code = bench_report.main(["--check", "--output", str(out)])
        assert code == 2
        captured = capsys.readouterr()
        assert "no benchmark baseline found" in captured.err
        assert "--write-baseline" in captured.err

    def test_check_passes_against_written_baseline(
        self, bench_report, bench_dir, stub_scenarios, tmp_path
    ):
        out = tmp_path / "out" / "BENCH_X.json"
        out.parent.mkdir()
        assert bench_report.main(["--write-baseline",
                                  "--output", str(out)]) == 0
        assert bench_report.BASELINE_PATH.exists()
        assert bench_report.main(["--check", "--output", str(out)]) == 0

    def test_report_written_even_when_check_fails(
        self, bench_report, bench_dir, stub_scenarios, tmp_path
    ):
        out = tmp_path / "out" / "BENCH_X.json"
        out.parent.mkdir()
        bench_report.main(["--check", "--output", str(out)])
        assert json.loads(out.read_text())["scenarios"] == {}
