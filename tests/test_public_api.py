"""Public API smoke tests: exports resolve, docstrings exist."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.analysis",
    "repro.bench",
    "repro.cli",
    "repro.core",
    "repro.dips",
    "repro.engine",
    "repro.errors",
    "repro.lang",
    "repro.match",
    "repro.rdb",
    "repro.rete",
    "repro.symbols",
    "repro.wm",
]


class TestExports:
    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_module_imports_and_is_documented(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"

    @pytest.mark.parametrize(
        "name",
        [n for n in PUBLIC_MODULES if "." in n or n == "repro"],
    )
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", ()):
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    def test_top_level_surface(self):
        import repro

        for symbol in (
            "RuleEngine", "ReteNetwork", "TreatMatcher", "NaiveMatcher",
            "WorkingMemory", "WME", "parse_rule", "parse_program",
            "RuleBuilder",
        ):
            assert symbol in repro.__all__


class TestDocstrings:
    def test_public_classes_documented(self):
        import repro
        from repro.dips import DipsMatcher
        from repro.rdb import Database, Table

        for cls in (
            repro.RuleEngine, repro.ReteNetwork, repro.WorkingMemory,
            DipsMatcher, Database, Table,
        ):
            assert inspect.getdoc(cls)

    def test_engine_public_methods_documented(self):
        import repro

        for name, member in inspect.getmembers(
            repro.RuleEngine, predicate=inspect.isfunction
        ):
            if name.startswith("_"):
                continue
            assert inspect.getdoc(member), f"RuleEngine.{name} undocumented"


class TestCompatibility:
    def test_ops5_compute_alias(self):
        from repro import RuleEngine

        engine = RuleEngine()
        engine.add_rule(
            "(p r (n ^v <v>) --> (make out ^v (compute <v> * 2 + 1)))"
        )
        engine.make("n", v=3)
        engine.run(limit=2)
        assert engine.wm.find("out", v=7)
