"""Unit tests for COND tables (paper §8.1/8.2)."""

import pytest

from repro.dips import CondStore
from repro.dips.cond import cond_table_name
from repro.errors import DipsError
from repro.lang.parser import parse_rule
from repro.wm import WorkingMemory

RULE_1 = """
(p rule-1
  (E ^name <x> ^salary <s>)
  [W ^name <x> ^job clerk]
  --> (halt))
"""


@pytest.fixture
def store():
    cond_store = CondStore()
    cond_store.add_rule(parse_rule(RULE_1))
    return cond_store


class TestSchema:
    def test_one_cond_table_per_class(self, store):
        assert store.db.has_table("COND-E")
        assert store.db.has_table("COND-W")

    def test_columns_match_paper(self, store):
        names = store.cond_table("E").schema.column_names()
        assert names == ("rule_id", "cen", "name", "salary", "rce",
                         "wme_tag")

    def test_template_rows_hold_markers_and_null_tags(self, store):
        [template] = store.templates("E")
        assert template["name"] == "<x>"
        assert template["salary"] == "<s>"
        assert template["wme_tag"] is None
        assert template["rce"] == "(W,2)"

    def test_schema_widened_for_later_rules(self, store):
        store.add_rule(
            parse_rule("(p rule-2 (E ^name <x> ^age <a>) --> (halt))")
        )
        names = store.cond_table("E").schema.column_names()
        assert "age" in names
        # Earlier rows survived the widening.
        assert len(store.templates("E")) == 2


class TestInstanceMaintenance:
    def test_matching_wme_inserts_instance(self, store):
        wm = WorkingMemory()
        wme = wm.make("E", name="Mike", salary=10000)
        assert store.wme_added(wme) == 1
        [instance] = store.instances("E")
        assert instance["wme_tag"] == wme.time_tag
        assert instance["name"] == "Mike"

    def test_constant_mismatch_inserts_nothing(self, store):
        wm = WorkingMemory()
        wme = wm.make("W", name="Mike", job="boss")
        assert store.wme_added(wme) == 0

    def test_unmentioned_class_ignored(self, store):
        wm = WorkingMemory()
        assert store.wme_added(wm.make("Z", x=1)) == 0

    def test_removal_deletes_instance_rows(self, store):
        wm = WorkingMemory()
        wme = wm.make("W", name="Mike", job="clerk")
        store.wme_added(wme)
        assert store.wme_removed(wme) == 1
        assert store.instances("W") == []
        # Templates survive.
        assert len(store.templates("W")) == 1

    def test_multiset_duplicate_wmes_coexist(self, store):
        """The §8.2 point of tags over mark bits: multi-set WM."""
        wm = WorkingMemory()
        first = wm.make("W", name="Mike", job="clerk")
        second = wm.make("W", name="Mike", job="clerk")
        store.wme_added(first)
        store.wme_added(second)
        assert len(store.instances("W")) == 2
        store.wme_removed(first)
        assert len(store.instances("W")) == 1


class TestRestrictions:
    def test_negated_ces_get_cond_tables_too(self):
        # Negated CEs store templates/instances like positive ones; the
        # matcher applies them as residual blocker checks.
        store = CondStore()
        store.add_rule(parse_rule("(p r (a) -(b ^k 1) --> (halt))"))
        assert store.db.has_table("COND-b")
        assert len(store.templates("b")) == 1

    def test_duplicate_rule_rejected(self, store):
        with pytest.raises(DipsError):
            store.add_rule(parse_rule(RULE_1))

    def test_table_naming(self):
        assert cond_table_name("player") == "COND-player"
