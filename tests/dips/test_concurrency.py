"""Unit tests for the concurrent-firing simulator (paper §8.1 critique)."""

from repro.dips.concurrency import (
    remove_duplicates_set_firings,
    remove_duplicates_tuple_firings,
    run_concurrent_firings,
)
from repro.rdb import Database


def dup_table(db, groups, group_size, name="wm"):
    table = db.create_table(name, ["name", "team"])
    for group in range(groups):
        for _ in range(group_size):
            table.insert({"name": f"p{group}", "team": "A"})
    return table


class TestTupleMode:
    def test_pairs_over_one_group(self):
        db = Database()
        table = dup_table(db, groups=1, group_size=3)
        firings = remove_duplicates_tuple_firings(table)
        assert len(firings) == 3  # 3 unordered pairs

    def test_conflicts_occur(self):
        db = Database()
        table = dup_table(db, groups=1, group_size=4)
        result = run_concurrent_firings(
            table, remove_duplicates_tuple_firings(table)
        )
        assert result.aborted > 0
        assert result.committed + result.aborted == result.attempted

    def test_wasted_work_accumulates(self):
        # Repeated rounds eventually converge, but only after paying
        # aborted transactions — the work a single SOI avoids entirely.
        db = Database()
        table = dup_table(db, groups=1, group_size=5)
        total_aborts = 0
        rounds = 0
        while True:
            firings = remove_duplicates_tuple_firings(table)
            if not firings:
                break
            result = run_concurrent_firings(table, firings)
            total_aborts += result.aborted
            rounds += 1
            assert rounds < 20
        assert len(table) == 1
        assert total_aborts >= 4  # most of the 10 pair firings conflicted


class TestSetMode:
    def test_one_firing_per_group(self):
        db = Database()
        table = dup_table(db, groups=3, group_size=4)
        firings = remove_duplicates_set_firings(table)
        assert len(firings) == 3

    def test_no_conflicts_single_round(self):
        db = Database()
        table = dup_table(db, groups=3, group_size=4)
        result = run_concurrent_firings(
            table, remove_duplicates_set_firings(table)
        )
        assert result.aborted == 0
        assert result.conflict_rate == 0.0
        assert len(table) == 3  # one survivor per group, one round

    def test_groups_without_duplicates_skipped(self):
        db = Database()
        table = dup_table(db, groups=2, group_size=1)
        assert remove_duplicates_set_firings(table) == []


class TestResultMetrics:
    def test_conflict_rate(self):
        db = Database()
        table = dup_table(db, groups=1, group_size=3)
        result = run_concurrent_firings(
            table, remove_duplicates_tuple_firings(table)
        )
        assert 0.0 <= result.conflict_rate <= 1.0

    def test_empty_round(self):
        db = Database()
        table = dup_table(db, groups=1, group_size=1)
        result = run_concurrent_firings(table, [])
        assert result.attempted == 0
        assert result.conflict_rate == 0.0
