"""The §8.1→§8.2 contrast: mark bits lose the multiset, WME tags keep it."""

from repro.dips.cond import CondStore
from repro.dips.marks import MarkBitCondStore
from repro.lang.parser import parse_rule
from repro.wm import WorkingMemory

RULE = """
(p rule-1
  (E ^name <x> ^salary <s>)
  [W ^name <x> ^job clerk]
  --> (halt))
"""


def stores():
    marks = MarkBitCondStore()
    marks.add_rule(parse_rule(RULE))
    tags = CondStore()
    tags.add_rule(parse_rule(RULE))
    return marks, tags


class TestDuplicateVisibility:
    def test_duplicate_wme_invisible_to_mark_bits(self):
        """Figure 6's two identical Mike/clerk WMEs."""
        marks, tags = stores()
        wm = WorkingMemory()
        first = wm.make("W", name="Mike", job="clerk")
        second = wm.make("W", name="Mike", job="clerk")
        for store in (marks, tags):
            store.wme_added(first)
            store.wme_added(second)
        # Mark bits: one marked row; the duplicate vanished.
        assert len(marks.marked_instances("W")) == 1
        # WME tags: both elements represented (the paper's fix).
        assert len(tags.instances("W")) == 2

    def test_removing_one_duplicate_corrupts_mark_state(self):
        marks, tags = stores()
        wm = WorkingMemory()
        first = wm.make("W", name="Mike", job="clerk")
        second = wm.make("W", name="Mike", job="clerk")
        for store in (marks, tags):
            store.wme_added(first)
            store.wme_added(second)
        marks.wme_removed(first)
        tags.wme_removed(first)
        # Mark bits: the match state now claims NO Mike/clerk exists,
        # although `second` is still in working memory.
        assert len(marks.marked_instances("W")) == 0
        # WME tags: the remaining element is still matched.
        assert len(tags.instances("W")) == 1
        assert tags.instances("W")[0]["wme_tag"] == second.time_tag


class TestNonDuplicateBehaviourAgrees:
    def test_distinct_wmes_match_identically(self):
        marks, tags = stores()
        wm = WorkingMemory()
        mike = wm.make("W", name="Mike", job="clerk")
        sue = wm.make("W", name="Sue", job="clerk")
        boss = wm.make("W", name="Ann", job="boss")
        for store in (marks, tags):
            for wme in (mike, sue, boss):
                store.wme_added(wme)
        assert len(marks.marked_instances("W")) == 2
        assert len(tags.instances("W")) == 2

    def test_templates_coexist_with_marks(self):
        marks, _ = stores()
        templates = marks.cond_table("W").select(
            lambda row: row.get("mark") == 0
        )
        assert len(templates) == 1
        assert templates[0]["name"] == "<x>"
