"""DIPS on sqlite must behave bit-for-bit like DIPS on memory.

The matcher's correctness contract does not change with the storage
backend: the same WM history must yield identical conflict sets,
firing sequences, and engine output whether the COND tables live in
Python dicts or in a sqlite database with the SOI-retrieval queries
pushed down to real SQL.  Hypothesis drives random histories through
both in lockstep; engine-level tests compare full runs (including
set-oriented firings and negation) against Rete as ground truth.
"""

from hypothesis import HealthCheck, given, settings

from repro.dips import DipsMatcher
from repro.engine import RuleEngine
from repro.rdb.memory_backend import MemoryBackend
from repro.rdb.sqlite_backend import SqliteBackend
from repro.rete import ReteNetwork

from tests.match.test_equivalence import (
    RULES,
    drive,
    operation_sequences,
)

PROGRAM = """
(literalize item owner v)
(literalize owner name)
(literalize tally owner total)
(p tally-owner
  (owner ^name <o>)
  { [item ^owner <o> ^v <v>] <S> }
  :test ((count <S>) >= 1)
  -->
  (make tally ^owner <o> ^total (sum <S> ^v))
  (write tallied <o>))
(p drop-owner
  (owner ^name <o>)
  -(item ^owner <o>)
  -->
  (remove 1)
  (write dropped <o>))
"""


def _engine(backend):
    engine = RuleEngine(matcher=DipsMatcher(backend=backend))
    engine.load(PROGRAM)
    return engine


def _seed(engine):
    with engine.batch():
        for name in ("ann", "bob", "cyd"):
            engine.make("owner", name=name)
        for i in range(6):
            engine.make("item", owner=("ann", "bob")[i % 2], v=i)


def wm_state(engine):
    return sorted(
        (w.time_tag, w.wme_class, tuple(sorted(w.as_dict().items())))
        for w in engine.wm
    )


class TestEngineEquivalence:
    def test_full_run_identical(self):
        memory = _engine(MemoryBackend())
        sqlite = _engine(SqliteBackend())
        for engine in (memory, sqlite):
            _seed(engine)
            engine.run()
        assert memory.output == sqlite.output
        assert wm_state(memory) == wm_state(sqlite)
        assert memory.cycle_count == sqlite.cycle_count
        memory.close()
        sqlite.close()

    def test_sqlite_run_matches_rete(self):
        rete = RuleEngine(matcher=ReteNetwork())
        rete.load(PROGRAM)
        sqlite = _engine(SqliteBackend())
        for engine in (rete, sqlite):
            _seed(engine)
            engine.run()
        assert rete.output == sqlite.output
        assert wm_state(rete) == wm_state(sqlite)
        sqlite.close()

    def test_sqlite_actually_pushes_queries_down(self):
        engine = _engine(SqliteBackend())
        backend = engine.matcher.storage_backend
        _seed(engine)
        engine.run()
        assert backend.statements_pushed > 0
        engine.close()

    def test_incremental_removal_identical(self):
        memory = _engine(MemoryBackend())
        sqlite = _engine(SqliteBackend())
        for engine in (memory, sqlite):
            _seed(engine)
            engine.run()
            # Retract every item one at a time; the negation rule
            # must fire identically on both.
            for wme in [w for w in engine.wm if w.wme_class == "item"]:
                engine.remove(wme.time_tag)
                engine.run()
        assert memory.output == sqlite.output
        assert wm_state(memory) == wm_state(sqlite)
        memory.close()
        sqlite.close()


class TestConflictSetLockstep:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(operation_sequences())
    def test_random_histories_agree(self, ops):
        memory = DipsMatcher(backend=MemoryBackend())
        sqlite = DipsMatcher(backend=SqliteBackend())
        try:
            assert drive(memory, RULES, ops) == drive(sqlite, RULES, ops)
        finally:
            memory.close()
            sqlite.close()
