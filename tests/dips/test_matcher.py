"""Unit tests for the DIPS query-based matcher."""

import pytest

from repro import RuleEngine
from repro.dips import DipsMatcher, soi_query_sql
from repro.lang.parser import parse_rule


def engine_with(program):
    engine = RuleEngine(matcher=DipsMatcher())
    engine.load(program)
    return engine


class TestTupleRules:
    def test_join_rule(self):
        engine = engine_with(
            "(p r (E ^name <x>) (W ^name <x>) --> (write pair))"
        )
        engine.make("E", name="Mike")
        engine.make("W", name="Mike")
        engine.make("W", name="Sue")
        assert engine.conflict_set_size() == 1

    def test_removal_retracts(self):
        engine = engine_with(
            "(p r (E ^name <x>) (W ^name <x>) --> (write pair))"
        )
        e = engine.make("E", name="Mike")
        engine.make("W", name="Mike")
        engine.remove(e)
        assert engine.conflict_set_size() == 0

    def test_inequality_join_translates(self):
        engine = engine_with(
            "(p r (bid ^amount <a>) (ask ^amount <= <a>) --> (halt))"
        )
        engine.make("bid", amount=10)
        engine.make("ask", amount=8)
        engine.make("ask", amount=12)
        assert engine.conflict_set_size() == 1


class TestSetRules:
    def test_soi_per_scalar_group(self):
        engine = engine_with(
            "(p r (dept ^name <d>) [emp ^dept <d>] --> (halt))"
        )
        engine.make("dept", name="eng")
        engine.make("emp", dept="eng")
        engine.make("emp", dept="eng")
        engine.make("dept", name="ops")
        assert engine.conflict_set_size() == 1  # ops has no employees
        [soi] = engine.conflict_set.instantiations()
        assert len(soi.tokens()) == 2

    def test_full_program_runs(self):
        engine = engine_with(
            """
            (literalize player name team)
            (p SwitchTeams
              { [player ^team A] <ATeam> }
              { [player ^team B] <BTeam> }
              :test ((count <ATeam>) == (count <BTeam>))
              -->
              (set-modify <ATeam> ^team B)
              (set-modify <BTeam> ^team A))
            """
        )
        engine.make("player", name="a1", team="A")
        engine.make("player", name="b1", team="B")
        engine.run(limit=1)
        assert engine.wm.find("player", name="a1", team="B")
        assert engine.wm.find("player", name="b1", team="A")


class TestQueryGeneration:
    def test_tuple_rule_query_shape(self):
        rule = parse_rule("(p r (E ^name <x>) (W ^name <x>) --> (halt))")
        sql = soi_query_sql(rule)
        assert '"COND-E" AS c1' in sql
        assert "c1.wme_tag IS NOT NULL" in sql
        assert "GROUP BY" not in sql

    def test_set_rule_query_groups_by_scalars(self):
        rule = parse_rule(
            "(p r (E ^name <x>) [W ^name <x> ^job clerk] --> (halt))"
        )
        sql = soi_query_sql(rule)
        assert "GROUP BY c1.wme_tag" in sql
        assert "COLLECT(c2.wme_tag)" in sql

    def test_scalar_pv_in_group_by(self):
        rule = parse_rule(
            "(p r [emp ^dept <d>] :scalar (<d>) --> (halt))"
        )
        sql = soi_query_sql(rule)
        assert 'GROUP BY c1."dept"' in sql

    def test_pure_set_rule_has_no_group_by(self):
        rule = parse_rule("(p r [emp] --> (halt))")
        sql = soi_query_sql(rule)
        assert "GROUP BY" not in sql
        assert "COLLECT" in sql

    def test_queries_run_counter(self):
        matcher = DipsMatcher()
        engine = RuleEngine(matcher=matcher)
        engine.add_rule("(p r (a) --> (halt))")
        engine.make("a")
        assert matcher.stats["queries_run"] >= 1


class TestUnsupportedPredicates:
    def test_same_type_predicate_rejected(self):
        # <=> has no SQL translation; the DIPS matcher refuses clearly.
        from repro.errors import DipsError

        rule = parse_rule(
            "(p r (a ^x <v>) (b ^y <=> <v>) --> (halt))"
        )
        with pytest.raises(DipsError):
            soi_query_sql(rule)
