"""Property: runtime rule surgery is equivalent to building fresh.

Hypothesis interleaves ``add_rule`` / ``excise`` / ``replace_rule``
with working-memory asserts and retracts across all five matchers.
After every step the surviving engine must agree with an *oracle*: a
fresh engine of the same matcher whose final rule set is installed
first and whose full make/remove history is then replayed in order
(so time tags align).  Agreement means the same conflict set in the
same strategy order — which covers matching, recency, and that no
stale instantiations of excised rules linger.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import RuleEngine, ShardedReteNetwork
from repro.dips import DipsMatcher
from repro.errors import ReproError
from repro.match import NaiveMatcher, TreatMatcher
from repro.rete import ReteNetwork

LITERALIZE = """
(literalize item owner v)
(literalize owner name)
"""

#: Rule portfolio keyed by name; surgery ops pick from this pool so
#: the oracle can reinstall "whatever is currently loaded" by name.
PORTFOLIO = {
    "join": "(p join (item ^owner <o>) (owner ^name <o>) "
            "--> (write join <o>))",
    "lonely": "(p lonely (item ^owner <o>) -(owner ^name <o>) "
              "--> (write lonely <o>))",
    "allitems": "(p allitems [item ^v <v>] --> (write all))",
    "groups": "(p groups { [item ^owner <o>] <S> } :scalar (<o>) "
              ":test ((count <S>) >= 2) --> (write group <o>))",
}

#: Alternate bodies for replace: same names, different guts.
VARIANTS = {
    "join": "(p join (item ^owner <o>) (owner ^name <o>) "
            "--> (write join2 <o>))",
    "lonely": "(p lonely (item ^v {<v> > 4}) --> (write big <v>))",
    "allitems": "(p allitems [item ^owner <o>] :scalar (<o>) "
                "--> (write per <o>))",
    "groups": "(p groups { [item ^owner <o>] <S> } :scalar (<o>) "
              ":test ((count <S>) >= 3) --> (write group3 <o>))",
}

OWNERS = ["ann", "bob"]
RULE_NAMES = sorted(PORTFOLIO)

MATCHERS = {
    "rete": lambda: ReteNetwork(),
    "treat": lambda: TreatMatcher(),
    "naive": lambda: NaiveMatcher(),
    "dips": lambda: DipsMatcher(),
    "sharded": lambda: ShardedReteNetwork(shards=3),
}


@st.composite
def surgery_sequences(draw):
    return draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("make"),
                    st.sampled_from(OWNERS),
                    st.integers(0, 9),
                ),
                st.tuples(st.just("make-owner"), st.sampled_from(OWNERS)),
                st.tuples(st.just("remove"), st.integers(0, 30)),
                st.tuples(st.just("add"), st.sampled_from(RULE_NAMES)),
                st.tuples(st.just("excise"), st.sampled_from(RULE_NAMES)),
                st.tuples(st.just("replace"),
                          st.sampled_from(RULE_NAMES)),
            ),
            min_size=1,
            max_size=20,
        )
    )


def conflict_order(engine):
    return [
        (inst.rule.name, tuple(inst.recency_key()))
        for inst in engine.conflict_set.ordered(engine.strategy)
    ]


def _fresh(make_matcher, loaded, history):
    """The oracle: current rules first, then the WM history replayed."""
    oracle = RuleEngine(matcher=make_matcher())
    oracle.load(LITERALIZE)
    for name in sorted(loaded):
        oracle.add_rule(loaded[name])
    made = []
    for op in history:
        if op[0] == "make":
            made.append(oracle.make("item", owner=op[1], v=op[2]))
        elif op[0] == "make-owner":
            made.append(oracle.make("owner", name=op[1]))
        else:
            oracle.remove(made[op[1]])
    return oracle


def _close(engine):
    close = getattr(engine.matcher, "close", None)
    if close is not None:
        close()


def drive(make_matcher, ops):
    engine = RuleEngine(matcher=make_matcher())
    engine.load(LITERALIZE)
    loaded = {}
    history = []
    made = []

    def live_indexes():
        return [i for i, w in enumerate(made) if w in engine.wm]

    for op in ops:
        kind = op[0]
        if kind == "make":
            made.append(engine.make("item", owner=op[1], v=op[2]))
            history.append(op)
        elif kind == "make-owner":
            made.append(engine.make("owner", name=op[1]))
            history.append(op)
        elif kind == "remove":
            live = live_indexes()
            if not live:
                continue
            index = live[op[1] % len(live)]
            engine.remove(made[index])
            history.append(("remove", index))
        elif kind == "add":
            if op[1] in loaded:
                continue
            source = PORTFOLIO[op[1]]
            engine.add_rule(source)
            loaded[op[1]] = source
        elif kind == "excise":
            if op[1] not in loaded:
                continue
            engine.excise(op[1])
            del loaded[op[1]]
        else:  # replace
            if op[1] not in loaded:
                continue
            current = loaded[op[1]]
            source = (
                VARIANTS[op[1]] if current == PORTFOLIO[op[1]]
                else PORTFOLIO[op[1]]
            )
            engine.replace_rule(op[1], source)
            loaded[op[1]] = source

        oracle = _fresh(make_matcher, loaded, history)
        try:
            assert conflict_order(engine) == conflict_order(oracle), (
                f"diverged after {op!r}"
            )
        finally:
            _close(oracle)
    _close(engine)


class TestSurgeryEquivalence:
    @pytest.mark.parametrize("name", sorted(MATCHERS))
    @given(ops=surgery_sequences())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_surgery_equals_fresh_build(self, name, ops):
        drive(MATCHERS[name], ops)

    @given(ops=surgery_sequences())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_refraction_survives_surgery(self, ops):
        """Firing then doing surgery never refires untouched rules."""
        engine = RuleEngine(matcher=ReteNetwork())
        engine.load(LITERALIZE)
        engine.add_rule(PORTFOLIO["join"])
        engine.make("item", owner="ann", v=1)
        engine.make("owner", name="ann")
        assert engine.run() == 1
        # Surgery on OTHER rules must not re-arm the fired join.
        for op in ops:
            if op[0] == "add" and op[1] != "join":
                try:
                    engine.add_rule(PORTFOLIO[op[1]])
                except ReproError:
                    pass
            elif op[0] == "excise" and op[1] != "join":
                try:
                    engine.excise(op[1])
                except ReproError:
                    pass
        engine.run()
        assert engine.output.count("join ann") == 1
