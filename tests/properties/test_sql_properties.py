"""Property tests: the SQL engine against hand-rolled Python oracles."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdb import Database, run_sql

_rows = st.lists(
    st.tuples(
        st.sampled_from(["eng", "ops", "mgmt"]),
        st.one_of(st.integers(0, 100), st.none()),
    ),
    min_size=0,
    max_size=30,
)


def build_db(rows):
    db = Database()
    run_sql(db, "CREATE TABLE t (dept str, salary int)")
    table = db.table("t")
    for dept, salary in rows:
        table.insert({"dept": dept, "salary": salary})
    return db


class TestAggregationOracle:
    @given(_rows)
    @settings(max_examples=80, deadline=None)
    def test_group_by_matches_python_groupby(self, rows):
        db = build_db(rows)
        result = run_sql(
            db,
            "SELECT dept, COUNT(*) AS n, SUM(salary) AS total, "
            "COLLECT(salary) AS vals FROM t GROUP BY dept",
        )
        expected = {}
        for dept, salary in rows:
            bucket = expected.setdefault(dept, {"n": 0, "vals": []})
            bucket["n"] += 1
            if salary is not None:
                bucket["vals"].append(salary)
        assert len(result) == len(expected)
        for row in result:
            bucket = expected[row["dept"]]
            assert row["n"] == bucket["n"]
            assert row["vals"] == bucket["vals"]
            assert row["total"] == (
                sum(bucket["vals"]) if bucket["vals"] else None
            )

    @given(_rows, st.integers(0, 100))
    @settings(max_examples=80, deadline=None)
    def test_where_matches_python_filter(self, rows, threshold):
        db = build_db(rows)
        result = run_sql(
            db, f"SELECT * FROM t WHERE salary >= {threshold}"
        )
        expected = [
            (dept, salary)
            for dept, salary in rows
            if salary is not None and salary >= threshold
        ]
        assert sorted(
            (row["dept"], row["salary"]) for row in result
        ) == sorted(expected)

    @given(_rows)
    @settings(max_examples=60, deadline=None)
    def test_optimizer_never_changes_join_results(self, rows):
        db = build_db(rows)
        run_sql(db, "CREATE TABLE d (dept str, floor int)")
        for dept, floor in [("eng", 1), ("ops", 2)]:
            db.table("d").insert({"dept": dept, "floor": floor})
        sql = (
            "SELECT t.salary, d.floor FROM t, d "
            "WHERE t.dept = d.dept AND t.salary IS NOT NULL"
        )
        canon = lambda result: sorted(
            (row["t.salary"], row["d.floor"]) for row in result
        )
        assert canon(run_sql(db, sql, optimize=True)) == canon(
            run_sql(db, sql, optimize=False)
        )
