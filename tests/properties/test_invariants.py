"""Property-based invariants on the core data structures.

* aggregate states always agree with a from-scratch recomputation;
* γ-memory token lists stay ordered like the conflict set, and SOI
  versions increase monotonically;
* the Rete network's incremental state after a random op sequence
  equals a fresh network fed the surviving WMEs ("incremental = batch");
* internal bookkeeping (token indexes, memories) is leak-free after
  everything is removed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instantiation import MatchToken
from repro.lang.parser import parse_rule
from repro.match.base import CountingListener, NullListener
from repro.rete import ReteNetwork
from repro.rete.aggregates import AggregateSpec, AggregateState
from repro.wm import WME, WorkingMemory

# ---------------------------------------------------------------------------
# Aggregates vs oracle
# ---------------------------------------------------------------------------

_ops = st.lists(
    st.tuples(st.sampled_from(["add", "remove"]), st.integers(0, 5)),
    min_size=1,
    max_size=40,
)


def _oracle(op, live_values, kind):
    if kind == "pv":
        domain = sorted(set(live_values))
    else:
        domain = sorted(live_values)
    if op == "count":
        return len(domain)
    if not domain:
        return None
    if op == "sum":
        return sum(domain) if domain else 0
    if op == "avg":
        return sum(domain) / len(domain)
    if op == "min":
        return domain[0]
    return domain[-1]


class TestAggregateOracle:
    @given(_ops, st.sampled_from(["count", "sum", "min", "max", "avg"]),
           st.sampled_from(["pv", "ce"]))
    @settings(max_examples=120, deadline=None)
    def test_incremental_equals_recompute(self, ops, op, kind):
        spec = AggregateSpec(op, "S", kind, 0, "v")
        state = AggregateState(spec)
        live = []  # (token, value)
        tag = 0
        for action, value in ops:
            if action == "add" or not live:
                tag += 1
                token = MatchToken([WME("item", {"v": value}, tag)])
                state.add_token(token)
                live.append((token, value))
            else:
                token, _ = live.pop(value % len(live))
                state.remove_token(token)
            values = [v for _, v in live]
            expected = _oracle(op, values, kind)
            if op == "sum" and not values:
                # sum over empty: our state reports 0, oracle None-ish.
                assert state.value() == 0
            else:
                assert state.value() == expected


# ---------------------------------------------------------------------------
# γ-memory ordering + version monotonicity
# ---------------------------------------------------------------------------

SET_RULE = "(p watch [item ^owner <o> ^v <v>] :scalar (<o>) --> (halt))"

_wm_ops = st.lists(
    st.one_of(
        st.tuples(st.just("make"), st.sampled_from(["a", "b"]),
                  st.integers(0, 4)),
        st.tuples(st.just("remove"), st.integers(0, 30), st.just(0)),
    ),
    min_size=1,
    max_size=30,
)


class TestGammaMemoryInvariants:
    @given(_wm_ops)
    @settings(max_examples=80, deadline=None)
    def test_tokens_sorted_and_versions_monotone(self, ops):
        wm = WorkingMemory()
        net = ReteNetwork()
        net.set_listener(NullListener())
        net.attach(wm)
        net.add_rule(parse_rule(SET_RULE))
        snode = net.snode_for("watch")
        made = []
        last_versions = {}
        for op in ops:
            if op[0] == "make":
                made.append(wm.make("item", owner=op[1], v=op[2]))
            else:
                live = [w for w in made if w in wm]
                if live:
                    wm.remove(live[op[1] % len(live)])
            for soi in snode.gamma.values():
                keys = [t.time_tags() for t in soi.tokens]
                assert keys == sorted(keys, reverse=True)
                # Hold the SOI object itself so CPython cannot recycle
                # its id() for a successor SOI.
                _, previous = last_versions.get(id(soi), (None, -1))
                assert soi.version >= previous
                last_versions[id(soi)] = (soi, soi.version)


# ---------------------------------------------------------------------------
# Incremental = batch
# ---------------------------------------------------------------------------

PORTFOLIO = [
    "(p j (item ^owner <o>) (owner ^name <o>) --> (halt))",
    "(p n (item ^owner <o>) -(owner ^name <o>) --> (halt))",
    "(p s { [item ^v <v>] <S> } :test ((count <S>) >= 2) --> (halt))",
]


def snapshot(listener_live):
    return sorted(
        (
            inst.rule.name,
            tuple(
                sorted(
                    tuple(w.time_tag if w else 0 for w in t.wmes())
                    for t in inst.tokens()
                )
            ),
        )
        for inst in listener_live
    )


class _Recorder:
    def __init__(self):
        self.live = []

    def insert(self, inst):
        self.live.append(inst)

    def retract(self, inst):
        self.live.remove(inst)

    def reposition(self, inst):
        pass


class TestIncrementalEqualsBatch:
    @given(_wm_ops)
    @settings(max_examples=60, deadline=None)
    def test_replay_matches(self, ops):
        wm = WorkingMemory()
        recorder = _Recorder()
        net = ReteNetwork()
        net.set_listener(recorder)
        net.attach(wm)
        for source in PORTFOLIO:
            net.add_rule(parse_rule(source))
        made = []
        for op in ops:
            if op[0] == "make":
                made.append(
                    wm.make("item", owner=op[1], v=op[2])
                    if op[1] == "a"
                    else wm.make("owner", name=str(op[2]))
                )
            else:
                live = [w for w in made if w in wm]
                if live:
                    wm.remove(live[op[1] % len(live)])

        # Batch network: rules first, then the surviving WMEs replayed
        # (with their original time tags preserved via direct events).
        batch_wm = WorkingMemory()
        batch_recorder = _Recorder()
        batch = ReteNetwork()
        batch.set_listener(batch_recorder)
        batch.attach(batch_wm)
        for source in PORTFOLIO:
            batch.add_rule(parse_rule(source))
        from repro.wm.events import ADD, WMEvent

        for wme in wm:
            batch.on_event(WMEvent(ADD, wme))

        assert snapshot(recorder.live) == snapshot(batch_recorder.live)


# ---------------------------------------------------------------------------
# Leak freedom
# ---------------------------------------------------------------------------


class TestNoLeaks:
    @given(_wm_ops)
    @settings(max_examples=60, deadline=None)
    def test_everything_cleans_up(self, ops):
        wm = WorkingMemory()
        listener = CountingListener()
        net = ReteNetwork()
        net.set_listener(listener)
        net.attach(wm)
        for source in PORTFOLIO:
            net.add_rule(parse_rule(source))
        made = []
        for op in ops:
            if op[0] == "make":
                made.append(wm.make("item", owner=op[1], v=op[2]))
            else:
                live = [w for w in made if w in wm]
                if live:
                    wm.remove(live[op[1] % len(live)])
        wm.clear()
        assert net.stats.tokens_created == net.stats.tokens_deleted
        assert not net._wme_tokens
        assert not net._wme_neg_results
        assert listener.inserts == listener.retracts
        for snode in net.snodes.values():
            assert snode.gamma == {}
