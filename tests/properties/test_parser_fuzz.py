"""Fuzzing the parser: arbitrary input must fail cleanly, never crash."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError, ReproError
from repro.lang.parser import parse_expression, parse_program, parse_rule
from repro.lang.tokens import tokenize

_text = st.text(
    alphabet=st.sampled_from(
        list("()[]{}<>^;|\"' \n\t-=+*/abcxyz0123456789:pP")
    ),
    max_size=80,
)


class TestParserRobustness:
    @given(_text)
    @settings(max_examples=300, deadline=None)
    def test_parse_rule_raises_only_repro_errors(self, source):
        try:
            parse_rule(source)
        except ReproError:
            pass  # ParseError / RuleError are the contract

    @given(_text)
    @settings(max_examples=200, deadline=None)
    def test_parse_program_raises_only_repro_errors(self, source):
        try:
            parse_program(source)
        except ReproError:
            pass

    @given(_text)
    @settings(max_examples=200, deadline=None)
    def test_expression_parser(self, source):
        try:
            parse_expression(source)
        except ReproError:
            pass

    @given(_text)
    @settings(max_examples=300, deadline=None)
    def test_tokenizer_terminates(self, source):
        try:
            tokens = tokenize(source)
        except ParseError:
            return
        assert tokens[-1].kind == "EOF"

    @given(st.text(max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_fully_arbitrary_unicode(self, source):
        try:
            parse_rule(source)
        except ReproError:
            pass
