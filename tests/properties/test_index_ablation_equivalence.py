"""Join indexing and matcher choice never change behaviour.

For any random interleaving of makes and removes:

* ``ReteNetwork(indexed_joins=True)`` and ``indexed_joins=False`` reach
  identical conflict sets (same instantiations, same dominance order)
  and then fire the same rules on the same time tags in the same order;
* TREAT and the naive recompute-everything oracle agree with both;
* all of them run under ONE shared :class:`MatchStats` hook, proving
  the instrumentation itself never perturbs matching.

The portfolio deliberately spans positive joins, a negated CE, and a
set-oriented rule so index maintenance, negative-node counts, and
S-node γ-memories all get exercised by the same op sequence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MatchStats, RuleEngine
from repro.match import NaiveMatcher, TreatMatcher
from repro.rete import ReteNetwork

PROGRAM = """
(literalize item owner v)
(literalize owner name)
(p pair (item ^owner <o> ^v <v>) (owner ^name <o>) --> (write <o> <v>))
(p lonely (item ^owner <o>) -(owner ^name <o>) --> (write <o>))
(p tally { [item ^owner <o> ^v <v>] <S> }
  :scalar (<o>)
  :test ((count <S>) >= 2)
  -->
  (write <o> (count <S>)))
"""

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("item"), st.sampled_from(["a", "b"]),
                  st.integers(0, 3)),
        st.tuples(st.just("owner"), st.sampled_from(["a", "b"]),
                  st.just(0)),
        st.tuples(st.just("remove"), st.integers(0, 30), st.just(0)),
    ),
    min_size=1,
    max_size=12,
)


def _build_engines(stats):
    configs = {
        "rete-indexed": ReteNetwork(indexed_joins=True),
        "rete-scan": ReteNetwork(indexed_joins=False),
        "treat": TreatMatcher(),
        "naive": NaiveMatcher(),
    }
    engines = {}
    for name, matcher in configs.items():
        engine = RuleEngine(matcher=matcher, stats=stats)
        engine.load(PROGRAM)
        engines[name] = engine
    return engines


def _apply(engine, ops):
    made = []
    for kind, first, second in ops:
        if kind == "item":
            made.append(engine.make("item", owner=first, v=second))
        elif kind == "owner":
            made.append(engine.make("owner", name=first))
        else:
            live = [w for w in made if w in engine.wm]
            if live:
                engine.remove(live[first % len(live)])


def _conflict_order(engine):
    return [
        (inst.rule.name, inst.recency_key())
        for inst in engine.conflict_set.ordered(engine.strategy)
        if inst.eligible()
    ]


def _firing_sequence(engine):
    engine.run()
    return [(f.rule_name, f.time_tags) for f in engine.tracer.firings]


class TestIndexAblationEquivalence:
    @given(_ops)
    @settings(max_examples=60, deadline=None)
    def test_identical_conflict_sets_and_firings(self, ops):
        stats = MatchStats()
        engines = _build_engines(stats)
        for engine in engines.values():
            _apply(engine, ops)

        conflict_orders = {
            name: _conflict_order(engine)
            for name, engine in engines.items()
        }
        baseline = conflict_orders["rete-indexed"]
        for name, order in conflict_orders.items():
            assert order == baseline, name

        firings = {
            name: _firing_sequence(engine)
            for name, engine in engines.items()
        }
        baseline_firings = firings["rete-indexed"]
        for name, sequence in firings.items():
            assert sequence == baseline_firings, name

        # The shared hook saw all four matchers' work.
        assert stats.totals["join_tests_attempted"] >= 0
        if baseline_firings:
            assert stats.cycle_count == 4 * len(baseline_firings)
