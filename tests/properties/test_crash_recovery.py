"""Crash + recover == never crashed, for every matcher.

The durability contract (``docs/DURABILITY.md``): after a crash at any
point, ``RuleEngine.recover()`` rebuilds working memory, the conflict
set (contents, dominance order, refire eligibility), and the
subsequent firing order *identical to the uninterrupted run* — up to
the last durable WAL record.  Three crash models are exercised:

* **abrupt stop** — the process dies without ``close()``; every
  flushed record survives, so the recovered engine equals the full
  uninterrupted state and continues firing identically;
* **torn append** — the n-th WAL append writes only a prefix of its
  frame (``FaultInjector(torn_append=...)``); the recovered engine
  equals the state just before the torn operation;
* **crash inside checkpointing** — at each named checkpoint fault
  point; recovery must land on the full pre-checkpoint state whether
  or not the new checkpoint became CURRENT.

Workloads are randomized (seeded for the cross-matcher matrix,
hypothesis-driven for Rete) over makes, modifies, removes, and
interleaved ``run()`` calls, against a rule portfolio with a join, a
negation, and a set-oriented aggregate.
"""

import random
import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DurabilityConfig, RuleEngine
from repro.durability import FaultInjector, SimulatedCrash
from repro.dips.matcher import DipsMatcher
from repro.match import NaiveMatcher, TreatMatcher
from repro.rete import ReteNetwork

PROGRAM = """
(literalize item owner v)
(literalize owner name)
(p pair (item ^owner <o> ^v <v>) (owner ^name <o>) --> (write <o> <v>))
(p lonely (item ^owner <o>) -(owner ^name <o>) --> (write <o>))
(p tally { [item ^owner <o> ^v <v>] <S> }
  :scalar (<o>)
  :test ((count <S>) >= 2)
  -->
  (write <o> (count <S>)))
"""

MATCHERS = {
    "rete": ReteNetwork,
    "treat": TreatMatcher,
    "naive": NaiveMatcher,
    "dips": DipsMatcher,
}


def _random_ops(rng, n):
    """A mixed workload: single ops, batches, and run points."""
    ops = []
    for _ in range(n):
        kind = rng.random()
        if kind < 0.35:
            ops.append(("make", "item", rng.choice("ab"),
                        rng.randrange(4)))
        elif kind < 0.5:
            ops.append(("make", "owner", rng.choice("ab"), 0))
        elif kind < 0.65:
            ops.append(("modify", rng.randrange(1, 40), rng.randrange(4)))
        elif kind < 0.75:
            ops.append(("remove", rng.randrange(1, 40)))
        elif kind < 0.9:
            ops.append(("batch", [
                ("make", "item", rng.choice("ab"), rng.randrange(4))
                for _ in range(rng.randrange(1, 4))
            ]))
        else:
            ops.append(("run", rng.randrange(1, 5)))
    return ops


def _apply_op(engine, op):
    kind = op[0]
    if kind == "make":
        _, cls, key, v = op
        if cls == "item":
            engine.make("item", owner=key, v=v)
        else:
            engine.make("owner", name=key)
    elif kind == "modify":
        _, tag, v = op
        wme = engine.wm.get(tag)
        if wme is not None and wme.wme_class == "item":
            engine.modify(wme, v=v)
    elif kind == "remove":
        wme = engine.wm.get(op[1])
        if wme is not None:
            engine.remove(wme)
    elif kind == "batch":
        with engine.batch():
            for sub in op[1]:
                _apply_op(engine, sub)
    elif kind == "run":
        engine.run(limit=op[1])
    else:  # pragma: no cover - workload generator bug
        raise AssertionError(op)


def wm_state(engine):
    return sorted(
        (w.time_tag, w.wme_class, tuple(sorted(w.as_dict().items())))
        for w in engine.wm
    )


def cs_state(engine):
    from repro.durability.manager import fired_signature

    return sorted(
        (
            inst.rule.name,
            inst.is_set_oriented,
            tuple(map(tuple, fired_signature(inst))),
            inst.eligible(),
        )
        for inst in engine.conflict_set.instantiations()
    )


def firing_trace(engine, limit=60):
    """Run to quiescence, recording (rule, recency tags) per firing."""
    trace = []
    for _ in range(limit):
        inst = engine.step()
        if inst is None:
            break
        trace.append((inst.rule.name, tuple(inst.recency_key())))
    return trace


def _assert_equal_state(recovered, reference):
    assert wm_state(recovered) == wm_state(reference)
    assert cs_state(recovered) == cs_state(reference)
    assert firing_trace(recovered) == firing_trace(reference)
    assert recovered.output == reference.output


def _reference_run(ops):
    reference = RuleEngine()
    reference.load(PROGRAM)
    for op in ops:
        _apply_op(reference, op)
    reference.tracer.output.clear()
    return reference


class TestAbruptStopAllMatchers:
    @pytest.mark.parametrize("matcher", sorted(MATCHERS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_recovered_equals_uninterrupted(self, matcher, seed,
                                            tmp_path):
        ops = _random_ops(random.Random(seed * 31 + 7), 25)
        durable = RuleEngine(
            matcher=MATCHERS[matcher](),
            durability=DurabilityConfig(tmp_path, fsync="off"),
        )
        durable.load(PROGRAM)
        for op in ops:
            _apply_op(durable, op)
        # Crash: the process stops here without close(); every record
        # already reached the OS, so nothing durable is lost.
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert type(recovered.matcher) is MATCHERS[matcher]
        _assert_equal_state(recovered, _reference_run(ops))


class TestTornAppend:
    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_recovery_rolls_back_to_before_the_torn_op(self, seed,
                                                       tmp_path):
        rng = random.Random(seed)
        # Pure-WM workload, every op wrapped in a batch: each op emits
        # at most ONE WAL record (the net delta-set), so the op whose
        # record tears is exactly the op whose effects are lost.
        ops = [op for op in _random_ops(rng, 30) if op[0] != "run"]
        # Skip past the session prelude (meta + literalize + rules).
        tear_at = rng.randrange(8, 8 + len(ops) // 2)
        fault = FaultInjector(torn_append=(tear_at, 0.5))
        durable = RuleEngine(
            durability=DurabilityConfig(tmp_path, fsync="off",
                                        fault=fault)
        )
        durable.load(PROGRAM)
        completed = 0
        try:
            for op in ops:
                with durable.batch():
                    _apply_op(durable, op)
                completed += 1
        except SimulatedCrash:
            pass
        recovered = RuleEngine.recover(tmp_path, durability=False)
        if fault.crashed:
            assert completed < len(ops)
            assert recovered.recovery_report.tail_damaged
        reference = RuleEngine()
        reference.load(PROGRAM)
        for op in ops[:completed]:
            with reference.batch():
                _apply_op(reference, op)
        _assert_equal_state(recovered, reference)


class TestCheckpointCrashes:
    @pytest.mark.parametrize("point", [
        "checkpoint.begin",
        "checkpoint.files",
        "checkpoint.rename",
        "checkpoint.current",
        "checkpoint.truncate",
    ])
    def test_any_checkpoint_crash_preserves_state(self, point, tmp_path):
        ops = _random_ops(random.Random(99), 20)
        fault = FaultInjector(crash_at={point: 1})
        durable = RuleEngine(
            durability=DurabilityConfig(tmp_path, fsync="off",
                                        fault=fault)
        )
        durable.load(PROGRAM)
        for op in ops:
            _apply_op(durable, op)
        with pytest.raises(SimulatedCrash):
            durable.checkpoint()
        recovered = RuleEngine.recover(tmp_path, durability=False)
        _assert_equal_state(recovered, _reference_run(ops))

    def test_crash_after_one_good_checkpoint(self, tmp_path):
        # First checkpoint succeeds; the second crashes mid-rename.
        # Recovery must use whichever checkpoint CURRENT names plus the
        # WAL tail, landing on the same state either way.
        ops = _random_ops(random.Random(123), 15)
        more = _random_ops(random.Random(124), 10)
        fault = FaultInjector(crash_at={"checkpoint.rename": 2})
        durable = RuleEngine(
            durability=DurabilityConfig(tmp_path, fsync="off",
                                        fault=fault)
        )
        durable.load(PROGRAM)
        for op in ops:
            _apply_op(durable, op)
        durable.checkpoint()
        for op in more:
            _apply_op(durable, op)
        with pytest.raises(SimulatedCrash):
            durable.checkpoint()
        recovered = RuleEngine.recover(tmp_path, durability=False)
        _assert_equal_state(recovered, _reference_run(ops + more))


_op = st.one_of(
    st.tuples(st.just("make"), st.just("item"),
              st.sampled_from(["a", "b"]), st.integers(0, 3)),
    st.tuples(st.just("make"), st.just("owner"),
              st.sampled_from(["a", "b"]), st.just(0)),
    st.tuples(st.just("modify"), st.integers(1, 30), st.integers(0, 3)),
    st.tuples(st.just("remove"), st.integers(1, 30)),
    st.tuples(st.just("run"), st.integers(1, 4)),
)


class TestHypothesisRete:
    @settings(max_examples=25, deadline=None)
    @given(ops=st.lists(_op, min_size=1, max_size=20))
    def test_abrupt_stop_round_trip(self, ops):
        # tempfile instead of tmp_path: hypothesis reuses the fixture
        # across examples, which would accrete WAL state.
        wal_dir = tempfile.mkdtemp(prefix="crashprop-")
        try:
            durable = RuleEngine(
                durability=DurabilityConfig(wal_dir, fsync="off")
            )
            durable.load(PROGRAM)
            for op in ops:
                _apply_op(durable, op)
            recovered = RuleEngine.recover(wal_dir, durability=False)
            _assert_equal_state(recovered, _reference_run(ops))
        finally:
            shutil.rmtree(wal_dir, ignore_errors=True)
