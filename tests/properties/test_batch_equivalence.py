"""Batched and per-event propagation are observationally identical.

For any random sequence of delta-batches — each mixing makes, modifies,
and removes, including make/remove of the *same* WME inside one batch —
every matcher reaches the same conflict set (same instantiations, same
dominance order, same refire eligibility) and then fires the same rules
on the same time tags in the same order as the per-event reference.

The reference is ``ReteNetwork(batched=False)``: it receives the same
flushed *net* delta-sets but replays them one event at a time, which is
the semantics ``docs/BATCHING.md`` documents (a batch applies its net
delta atomically).  TREAT, naive, and DIPS run their own set-oriented
batch entry points and are held to the same behaviour.

The portfolio spans a positive join rule, a negated-CE rule, and a
set-oriented rule with an aggregate ``:test`` — so grouped join
probing, per-event negation, and the staged S-node flush are all
exercised by the same op sequences.  Interleaved ``run()`` calls
between batches check refire behaviour: an SOI whose set was touched by
a batch must become eligible again, an untouched one must not.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MatchStats, RuleEngine
from repro.dips.matcher import DipsMatcher
from repro.match import NaiveMatcher, TreatMatcher
from repro.rete import ReteNetwork

PROGRAM = """
(literalize item owner v)
(literalize owner name)
(p pair (item ^owner <o> ^v <v>) (owner ^name <o>) --> (write <o> <v>))
(p lonely (item ^owner <o>) -(owner ^name <o>) --> (write <o>))
(p tally { [item ^owner <o> ^v <v>] <S> }
  :scalar (<o>)
  :test ((count <S>) >= 2)
  -->
  (write <o> (count <S>)))
"""

_op = st.one_of(
    st.tuples(st.just("item"), st.sampled_from(["a", "b"]),
              st.integers(0, 3)),
    st.tuples(st.just("owner"), st.sampled_from(["a", "b"]), st.just(0)),
    st.tuples(st.just("modify"), st.integers(0, 30), st.integers(0, 3)),
    st.tuples(st.just("remove"), st.integers(0, 30), st.just(0)),
)

# A scenario is a sequence of batches; True entries mean "run to
# quiescence here" so later batches exercise refire semantics.
_scenario = st.lists(
    st.one_of(
        st.lists(_op, min_size=1, max_size=6),
        st.just(True),
    ),
    min_size=1,
    max_size=6,
)


def _build_engines():
    configs = {
        "rete-batched": ReteNetwork(batched=True),
        "rete-replay": ReteNetwork(batched=False),
        "treat": TreatMatcher(),
        "naive": NaiveMatcher(),
        "dips": DipsMatcher(),
    }
    engines = {}
    for name, matcher in configs.items():
        engine = RuleEngine(matcher=matcher, stats=MatchStats())
        engine.load(PROGRAM)
        engines[name] = engine
    return engines


def _apply_batch(engine, ops, made):
    """One engine.batch() applying *ops*; mutates *made* in WM order."""
    with engine.batch():
        for kind, first, second in ops:
            if kind == "item":
                made.append(engine.make("item", owner=first, v=second))
            elif kind == "owner":
                made.append(engine.make("owner", name=first))
            else:
                live = [w for w in made if w in engine.wm]
                if not live:
                    continue
                target = live[first % len(live)]
                if kind == "modify":
                    if target.wme_class == "item":
                        made.append(engine.modify(target, v=second))
                    else:
                        made.append(engine.modify(target))
                else:
                    engine.remove(target)


def _conflict_order(engine):
    return [
        (inst.rule.name, inst.recency_key())
        for inst in engine.conflict_set.ordered(engine.strategy)
        if inst.eligible()
    ]


class TestBatchEquivalence:
    @given(_scenario)
    @settings(max_examples=60, deadline=None)
    def test_identical_conflict_sets_and_firings(self, scenario):
        engines = _build_engines()
        mades = {name: [] for name in engines}
        fired = {name: [] for name in engines}
        for step in scenario:
            for name, engine in engines.items():
                if step is True:
                    engine.run()
                    fired[name] = [
                        (f.rule_name, f.time_tags)
                        for f in engine.tracer.firings
                    ]
                else:
                    _apply_batch(engine, step, mades[name])
            orders = {
                name: _conflict_order(engine)
                for name, engine in engines.items()
            }
            baseline = orders["rete-replay"]
            for name, order in orders.items():
                assert order == baseline, (name, order, baseline)
            baseline_fired = fired["rete-replay"]
            for name, sequence in fired.items():
                assert sequence == baseline_fired, name

        # Final drain: identical firing sequences and outputs.
        outputs = {}
        for name, engine in engines.items():
            engine.run()
            outputs[name] = (
                [(f.rule_name, f.time_tags) for f in engine.tracer.firings],
                engine.output,
            )
        baseline = outputs["rete-replay"]
        for name, result in outputs.items():
            assert result == baseline, name

    @given(st.lists(_op, min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_single_batch_equals_incremental(self, ops):
        """One batch vs. the same ops applied without batching."""
        batched = _build_engines()["rete-batched"]
        plain_engine = RuleEngine(matcher=ReteNetwork(batched=True))
        plain_engine.load(PROGRAM)

        made = []
        _apply_batch(batched, ops, made)
        plain_made = []
        # Apply per-event (no batch): same ops, immediate propagation.
        for kind, first, second in ops:
            if kind == "item":
                plain_made.append(
                    plain_engine.make("item", owner=first, v=second)
                )
            elif kind == "owner":
                plain_made.append(plain_engine.make("owner", name=first))
            else:
                live = [w for w in plain_made if w in plain_engine.wm]
                if not live:
                    continue
                target = live[first % len(live)]
                if kind == "modify":
                    if target.wme_class == "item":
                        plain_made.append(
                            plain_engine.modify(target, v=second)
                        )
                    else:
                        plain_made.append(plain_engine.modify(target))
                else:
                    plain_engine.remove(target)

        assert _conflict_order(batched) == _conflict_order(plain_engine)
        batched.run()
        plain_engine.run()
        assert batched.output == plain_engine.output
