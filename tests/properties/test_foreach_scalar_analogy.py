"""The paper's §6.1/§6.2 analogy, as a property.

"Note that the relations formed during the iteration also could have
been created if the iterator variable had been specified as scalar in
the LHS.  However, the subinstantiations would have been different
instantiations" — and default foreach order is "the order in which
they would have occurred as separate instantiations in the conflict
set".

So for any working memory: iterating ``foreach <v>`` (default order)
inside ONE firing must visit exactly the values, in exactly the order,
that the ``:scalar (<v>)`` variant would have fired as SEPARATE
instantiations.  Same for iterating a set CE versus demoting it to a
regular CE.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RuleEngine

FOREACH_PV = """
(literalize item g v)
(p walk [item ^g <g> ^v <v>]
  -->
  (foreach <g> (write <g>)))
"""

SCALAR_PV = """
(literalize item g v)
(p walk [item ^g <g> ^v <v>]
  :scalar (<g>)
  -->
  (write <g>))
"""

FOREACH_CE = """
(literalize item g v)
(p walk { [item ^g <g> ^v <v>] <S> }
  -->
  (foreach <S> (write <v>)))
"""

REGULAR_CE = """
(literalize item g v)
(p walk (item ^g <g> ^v <v>)
  -->
  (write <v>))
"""

_rosters = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 30)),
    min_size=1,
    max_size=10,
)


def run(program, roster, limit=50):
    engine = RuleEngine()
    engine.load(program)
    for group, value in roster:
        engine.make("item", g=group, v=value)
    engine.run(limit=limit)
    return engine.output


class TestForeachScalarAnalogy:
    @given(_rosters)
    @settings(max_examples=60, deadline=None)
    def test_pv_iteration_order_matches_scalar_firing_order(self, roster):
        assert run(FOREACH_PV, roster) == run(SCALAR_PV, roster)

    @given(_rosters.map(lambda r: [(g, i) for i, (g, _) in enumerate(r)]))
    @settings(max_examples=60, deadline=None)
    def test_ce_iteration_order_matches_regular_firing_order(self, roster):
        # Distinct v per WME so outputs identify elements uniquely.
        assert run(FOREACH_CE, roster) == run(REGULAR_CE, roster)
