"""Compiled kernels are observationally identical to the interpreter.

Two differential axes:

* **Across kernel modes** — for hypothesis-generated rule programs
  (randomized constant predicates, disjunctions, join predicates, a
  negated CE, a set-oriented aggregate) and random op sequences, a
  Rete network with ``kernels=off`` / ``closure`` / ``exec`` and a
  sharded network reach bit-identical conflict sets, firing sequences,
  and outputs.
* **Across matchers** — the interpreted comparison matchers (treat,
  naive, dips) agree with every kernelized configuration on the same
  scenarios, so a kernel bug cannot hide behind a matcher-specific
  quirk.

A direct network-level test additionally drives the defensive paths
working memory cannot produce — unhashable join-key values (lists) and
out-of-domain values (None) — through all three kernel modes, since
those fall back from index probes to scans post-filtered by the full
(compiled) test list.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RuleEngine
from repro.dips.matcher import DipsMatcher
from repro.match import NaiveMatcher, TreatMatcher
from repro.rete import ReteNetwork, ShardedReteNetwork

_CONST_PREDICATES = ["=", "<>", "<", "<=", ">", ">="]
# No '<=>' here: the DIPS matcher has no SQL translation for it.  The
# kernel-vs-interpreter grid in tests/rete/test_kernels.py covers it.
_JOIN_PREDICATES = ["=", "<>", "<", "<=", ">", ">="]


def _program(const_pred, const_val, join_pred, disjunction):
    """A rule portfolio with randomized test shapes.

    Always includes: a two-CE positive join whose second CE carries a
    constant test and an extra (non-equality capable) join predicate, a
    negated-CE rule, a disjunction alpha test, and a set-oriented
    aggregate rule — so alpha kernels, join kernels, residual-test
    kernels, negative-node kernels, and S-node feeding are all in play.
    """
    disj = " ".join(str(x) for x in disjunction)
    return f"""
(literalize item owner v)
(literalize owner name cap)
(p pair (item ^owner <o> ^v <v>)
        (owner ^name <o> ^cap {const_pred} {const_val}) -->
  (write <o> <v>))
(p rel (item ^owner <o> ^v <v>) (owner ^name <o> ^cap {join_pred} <v>)
  --> (write rel <o>))
(p pick (item ^v << {disj} >>) --> (write picked))
(p lonely (item ^owner <o>) -(owner ^name <o>) --> (write <o>))
(p tally {{ [item ^owner <o> ^v <v>] <S> }}
  :scalar (<o>)
  :test ((count <S>) >= 2)
  -->
  (write <o> (count <S>)))
"""


_op = st.one_of(
    st.tuples(st.just("item"), st.sampled_from(["a", "b"]),
              st.integers(0, 3)),
    st.tuples(st.just("owner"), st.sampled_from(["a", "b"]),
              st.integers(0, 3)),
    st.tuples(st.just("modify"), st.integers(0, 30), st.integers(0, 3)),
    st.tuples(st.just("remove"), st.integers(0, 30), st.just(0)),
)

_scenario = st.lists(
    st.one_of(st.lists(_op, min_size=1, max_size=5), st.just(True)),
    min_size=1,
    max_size=5,
)

_shape = st.tuples(
    st.sampled_from(_CONST_PREDICATES),
    st.integers(0, 3),
    st.sampled_from(_JOIN_PREDICATES),
    st.lists(
        st.one_of(st.integers(0, 3), st.sampled_from(["a", "b"])),
        min_size=1, max_size=3, unique=True,
    ),
)


def _build_engines(program):
    configs = {
        "rete-off": ReteNetwork(kernels="off"),
        "rete-closure": ReteNetwork(kernels="closure"),
        "rete-exec": ReteNetwork(kernels="exec"),
        "sharded-closure": ShardedReteNetwork(
            shards=2, kernels="closure"
        ),
        "treat": TreatMatcher(),
        "naive": NaiveMatcher(),
        "dips": DipsMatcher(),
    }
    engines = {}
    for name, matcher in configs.items():
        engine = RuleEngine(matcher=matcher)
        engine.load(program)
        engines[name] = engine
    return engines


def _apply_batch(engine, ops, made):
    with engine.batch():
        for kind, first, second in ops:
            if kind == "item":
                made.append(engine.make("item", owner=first, v=second))
            elif kind == "owner":
                made.append(engine.make("owner", name=first, cap=second))
            else:
                live = [w for w in made if w in engine.wm]
                if not live:
                    continue
                target = live[first % len(live)]
                if kind == "modify":
                    if target.wme_class == "item":
                        made.append(engine.modify(target, v=second))
                    else:
                        made.append(engine.modify(target, cap=second))
                else:
                    engine.remove(target)


def _conflict_order(engine):
    return [
        (inst.rule.name, inst.recency_key())
        for inst in engine.conflict_set.ordered(engine.strategy)
        if inst.eligible()
    ]


class TestKernelModeEquivalence:
    @given(_shape, _scenario)
    @settings(max_examples=40, deadline=None)
    def test_modes_and_matchers_agree(self, shape, scenario):
        engines = _build_engines(_program(*shape))
        mades = {name: [] for name in engines}
        for step in scenario:
            for name, engine in engines.items():
                if step is True:
                    engine.run()
                else:
                    _apply_batch(engine, step, mades[name])
            orders = {
                name: _conflict_order(engine)
                for name, engine in engines.items()
            }
            baseline = orders["rete-off"]
            for name, order in orders.items():
                assert order == baseline, (name, order, baseline)
        outputs = {}
        for name, engine in engines.items():
            engine.run()
            outputs[name] = (
                [(f.rule_name, f.time_tags)
                 for f in engine.tracer.firings],
                engine.output,
            )
        baseline = outputs["rete-off"]
        for name, result in outputs.items():
            assert result == baseline, name

    @given(_shape)
    @settings(max_examples=20, deadline=None)
    def test_backfill_after_facts_agrees(self, shape):
        """Rules added after WMEs exercise the kernelized backfill."""
        program = _program(*shape)
        results = {}
        for mode in ("off", "closure", "exec"):
            engine = RuleEngine(matcher=ReteNetwork(kernels=mode))
            engine.load("(literalize item owner v)\n"
                        "(literalize owner name cap)")
            for i in range(4):
                engine.make("item", owner="a" if i % 2 else "b", v=i)
                engine.make("owner", name="a", cap=i)
            engine.load(program)
            engine.run()
            results[mode] = (
                _conflict_order(engine),
                engine.output,
            )
        assert results["closure"] == results["off"]
        assert results["exec"] == results["off"]


class _OddWME:
    """WME-shaped object carrying values working memory would reject."""

    def __init__(self, tag, **values):
        self.wme_class = "a"
        self.time_tag = tag
        self._values = values

    def get(self, attribute):
        return self._values.get(attribute)

    def __repr__(self):
        return f"_OddWME({self.time_tag}, {self._values})"


class TestUnhashableJoinKeys:
    def test_kernel_modes_agree_on_exotic_values(self):
        """Lists/None as join keys: scan fallbacks stay equivalent.

        An unhashable probe value falls back from the index probe to a
        full scan post-filtered by the (compiled) test list; stored
        unhashable values live in the sentinel bucket every probe also
        returns.  All three modes must produce identical insert/retract
        streams.
        """
        from repro.lang import parse_rule
        from repro.match.base import CountingListener
        from repro.wm.events import ADD, REMOVE, WMEvent

        rule = parse_rule("(p self (a ^k <v>) (a ^k <v>) --> (halt))")
        streams = {}
        for mode in ("off", "closure", "exec"):
            network = ReteNetwork(kernels=mode)
            listener = CountingListener()
            network.set_listener(listener)
            network.add_rule(rule)
            unhashable = _OddWME(1, k=[1, 2])
            odd_none = _OddWME(2, k=None)
            plain_a = _OddWME(3, k=5)
            plain_b = _OddWME(4, k=5)
            network.on_batch([
                WMEvent(ADD, unhashable),
                WMEvent(ADD, odd_none),
                WMEvent(ADD, plain_a),
                WMEvent(ADD, plain_b),
            ])
            inserted = listener.inserts
            network.on_batch([WMEvent(REMOVE, plain_b)])
            streams[mode] = (inserted, listener.inserts,
                             listener.retracts)
        assert streams["closure"] == streams["off"]
        assert streams["exec"] == streams["off"]
        # The two k=5 WMEs self-join both ways, plus each with itself.
        assert streams["off"][0] == 4
