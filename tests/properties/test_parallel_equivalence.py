"""Differential testing: the parallel paths must equal sequential.

Two independent equivalence claims back ``docs/PARALLELISM.md``:

* **firing pool** — running a program with a worker pool
  (speculate-then-commit-in-order) must produce the same firing
  sequence, the same ``write`` output, the same working memory, the
  same conflict accounting, and byte-identical WAL contents as the
  sequential engine, on every matcher;
* **sharded match** — propagating deltas through
  :class:`ShardedReteNetwork` must yield conflict sets identical to a
  single plain :class:`ReteNetwork`, under Hypothesis-driven random
  operation sequences.

Plus the cost-model property the fix to ``firing_latency`` demands:
the closed-form latency must equal a measured greedy schedule of the
firing's dependency chains.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import RuleEngine, ShardedReteNetwork
from repro.dips import DipsMatcher
from repro.durability import DurabilityConfig
from repro.engine.parallel import (
    firing_latency,
    measured_schedule,
)
from repro.engine.tracing import FiringRecord
from repro.lang.parser import parse_rule
from repro.match import NaiveMatcher, TreatMatcher
from repro.rete import ReteNetwork
from repro.wm import WorkingMemory

MATCHERS = [ReteNetwork, TreatMatcher, NaiveMatcher, DipsMatcher]

# Scalar rules, a set-oriented rule with set-modify, writes, and a
# mutual-invalidation dedup workload (the §8.1 conflict case) in one
# program: every commit-time validation branch is exercised.
PROGRAM = """
(literalize emp name dept salary)
(literalize dept name budget)
(literalize note text)
(literalize rec key serial)
(p promote
  { [emp ^dept <d> ^salary < 9] <E> }
  (dept ^name <d> ^budget > 100)
  -->
  (set-modify <E> ^salary 9)
  (write promoted <d>))
(p tally
  (emp ^salary 9 ^name <n>)
  -(note ^text <n>)
  -->
  (make note ^text <n>)
  (write tally <n>))
(p dedup
  (rec ^key <k> ^serial <s>)
  { (rec ^key <k> ^serial < <s>) <Old> }
  -->
  (remove <Old>))
"""


def seed(engine):
    with engine.batch():
        for index in range(6):
            engine.make("emp", name=f"e{index}",
                        dept=f"d{index % 2}", salary=index)
        engine.make("dept", name="d0", budget=200)
        engine.make("dept", name="d1", budget=150)
        for serial in range(4):
            engine.make("rec", key="dup", serial=serial)


def canonical_wm(engine):
    return sorted(
        (wme.wme_class, wme.time_tag, tuple(sorted(wme.as_dict().items())))
        for wme in engine.wm
    )


def canonical_firings(engine):
    return [
        (record.cycle, record.rule_name, record.time_tags,
         record.makes, record.removes, record.modifies,
         record.writes, tuple(record.touched_ops), record.outcome)
        for record in engine.tracer.firings
    ]


def wal_bytes(wal_dir):
    import os

    from repro.durability.wal import SEGMENT_SUFFIX

    chunks = []
    for name in sorted(os.listdir(wal_dir)):
        if name.endswith(SEGMENT_SUFFIX):
            with open(os.path.join(wal_dir, name), "rb") as handle:
                chunks.append(handle.read())
    return b"".join(chunks)


def run_pooled(matcher_cls, workers, wal_dir=None):
    durability = (
        DurabilityConfig(wal_dir, fsync="off") if wal_dir else None
    )
    engine = RuleEngine(matcher=matcher_cls(), workers=workers,
                        durability=durability)
    engine.load(PROGRAM)
    seed(engine)
    result = engine.run_parallel(max_cycles=30)
    state = (
        result,
        canonical_firings(engine),
        list(engine.tracer.output),
        canonical_wm(engine),
    )
    engine.close()
    return state


class TestPooledFiringEquivalence:
    """workers=4 ≡ workers=1, per matcher, down to the WAL bytes."""

    @pytest.mark.parametrize("matcher_cls", MATCHERS)
    def test_pool_matches_sequential(self, matcher_cls):
        sequential = run_pooled(matcher_cls, workers=1)
        pooled = run_pooled(matcher_cls, workers=4)
        assert pooled == sequential
        result = pooled[0]
        assert result.fired > 0 and result.conflicted > 0

    @pytest.mark.parametrize("matcher_cls", MATCHERS)
    def test_wal_bytes_identical(self, matcher_cls, tmp_path):
        seq_dir = tmp_path / "seq"
        pool_dir = tmp_path / "pool"
        sequential = run_pooled(matcher_cls, 1, wal_dir=str(seq_dir))
        pooled = run_pooled(matcher_cls, 4, wal_dir=str(pool_dir))
        assert pooled == sequential
        assert wal_bytes(str(pool_dir)) == wal_bytes(str(seq_dir))

    def test_sharded_matcher_with_pool_matches_sequential(self):
        sequential = run_pooled(ReteNetwork, workers=1)
        sharded = run_pooled(
            lambda: ShardedReteNetwork(shards=3), workers=4
        )
        assert sharded == sequential

    def test_speculation_counters(self):
        from repro.engine.stats import MatchStats

        engine = RuleEngine(workers=4, stats=MatchStats())
        engine.load(PROGRAM)
        seed(engine)
        engine.run_parallel(max_cycles=30)
        counters = engine.stats.counters
        assert counters.get("pool_speculations", 0) > 0
        committed = counters.get("pool_plan_commits", 0)
        fallbacks = counters.get("pool_plan_fallbacks", 0)
        assert committed > 0
        # Every firing either replayed its plan or fell back live.
        assert committed + fallbacks >= len(
            [r for r in engine.tracer.firings if r.outcome == "fired"]
        )
        engine.close()


class TestCycleAccounting:
    """fired + conflicted + abandoned == snapshot, on every matcher."""

    @pytest.mark.parametrize("matcher_cls", MATCHERS)
    @pytest.mark.parametrize("workers", [1, 4])
    def test_conflict_accounting(self, matcher_cls, workers):
        engine = RuleEngine(matcher=matcher_cls(), workers=workers)
        engine.load(PROGRAM)
        seed(engine)
        snapshot = len(
            engine.conflict_set.eligible_snapshot(engine.strategy)
        )
        fired, conflicted, abandoned = engine.parallel_cycle()
        assert fired + conflicted + abandoned == snapshot
        assert conflicted > 0  # dedup guarantees invalidations
        assert abandoned == 0
        engine.close()

    @pytest.mark.parametrize("matcher_cls", MATCHERS)
    @pytest.mark.parametrize("workers", [1, 4])
    def test_abandoned_accounting(self, matcher_cls, workers):
        engine = RuleEngine(matcher=matcher_cls(), workers=workers,
                            on_error="skip")
        engine.load(
            """
            (literalize item n)
            (p poison (item ^n 1) --> (call explode))
            (p fine (item ^n { <n> > 1 }) --> (write ok <n>))
            """
        )

        def boom(*args):
            raise ValueError("boom")

        engine.register_function("explode", boom)
        engine.make("item", n=1)
        engine.make("item", n=2)
        fired, conflicted, abandoned = engine.parallel_cycle()
        assert (fired, conflicted, abandoned) == (1, 0, 1)
        assert len(engine.dead_letters) == 1
        engine.close()

    @pytest.mark.parametrize("matcher_cls", MATCHERS)
    @pytest.mark.parametrize("workers", [1, 4])
    def test_halt_mid_cycle_skips_the_sum_assert(
        self, matcher_cls, workers
    ):
        engine = RuleEngine(matcher=matcher_cls(), workers=workers)
        engine.load("(p r (a ^n <n>) --> (halt))")
        engine.make("a", n=1)
        engine.make("a", n=2)
        engine.make("a", n=3)
        fired, conflicted, abandoned = engine.parallel_cycle()
        # halt stops the commit loop: exactly one firing, the rest of
        # the snapshot is neither fired nor conflicted nor abandoned.
        assert (fired, conflicted, abandoned) == (1, 0, 0)
        engine.close()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_soi_version_bump_between_snapshot_and_fire(self, workers):
        engine = RuleEngine(workers=workers)
        engine.load(
            """
            (literalize item v)
            (literalize note text)
            (literalize go)
            (p shrink (go) { [item] <S> } :test ((count <S>) > 1)
              -->
              (foreach <S> descending (remove <S>)))
            (p watch { [item] <S> } :test ((count <S>) > 1)
              -->
              (make note ^text saw))
            """
        )
        engine.make("item", v=1)
        engine.make("item", v=2)
        engine.make("go")
        fired, conflicted, abandoned = engine.parallel_cycle()
        # shrink empties the set mid-cycle; watch's SOI version moved
        # between snapshot and fire -> conflicted, never fired.
        assert (fired, conflicted, abandoned) == (1, 1, 0)
        assert not engine.wm.find("note")
        engine.close()


# -- sharded match equivalence (Hypothesis-driven) -----------------------

SHARD_RULES = [
    "(p join (item ^owner <o>) (owner ^name <o>) --> (halt))",
    "(p lonely (item ^owner <o>) -(owner ^name <o>) --> (halt))",
    "(p groups { [item ^owner <o>] <S> } :scalar (<o>) "
    ":test ((count <S>) >= 2) --> (halt))",
    "(p budget (owner ^name <o>) { [item ^owner <o> ^v <v>] <S> } "
    ":test ((sum <S> ^v) > 10) --> (halt))",
]

OWNERS = ["ann", "bob", "cat"]


class _SnapshotListener:
    def __init__(self):
        self.live = {}

    def insert(self, inst):
        self.live[inst.identity()] = inst

    def retract(self, inst):
        self.live.pop(inst.identity(), None)

    def reposition(self, inst):
        pass

    def snapshot(self):
        entries = []
        for inst in self.live.values():
            token_tags = sorted(
                tuple(
                    wme.time_tag if wme is not None else 0
                    for wme in token.wmes()
                )
                for token in inst.tokens()
            )
            entries.append((inst.rule.name, tuple(token_tags)))
        return sorted(entries)


@st.composite
def operation_sequences(draw):
    return draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("make-item"),
                    st.sampled_from(OWNERS),
                    st.integers(0, 9),
                ),
                st.tuples(st.just("make-owner"), st.sampled_from(OWNERS)),
                st.tuples(st.just("remove"), st.integers(0, 30)),
                st.tuples(st.just("batch"), st.integers(2, 5)),
            ),
            min_size=1,
            max_size=25,
        )
    )


def drive(matcher, ops):
    wm = WorkingMemory()
    listener = _SnapshotListener()
    matcher.set_listener(listener)
    matcher.attach(wm)
    for source in SHARD_RULES:
        matcher.add_rule(parse_rule(source))
    made = []
    snapshots = []
    for op in ops:
        if op[0] == "make-item":
            made.append(wm.make("item", owner=op[1], v=op[2]))
        elif op[0] == "make-owner":
            made.append(wm.make("owner", name=op[1]))
        elif op[0] == "remove":
            live = [w for w in made if w in wm]
            if live:
                wm.remove(live[op[1] % len(live)])
        else:  # a delta batch: several adds in one propagation
            with wm.batch():
                for index in range(op[1]):
                    made.append(
                        wm.make("item", owner=OWNERS[index % 3], v=index)
                    )
        snapshots.append(listener.snapshot())
    close = getattr(matcher, "close", None)
    if close is not None:
        close()
    return snapshots


class TestShardedMatchEquivalence:
    @given(operation_sequences())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_sharded_equals_plain_rete(self, ops):
        assert drive(ShardedReteNetwork(shards=3), ops) == drive(
            ReteNetwork(), ops
        )

    @given(operation_sequences())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_single_shard_equals_plain_rete(self, ops):
        assert drive(ShardedReteNetwork(shards=1), ops) == drive(
            ReteNetwork(), ops
        )


# -- cost model: closed form == measured greedy schedule -----------------


@st.composite
def traced_records(draw):
    record = FiringRecord(1, "r", True, (1,), 1)
    next_tag = 100
    for _ in range(draw(st.integers(0, 12))):
        kind = draw(st.sampled_from(["make", "remove", "modify"]))
        if kind == "make":
            record.makes += 1
            record.touch("make")
        else:
            tag = draw(st.integers(1, 6))
            if kind == "remove":
                record.removes += 1
                record.touch("remove", tag)
            else:
                record.modifies += 1
                record.touch("modify", tag, next_tag)
                next_tag += 1
    return record


class TestLatencyModelMatchesSchedule:
    @given(traced_records(), st.integers(1, 16))
    @settings(max_examples=200, deadline=None)
    def test_model_equals_measured_schedule(self, record, workers):
        assert firing_latency(record, workers) == measured_schedule(
            record, workers
        )

    def test_model_on_a_real_traced_run(self):
        engine = RuleEngine()
        engine.load(PROGRAM)
        seed(engine)
        engine.run(limit=30)
        for record in engine.tracer.firings:
            for workers in (1, 2, 4, 100):
                assert firing_latency(record, workers) == (
                    measured_schedule(record, workers)
                )
        engine.close()
