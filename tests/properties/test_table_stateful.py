"""Stateful property test: Table + indexes vs a plain dict model."""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.rdb import Table


class TableMachine(RuleBasedStateMachine):
    """Random insert/update/delete against a model; indexes must agree."""

    def __init__(self):
        super().__init__()
        self.table = Table("t", ["a", "b"])
        self.table.create_index("a")
        self.model = {}

    row_ids = Bundle("row_ids")

    @rule(
        target=row_ids,
        a=st.one_of(st.integers(0, 5), st.none()),
        b=st.text(alphabet="xyz", max_size=2),
    )
    def insert(self, a, b):
        row_id = self.table.insert({"a": a, "b": b})
        self.model[row_id] = {"a": a, "b": b}
        return row_id

    @rule(row_id=row_ids, a=st.integers(0, 5))
    def update(self, row_id, a):
        if row_id in self.model:
            self.table.update(row_id, {"a": a})
            self.model[row_id]["a"] = a

    @rule(row_id=row_ids)
    def delete(self, row_id):
        if row_id in self.model:
            self.table.delete(row_id)
            del self.model[row_id]

    @invariant()
    def rows_match_model(self):
        actual = {row_id: row for row_id, row in self.table.rows()}
        assert actual == self.model

    @invariant()
    def index_matches_scan(self):
        index = self.table.index_on("a")
        for value in set(row["a"] for row in self.model.values()):
            via_index = {
                row_id for row_id in index.lookup(value)
            }
            via_scan = {
                row_id
                for row_id, row in self.model.items()
                if row["a"] == value
            }
            assert via_index == via_scan

    @invariant()
    def lengths_agree(self):
        assert len(self.table) == len(self.model)


TableMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestTableStateful = TableMachine.TestCase
