"""Atomic-firing property: a failed RHS leaves no trace. All matchers.

The reliability contract (``docs/RELIABILITY.md``): injecting an
exception at **every action index of every firing** of a workload must
leave working memory, the conflict set (contents + refire
eligibility), the time-tag counter, the trace output, and — under
DIPS — the COND tables byte-identical to the state with that firing
never attempted.  On top of the rollback:

* under ``retry``, a transient fault converges to the exact fault-free
  final state;
* under ``quarantine``, a persistently poison rule converges to the
  fault-free final state of the same program with that rule excised;
* a crash injected *during* the rollback itself still recovers to a
  consistent state via the WAL's bracketed firing transactions.

The exhaustive matrix iterates every (matcher, dispatch index) pair
deterministically; the Hypothesis test layers random workloads and
injection points on top.  ``FAULT_INJECTION_EXAMPLES`` raises the
Hypothesis budget (the CI fault-containment job sets it).
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DurabilityConfig, RuleEngine
from repro.dips.matcher import DipsMatcher
from repro.durability import FaultInjector, SimulatedCrash
from repro.engine.rhs import RhsExecutor
from repro.errors import FiringError

from tests.conftest import MATCHER_FACTORIES

FAULT_EXAMPLES = int(os.environ.get("FAULT_INJECTION_EXAMPLES", "25"))

# A join, a negation, a multi-action RHS with modify/remove, and a
# set-oriented aggregate — every action kind the executor stages.
PROGRAM = """
(literalize item owner v seen)
(literalize owner name)
(literalize audit owner n)
(p pair (item ^owner <o> ^v <v> ^seen nil) (owner ^name <o>)
  -->
  (make audit ^owner <o> ^n <v>)
  (modify 1 ^seen yes)
  (write <o> <v>))
(p lonely (item ^owner <o> ^v <v> ^seen nil) -(owner ^name <o>)
  -->
  (write lonely <o>)
  (modify 1 ^seen yes))
(p prune (audit ^owner <o> ^n { <n> > 2 })
  -->
  (write prune <o> <n>)
  (remove 1))
(p tally { [audit ^owner <o> ^n <n>] <S> }
  :scalar (<o>)
  :test ((count <S>) >= 2)
  -->
  (write tally <o> (count <S>)))
"""


def seed(engine):
    engine.make("owner", name="a")
    engine.make("item", owner="a", v=1, seen="nil")
    engine.make("item", owner="a", v=3, seen="nil")
    engine.make("item", owner="b", v=2, seen="nil")
    engine.make("item", owner="a", v=2, seen="nil")


def build(matcher_name, **kwargs):
    engine = RuleEngine(matcher=MATCHER_FACTORIES[matcher_name](),
                        **kwargs)
    engine.load(PROGRAM)
    return engine


def wm_state(engine):
    return sorted(
        (w.time_tag, w.wme_class, tuple(sorted(w.as_dict().items())))
        for w in engine.wm
    )


def cs_state(engine):
    from repro.durability.manager import fired_signature

    return sorted(
        (
            inst.rule.name,
            inst.is_set_oriented,
            tuple(map(tuple, fired_signature(inst))),
            inst.eligible(),
        )
        for inst in engine.conflict_set.instantiations()
    )


def dips_state(engine):
    """Every COND-table row, byte-for-byte, when the matcher is DIPS."""
    matcher = engine.matcher
    if not isinstance(matcher, DipsMatcher):
        return None
    tables = {}
    for name in sorted(matcher.db._tables):
        table = matcher.db.table(name)
        tables[name] = sorted(repr(row) for row in table.scan())
    return tables


def full_state(engine):
    return (
        wm_state(engine),
        cs_state(engine),
        engine.wm.latest_time_tag,
        engine.halted,
        tuple(engine.output),
        dips_state(engine),
    )


class DispatchFault:
    """Patches RhsExecutor._dispatch to raise at the n-th dispatch.

    Counts every action dispatch across the whole engine run; raising
    exactly once at *target* simulates a fault at that action of that
    firing.  Use as a context manager.
    """

    def __init__(self, target=None):
        self.target = target
        self.count = 0

    def __enter__(self):
        original = RhsExecutor._dispatch
        fault = self

        def patched(executor, action):
            index = fault.count
            fault.count += 1
            if index == fault.target:
                raise ValueError(f"injected at dispatch {index}")
            return original(executor, action)

        self._original = original
        RhsExecutor._dispatch = patched
        return self

    def __exit__(self, *exc_info):
        RhsExecutor._dispatch = self._original
        return False


def count_dispatches(matcher_name):
    """Total action dispatches of the fault-free workload."""
    with DispatchFault(target=None) as fault:
        engine = build(matcher_name)
        seed(engine)
        engine.run()
    return fault.count


def fault_free_final(matcher_name):
    engine = build(matcher_name)
    seed(engine)
    engine.run()
    return full_state(engine)


class TestEveryActionOfEveryFiring:
    """The exhaustive (matcher × dispatch index) rollback matrix."""

    @pytest.mark.parametrize("matcher_name", sorted(MATCHER_FACTORIES))
    def test_rollback_is_byte_identical_then_converges(self,
                                                       matcher_name):
        total = count_dispatches(matcher_name)
        assert total >= 8  # the workload must actually exercise actions
        reference = fault_free_final(matcher_name)
        for target in range(total):
            engine = build(matcher_name)
            seed(engine)
            with DispatchFault(target) as fault:
                failed_at = None
                for _ in range(100):
                    before = full_state(engine)
                    inst = engine.conflict_set.select(engine.strategy)
                    if inst is None or engine.halted:
                        break
                    try:
                        engine.fire(inst)
                    except FiringError as error:
                        failed_at = error
                        # The heart of the contract: the failed firing
                        # left the engine byte-identical to never
                        # having attempted it.
                        assert full_state(engine) == before, (
                            f"{matcher_name}: dispatch {target} of "
                            f"rule {error.rule_name} left residue"
                        )
                        break
                assert failed_at is not None, (
                    f"{matcher_name}: dispatch {target} never raised"
                )
                # The injector is spent: the same instantiation is
                # still eligible, re-fires cleanly, and the run ends
                # exactly where the fault-free run does.
                engine.run()
            assert full_state(engine) == reference, (
                f"{matcher_name}: post-fault run diverged "
                f"(injected at dispatch {target})"
            )


class TestRetryConvergence:
    @pytest.mark.parametrize("matcher_name", sorted(MATCHER_FACTORIES))
    def test_transient_fault_converges_to_fault_free(self, matcher_name):
        total = count_dispatches(matcher_name)
        reference = fault_free_final(matcher_name)
        for target in range(total):
            engine = build(matcher_name, on_error="retry:3")
            seed(engine)
            with DispatchFault(target):
                engine.run()
            state = full_state(engine)
            assert state == reference, (
                f"{matcher_name}: retry after dispatch-{target} fault "
                f"did not converge"
            )
            assert engine.dead_letters == []


def _drop_rule(state, rule_name):
    """Remove one rule's rows from a :func:`dips_state` dump."""
    if state is None:
        return None
    marker = f"'rule_id': '{rule_name}'"
    return {
        table: [row for row in rows if marker not in row]
        for table, rows in state.items()
    }


class TestQuarantineConvergence:
    POISON = "(p poison (item ^owner <o>) --> (call boom))\n"

    @pytest.mark.parametrize("matcher_name", sorted(MATCHER_FACTORIES))
    def test_poison_rule_quarantines_like_an_excise(self, matcher_name):
        def boom(*args):
            raise RuntimeError("always fails")

        engine = RuleEngine(matcher=MATCHER_FACTORIES[matcher_name](),
                            on_error="quarantine:2")
        engine.load(PROGRAM + self.POISON)
        engine.register_function("boom", boom)
        seed(engine)
        engine.run()
        assert set(engine.quarantined_rules()) == {"poison"}
        assert len(engine.dead_letters) == 2
        # Convergence: everything except the poison rule behaved as if
        # that rule had never been loaded.
        reference = build(matcher_name)
        seed(reference)
        reference.run()
        assert wm_state(engine) == wm_state(reference)
        assert tuple(engine.output) == tuple(reference.output)
        # COND rows belonging to the (still-loaded) poison rule are
        # expected; every other rule's rows must match the reference.
        assert _drop_rule(dips_state(engine), "poison") \
            == dips_state(reference)


class TestCrashDuringRollback:
    @pytest.mark.parametrize("matcher_name", sorted(MATCHER_FACTORIES))
    @pytest.mark.parametrize("point", ["fire.rollback", "fire.abort"])
    def test_recovers_consistently_via_abort_record(self, matcher_name,
                                                    point, tmp_path):
        def boom(*args):
            raise RuntimeError("poison")

        fault = FaultInjector(crash_at={point: 1})
        engine = RuleEngine(
            matcher=MATCHER_FACTORIES[matcher_name](),
            on_error="skip",
            durability=DurabilityConfig(tmp_path, fsync="off",
                                        fault=fault),
        )
        engine.load(PROGRAM + TestQuarantineConvergence.POISON)
        engine.register_function("boom", boom)
        with pytest.raises(SimulatedCrash):
            seed(engine)
            engine.run()
        recovered = RuleEngine.recover(tmp_path, on_error="skip",
                                       durability=False)
        recovered.register_function("boom", boom)
        recovered.run()
        # The crashed firing was rolled back wholesale by recovery;
        # finishing the run converges on the fault-free reference (the
        # poison firings dead-letter, everything else fires).
        reference = RuleEngine(
            matcher=MATCHER_FACTORIES[matcher_name](), on_error="skip"
        )
        reference.load(PROGRAM + TestQuarantineConvergence.POISON)
        reference.register_function("boom", boom)
        seed(reference)
        reference.run()
        assert wm_state(recovered) == wm_state(reference)
        assert cs_state(recovered) == cs_state(reference)

    def test_abort_record_is_replayed_not_dropped(self, tmp_path):
        """A *completed* abort bracket survives recovery as history."""

        def boom(*args):
            raise RuntimeError("poison")

        engine = RuleEngine(
            on_error="skip",
            durability=DurabilityConfig(tmp_path, fsync="off"),
        )
        engine.load(PROGRAM + TestQuarantineConvergence.POISON)
        engine.register_function("boom", boom)
        seed(engine)
        engine.run()
        live = (wm_state(engine), cs_state(engine),
                len(engine.dead_letters))
        engine.close()
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert (wm_state(recovered), cs_state(recovered),
                len(recovered.dead_letters)) == live
        letters = recovered.dead_letters
        assert {letter.rule_name for letter in letters} == {"poison"}
        assert all("poison" in letter.error for letter in letters)


_op = st.one_of(
    st.tuples(st.just("make-item"), st.sampled_from(["a", "b"]),
              st.integers(0, 3)),
    st.tuples(st.just("make-owner"), st.sampled_from(["a", "b"])),
    st.tuples(st.just("run"), st.integers(1, 6)),
)


def _apply(engine, op):
    if op[0] == "make-item":
        engine.make("item", owner=op[1], v=op[2], seen="nil")
    elif op[0] == "make-owner":
        engine.make("owner", name=op[1])
    else:
        engine.run(limit=op[1])


def _apply_retrying(engine, op):
    """Re-apply *op* after halt rollbacks without extra firing budget.

    A faulted ``run`` op must not simply be re-issued whole: firings
    that committed before the fault would then be granted over again,
    letting the faulted engine fire past the reference's limit.  The
    remaining limit shrinks by the firings that *committed* before
    each fault (aborted attempts stay in the trace, flagged).
    """
    if op[0] != "run":
        while True:
            try:
                return _apply(engine, op)
            except FiringError:
                # rolled back; the injector is now spent, so simply
                # continuing re-fires it cleanly.
                continue

    def committed():
        return sum(1 for f in engine.tracer.firings if not f.aborted)

    remaining = op[1]
    while remaining > 0:
        before = committed()
        try:
            return engine.run(limit=remaining)
        except FiringError:
            remaining -= committed() - before


class TestHypothesisFaultAtRandomPoint:
    @settings(max_examples=FAULT_EXAMPLES, deadline=None)
    @given(
        matcher_name=st.sampled_from(sorted(MATCHER_FACTORIES)),
        ops=st.lists(_op, min_size=2, max_size=12),
        target=st.integers(0, 60),
    )
    def test_halt_rollback_then_identical_convergence(self, matcher_name,
                                                      ops, target):
        reference = build(matcher_name)
        for op in ops:
            _apply(reference, op)
        reference.run()
        expected = full_state(reference)

        engine = build(matcher_name)
        with DispatchFault(target):
            for op in ops:
                _apply_retrying(engine, op)
            while True:
                try:
                    engine.run()
                    break
                except FiringError:
                    continue
        assert full_state(engine) == expected
