"""Unit tests for static rule analysis (binding sites, test classes)."""

import pytest

from repro.analysis import RuleAnalysis
from repro.errors import RuleError
from repro.lang.parser import parse_rule
from repro.wm import WME


def analyse(source):
    return RuleAnalysis(parse_rule(source))


class TestBindingSites:
    def test_first_equality_binds(self):
        analysis = analyse(
            "(p r (a ^x <v>) (b ^y <v>) --> (halt))"
        )
        assert analysis.binding_sites["v"] == (0, "x")

    def test_negated_ce_does_not_bind(self):
        analysis = analyse(
            "(p r -(a ^x <v>) (b ^y <v>) --> (halt))"
        )
        assert analysis.binding_sites["v"] == (1, "y")

    def test_use_before_binding_raises(self):
        with pytest.raises(RuleError):
            analyse("(p r (a ^x > <v>) --> (halt))")

    def test_negated_local_var_cannot_reach_rhs(self):
        with pytest.raises(RuleError):
            analyse("(p r (a) -(b ^x <v>) --> (write <v>))")

    def test_rhs_bind_shadows_is_allowed(self):
        # <v> bound on the RHS itself is fine even if the LHS never
        # binds it.
        analysis = analyse(
            "(p r (a) -(b ^x <v>) --> (bind <v> 3) (write <v>))"
        )
        assert "v" not in analysis.binding_sites


class TestTestClassification:
    def test_constant_intra_join_split(self):
        analysis = analyse(
            "(p r (a ^k 1 ^x <v> ^y <v>) (b ^z > <v>) --> (halt))"
        )
        first, second = analysis.ce_analyses
        assert [c.attribute for c in first.constant_checks] == ["k"]
        assert [(t.attribute, t.other_attribute) for t in first.intra_tests] \
            == [("y", "x")]
        assert not first.join_tests
        join = second.join_tests[0]
        assert (join.attribute, join.predicate) == ("z", ">")
        assert (join.bound_level, join.bound_attribute) == (0, "x")

    def test_disjunction_is_constant_check(self):
        analysis = analyse("(p r (a ^c << x y >>) --> (halt))")
        check = analysis.ce_analyses[0].constant_checks[0]
        assert check.operand == ("x", "y")

    def test_alpha_key_shared_between_identical_ces(self):
        one = analyse("(p r1 (a ^k 1 ^x <v>) --> (halt))")
        two = analyse("(p r2 (a ^k 1 ^x <w>) --> (halt))")
        assert (
            one.ce_analyses[0].alpha_key() == two.ce_analyses[0].alpha_key()
        )

    def test_alpha_key_differs_on_constants(self):
        one = analyse("(p r1 (a ^k 1) --> (halt))")
        two = analyse("(p r2 (a ^k 2) --> (halt))")
        assert (
            one.ce_analyses[0].alpha_key() != two.ce_analyses[0].alpha_key()
        )


class TestWmeMatching:
    def test_wme_passes_alpha(self):
        analysis = analyse("(p r (a ^k 1 ^x <v> ^y <v>) --> (halt))")
        ce_analysis = analysis.ce_analyses[0]
        good = WME("a", {"k": 1, "x": 7, "y": 7}, 1)
        bad_const = WME("a", {"k": 2, "x": 7, "y": 7}, 2)
        bad_intra = WME("a", {"k": 1, "x": 7, "y": 8}, 3)
        bad_class = WME("b", {"k": 1}, 4)
        assert ce_analysis.wme_passes_alpha(good)
        assert not ce_analysis.wme_passes_alpha(bad_const)
        assert not ce_analysis.wme_passes_alpha(bad_intra)
        assert not ce_analysis.wme_passes_alpha(bad_class)

    def test_wme_passes_joins(self):
        analysis = analyse("(p r (a ^x <v>) (b ^z > <v>) --> (halt))")
        ce_analysis = analysis.ce_analyses[1]
        bound = WME("a", {"x": 5}, 1)

        def lookup(level, attribute):
            assert (level, attribute) == (0, "x")
            return bound.get(attribute)

        assert ce_analysis.wme_passes_joins(WME("b", {"z": 9}, 2), lookup)
        assert not ce_analysis.wme_passes_joins(
            WME("b", {"z": 3}, 3), lookup
        )


class TestDerivedStructure:
    def test_scalar_and_set_levels(self):
        analysis = analyse("(p r (a) [b] -(c) [d] --> (halt))")
        assert analysis.scalar_ce_levels == (0,)
        assert analysis.set_ce_levels == (1, 3)

    def test_set_variable_sites(self):
        analysis = analyse(
            "(p r [b ^v <v> ^w <w>] :scalar (<w>) --> (halt))"
        )
        assert set(analysis.set_variable_sites) == {"v"}
        assert analysis.set_variable_sites["v"] == (0, "v")

    def test_variable_value_resolution(self):
        analysis = analyse("(p r (a ^x <v>) --> (write <v>))")
        wme = WME("a", {"x": 42}, 1)
        assert analysis.variable_value("v", lambda level: wme) == 42
        with pytest.raises(RuleError):
            analysis.variable_value("zz", lambda level: wme)
