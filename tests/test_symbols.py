"""Unit tests for the OPS5 value model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import symbols


class TestClassification:
    def test_numbers(self):
        assert symbols.is_number(1)
        assert symbols.is_number(-2.5)
        assert not symbols.is_number("1")

    def test_bool_is_not_a_number(self):
        assert not symbols.is_number(True)
        assert not symbols.is_number(False)

    def test_symbols(self):
        assert symbols.is_symbol("nil")
        assert symbols.is_symbol("")
        assert not symbols.is_symbol(3)

    def test_is_value(self):
        assert symbols.is_value("a")
        assert symbols.is_value(0)
        assert not symbols.is_value(None)
        assert not symbols.is_value([1])


class TestEquality:
    def test_numeric_equality_across_types(self):
        assert symbols.values_equal(2, 2.0)
        assert not symbols.values_equal(2, 3)

    def test_symbol_equality(self):
        assert symbols.values_equal("A", "A")
        assert not symbols.values_equal("A", "a")

    def test_number_never_equals_symbol(self):
        assert not symbols.values_equal(2, "2")

    def test_same_type_predicate(self):
        assert symbols.same_type(1, 2.5)
        assert symbols.same_type("a", "b")
        assert not symbols.same_type(1, "a")


class TestApplyPredicate:
    @pytest.mark.parametrize(
        "predicate,left,right,expected",
        [
            ("=", 5, 5.0, True),
            ("<>", 5, 6, True),
            ("<>", "x", "x", False),
            ("<", 1, 2, True),
            ("<=", 2, 2, True),
            (">", 3, 2, True),
            (">=", 2, 3, False),
            ("<=>", 1, 9.5, True),
            ("<=>", 1, "one", False),
        ],
    )
    def test_table(self, predicate, left, right, expected):
        assert symbols.apply_predicate(predicate, left, right) is expected

    def test_numeric_predicate_fails_on_symbols(self):
        # OPS5 match semantics: type mismatch is a non-match, not an error.
        assert not symbols.apply_predicate("<", "a", "b")
        assert not symbols.apply_predicate(">=", 1, "b")

    def test_unknown_predicate_raises(self):
        with pytest.raises(ValueError):
            symbols.apply_predicate("~", 1, 2)


class TestSortKeyAndLiterals:
    def test_numbers_sort_before_symbols(self):
        values = ["b", 3, "a", 1]
        assert sorted(values, key=symbols.sort_key) == [1, 3, "a", "b"]

    def test_coerce_literal(self):
        assert symbols.coerce_literal("42") == 42
        assert isinstance(symbols.coerce_literal("42"), int)
        assert symbols.coerce_literal("4.5") == 4.5
        assert symbols.coerce_literal("-3") == -3
        assert symbols.coerce_literal("abc") == "abc"
        assert symbols.coerce_literal("-") == "-"

    @given(st.integers(-10**6, 10**6))
    def test_coerce_roundtrips_integers(self, value):
        assert symbols.coerce_literal(str(value)) == value

    @given(
        st.one_of(
            st.integers(-1000, 1000),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            st.text(
                alphabet=st.characters(whitelist_categories=("Ll", "Lu")),
                min_size=1,
                max_size=8,
            ),
        )
    )
    def test_sort_key_total_order(self, value):
        key = symbols.sort_key(value)
        assert isinstance(key, tuple)
        # Comparable against both kinds of keys.
        assert (key < symbols.sort_key("zz")) or (
            key >= symbols.sort_key("zz")
        )
