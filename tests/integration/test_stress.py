"""Stress tests: larger rule bases and WM volumes run to quiescence."""

import random

import pytest

from repro import RuleEngine


def build_rule_base(engine, families=10):
    """A mixed base: joins, negations, set rules across *families* lanes."""
    for lane in range(families):
        engine.add_rule(
            f"(p join-{lane} (src ^lane {lane} ^k <k>) "
            f"(dst ^lane {lane} ^k <k>) --> "
            f"(make link ^lane {lane} ^k <k>))"
        )
        engine.add_rule(
            f"(p lonely-{lane} (src ^lane {lane} ^k <k>) "
            f"-(dst ^lane {lane} ^k <k>) -(probe ^lane {lane} ^k <k>) --> "
            f"(make probe ^lane {lane} ^k <k>))"
        )
        engine.add_rule(
            f"(p crowd-{lane} {{ [link ^lane {lane}] <L> }} "
            f"-(alert ^lane {lane}) "
            f":test ((count <L>) >= 5) --> "
            f"(make alert ^lane {lane}))"
        )


class TestScale:
    def test_thousand_wmes_to_quiescence(self):
        engine = RuleEngine()
        build_rule_base(engine, families=10)
        rng = random.Random(42)
        for _ in range(500):
            lane = rng.randrange(10)
            k = rng.randrange(20)
            engine.make("src", lane=lane, k=k)
            engine.make("dst", lane=lane, k=k)
        fired = engine.run(limit=20000)
        assert fired > 0
        # Every (lane, k) src got either a link or a probe.
        links = len(engine.wm.find("link"))
        probes = len(engine.wm.find("probe"))
        assert links + probes > 0
        # Quiescence: nothing eligible remains.
        assert engine.conflict_set.select(engine.strategy) is None

    def test_heavy_churn_consistency(self):
        """Add/remove storms leave the matcher internally consistent."""
        engine = RuleEngine()
        build_rule_base(engine, families=4)
        rng = random.Random(7)
        live = []
        for step in range(600):
            if live and rng.random() < 0.45:
                engine.remove(live.pop(rng.randrange(len(live))))
            else:
                cls = rng.choice(["src", "dst"])
                live.append(
                    engine.make(cls, lane=rng.randrange(4),
                                k=rng.randrange(8))
                )
        for wme in list(engine.wm):
            engine.remove(wme)
        stats = engine.matcher.stats
        assert stats.tokens_created == stats.tokens_deleted
        assert engine.conflict_set_size() == 0

    @pytest.mark.parametrize("matcher_name", ["rete", "treat"])
    def test_big_soi(self, make_engine, matcher_name):
        """One SOI with 1000 members builds and fires cleanly."""
        engine = make_engine(matcher_name)
        engine.load(
            """
            (literalize item v)
            (p sweep { [item] <S> } :test ((count <S>) >= 1000)
              -->
              (set-modify <S> ^v done))
            """
        )
        for index in range(1000):
            engine.make("item", v=index)
        # One firing sweeps all 1000 members.  (The modified items
        # re-form the SOI and the rule would refire — the paper's §6
        # refire-on-change semantics — so cap at one firing.)
        assert engine.run(limit=1) == 1
        assert len(engine.wm.find("item", v="done")) == 1000
        [record] = engine.tracer.firings
        assert record.modifies == 1000
