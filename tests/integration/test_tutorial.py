"""Executable check of every code block in docs/TUTORIAL.md."""

import pytest

from repro import RuleEngine


@pytest.fixture
def engine():
    engine = RuleEngine()
    engine.literalize("ticket", "id", "severity", "state")
    engine.literalize("reviewer", "name", "load")
    engine.literalize("intake", "state")
    engine.literalize("sweep", "kind")
    engine.literalize("print-request")
    return engine


STEP1 = """
(p assign
  { (ticket ^state new ^severity high) <T> }
  { (reviewer ^load < 3 ^load <l>) <R> }
  -->
  (modify <T> ^state assigned)
  (modify <R> ^load (<l> + 1)))
"""

STEP2 = """
(p throttle
  { [ticket ^state new] <Backlog> }
  -(intake ^state closed)
  :test ((count <Backlog>) >= 10)
  -->
  (write closing intake at (count <Backlog>) waiting)
  (make intake ^state closed))
"""

STEP3 = """
(p escalate-all
  (sweep ^kind stale)
  { [ticket ^state assigned] <Stale> }
  -->
  (write escalating (count <Stale>) tickets)
  (set-modify <Stale> ^severity high)
  (remove 1))
"""

STEP4 = """
(p report
  (print-request)
  [ticket ^severity <sev> ^id <i>]
  -->
  (foreach <sev> ascending
    (write severity <sev>)
    (foreach <i> ascending
      (write |  ticket| <i>)))
  (remove 1))
"""

STEP5 = """
(p dedup
  { [ticket ^id <i>] <Dups> }
  :scalar (<i>)
  :test ((count <Dups>) > 1)
  -->
  (bind <keep> true)
  (foreach <Dups> descending
    (if (<keep> == true)
      (bind <keep> false)
     else
      (remove <Dups>))))
"""


class TestTutorialSteps:
    def test_step1_assignment(self, engine):
        engine.add_rule(STEP1)
        engine.make("reviewer", name="ann", load=0)
        engine.make("ticket", id=1, severity="high", state="new")
        engine.run(limit=5)
        assert engine.wm.find("ticket", state="assigned")
        assert engine.wm.find("reviewer", load=1)

    def test_step2_throttle(self, engine):
        engine.add_rule(STEP2)
        tickets = [
            engine.make("ticket", id=i, severity="low", state="new")
            for i in range(10)
        ]
        assert engine.conflict_set_size() == 1
        engine.remove(tickets[0])  # drop below the threshold
        assert engine.conflict_set_size() == 0
        engine.make("ticket", id=99, severity="low", state="new")
        engine.run(limit=2)
        assert engine.output == ["closing intake at 10 waiting"]

    def test_step3_escalate_all(self, engine):
        engine.add_rule(STEP3)
        for index in range(7):
            engine.make("ticket", id=index, severity="low",
                        state="assigned")
        engine.make("sweep", kind="stale")
        fired = engine.run(limit=5)
        assert fired == 1  # one firing, no refire (sweep removed)
        assert len(engine.wm.find("ticket", severity="high")) == 7

    def test_step4_grouped_report(self, engine):
        engine.add_rule(STEP4)
        engine.make("ticket", id=2, severity="high", state="new")
        engine.make("ticket", id=1, severity="high", state="new")
        engine.make("ticket", id=3, severity="low", state="new")
        engine.make("print-request")
        engine.run(limit=2)
        assert engine.output == [
            "severity high", "  ticket 1", "  ticket 2",
            "severity low", "  ticket 3",
        ]

    def test_step5_dedup(self, engine):
        engine.add_rule(STEP5)
        engine.make("ticket", id=7, severity="low", state="new")
        engine.make("ticket", id=7, severity="low", state="new")
        engine.make("ticket", id=8, severity="low", state="new")
        engine.run(limit=5)
        assert len(engine.wm.find("ticket", id=7)) == 1
        assert len(engine.wm.find("ticket", id=8)) == 1
        # The survivor is the most recent copy (time tag 2).
        assert engine.wm.find("ticket", id=7)[0].time_tag == 2

    def test_step6_host_function(self, engine):
        alerts = []
        engine.register_function("page", alerts.append)
        engine.add_rule(
            "(p page-high (ticket ^severity high ^id <i>) --> "
            "(call page <i>))"
        )
        engine.make("ticket", id=42, severity="high", state="new")
        engine.run(limit=2)
        assert alerts == [42]
