"""Golden tests: the shipped .ops program files run correctly."""

import pathlib

import pytest

from repro.cli import ReplSession

PROGRAMS = pathlib.Path(__file__).resolve().parents[2] / "examples" / \
    "programs"


@pytest.fixture
def session():
    return ReplSession(watch=0)


class TestTournamentProgram:
    def test_balanced_brackets_announce(self, session):
        session.execute(f"load {PROGRAMS / 'tournament.ops'}")
        session.execute("make phase ^name seeding")
        for player, bracket, seed in [
            ("ann", "east", 1), ("bob", "east", 2),
            ("cat", "west", 1), ("dan", "west", 2),
        ]:
            session.execute(
                f"make entrant ^player {player} ^bracket {bracket} "
                f"^seed {seed}"
            )
        output = session.execute("run 20")
        assert "brackets balanced at 2 each" in output
        assert "bracket east" in output
        assert "seed 1 : ann" in output
        assert "bracket west" in output

    def test_imbalance_warning(self, session):
        session.execute(f"load {PROGRAMS / 'tournament.ops'}")
        session.execute("make phase ^name seeding")
        session.execute("make entrant ^player x ^bracket east ^seed 1")
        output = session.execute("run 5")
        # West is empty: no entrant tokens at all, so the imbalance rule
        # never matches either — nothing fires.
        assert "0 firing(s)" in output
        session.execute("make entrant ^player y ^bracket west ^seed 1")
        session.execute("make entrant ^player z ^bracket west ^seed 2")
        output = session.execute("run 5")
        assert "WARNING east 1 vs west 2" in output


class TestMonkeyProgram:
    def test_plan_executes(self, session):
        session.execute(f"load {PROGRAMS / 'monkey.ops'}")
        session.execute("make goal ^wants bananas ^done no")
        session.execute("make monkey ^at door ^holds nothing ^on floor")
        session.execute("make thing ^name box ^at corner")
        output = session.execute("run 20")
        assert "4 firing(s)" in output
        assert "grabs the bananas" in output
        wm = session.execute("wm monkey")
        assert "^holds bananas" in wm


class TestSensorStatsProgram:
    def test_summary_and_refresh(self, session):
        session.execute(f"load {PROGRAMS / 'sensor_stats.ops'}")
        session.execute("make reading ^sensor t1 ^value 10")
        session.execute("make reading ^sensor t1 ^value 30")
        output = session.execute("run 10")
        assert "sensor t1 n 2 mean 20.0" in output
        session.execute("make reading ^sensor t1 ^value 50")
        output = session.execute("run 10")
        assert "refreshing summary for t1" in output
        assert "sensor t1 n 3 mean 30.0" in output


class TestJugsProgram:
    def test_canonical_solution(self, session):
        session.execute(f"load {PROGRAMS / 'jugs.ops'}")
        session.execute("make jug ^size 5 ^content 0")
        session.execute("make jug ^size 3 ^content 0")
        session.execute("make goal ^target 4 ^done no")
        output = session.execute("run 60")
        assert "7 firing(s)" in output
        assert "reached 4 gallons" in output
        wm = session.execute("wm jug")
        assert "^content 4" in wm


class TestParallelCommand:
    def test_parallel_reports_conflicts(self, session):
        session.execute(
            "(p dedup (rec ^key <k> ^serial <s>) "
            "{ (rec ^key <k> ^serial < <s>) <Old> } --> (remove <Old>))"
        )
        for serial in range(4):
            session.execute(f"make rec ^key dup ^serial {serial}")
        output = session.execute("parallel 10")
        assert "invalidated" in output
        assert session.execute("wm rec").count("rec") == 1
