"""Integration tests: multi-rule programs run end to end.

These exercise rule interaction, control flow, negation, set-oriented
rules, and conflict resolution together — per matcher back end.
"""

import pytest



class TestOrderFulfilment:
    def test_orders_ship_when_lines_covered(self, make_engine,
                                            any_matcher_name):
        engine = make_engine(any_matcher_name)
        engine.load(
            """
            (literalize order id status)
            (literalize line order sku qty)
            (literalize stock sku qty)
            (literalize shipment order)

            (p reserve-line
              (order ^id <o> ^status open)
              { (line ^order <o> ^sku <sku> ^qty <q>) <L> }
              { (stock ^sku <sku> ^qty >= <q>) <S> }
              -->
              (bind <have> 0)
              (modify <S> ^qty 0)
              (remove <L>))

            (p ship-when-complete
              { (order ^id <o> ^status open) <O> }
              -(line ^order <o>)
              -->
              (modify <O> ^status shipped)
              (make shipment ^order <o>))
            """
        )
        engine.make("order", id=1, status="open")
        engine.make("line", order=1, sku="bolt", qty=5)
        engine.make("line", order=1, sku="gear", qty=2)
        engine.make("stock", sku="bolt", qty=10)
        engine.make("stock", sku="gear", qty=2)
        engine.make("order", id=2, status="open")
        engine.make("line", order=2, sku="cog", qty=1)  # no stock
        engine.run(limit=50)
        assert engine.wm.find("shipment", order=1)
        assert not engine.wm.find("shipment", order=2)
        assert engine.wm.find("order", id=2, status="open")


MONKEY_PROGRAM = """
(literalize monkey at holds on)
(literalize thing name at)
(literalize goal wants done)

(p grab-bananas
  (goal ^wants bananas ^done no)
  { (monkey ^at bananas-spot ^on box ^holds nothing) <M> }
  -->
  (modify <M> ^holds bananas)
  (modify 1 ^done yes))

(p climb-box
  (goal ^wants bananas ^done no)
  { (monkey ^at bananas-spot ^on floor ^holds nothing) <M> }
  (thing ^name box ^at bananas-spot)
  -->
  (modify <M> ^on box))

(p push-box
  (goal ^wants bananas ^done no)
  { (monkey ^at <loc> ^on floor) <M> }
  { (thing ^name box ^at <loc>) <B> }
  -(thing ^name box ^at bananas-spot)
  -->
  (modify <M> ^at bananas-spot)
  (modify <B> ^at bananas-spot))

(p walk-to-box
  (goal ^wants bananas ^done no)
  { (monkey ^at <mloc> ^on floor) <M> }
  (thing ^name box ^at { <bloc> <> <mloc> })
  -->
  (modify <M> ^at <bloc>))
"""


class TestMonkeyAndBananas:
    @pytest.mark.parametrize("strategy", ["lex", "mea"])
    def test_monkey_gets_bananas(self, make_engine, matcher_name, strategy):
        engine = make_engine(matcher_name, strategy=strategy)
        engine.load(MONKEY_PROGRAM)
        engine.make("goal", wants="bananas", done="no")
        engine.make("monkey", at="door", holds="nothing", on="floor")
        engine.make("thing", name="box", at="corner")
        fired = engine.run(limit=20)
        assert engine.wm.find("goal", done="yes")
        assert engine.wm.find("monkey", holds="bananas")
        # walk -> push -> climb -> grab.
        assert fired == 4


STATISTICS_PROGRAM = """
(literalize reading sensor value)
(literalize summary sensor n mean lo hi)

(p summarise
  { [reading ^sensor <s> ^value <v>] <R> }
  :scalar (<s>)
  -(summary ^sensor <s>)
  -->
  (make summary
    ^sensor <s>
    ^n (count <R>)
    ^mean (avg <R> ^value)
    ^lo (min <R> ^value)
    ^hi (max <R> ^value)))
"""


class TestAggregateSummaries:
    def test_per_sensor_summary(self, make_engine, matcher_name):
        engine = make_engine(matcher_name)
        engine.load(STATISTICS_PROGRAM)
        data = {
            "t1": [10, 20, 30],
            "t2": [5, 5],
        }
        for sensor, values in data.items():
            for value in values:
                engine.make("reading", sensor=sensor, value=value)
        engine.run(limit=10)
        s1 = engine.wm.find("summary", sensor="t1")[0]
        assert (s1.get("n"), s1.get("mean")) == (3, 20.0)
        assert (s1.get("lo"), s1.get("hi")) == (10, 30)
        s2 = engine.wm.find("summary", sensor="t2")[0]
        assert (s2.get("n"), s2.get("lo"), s2.get("hi")) == (2, 5, 5)

    def test_summary_refreshes_on_new_reading(self, make_engine,
                                              matcher_name):
        engine = make_engine(matcher_name)
        engine.load(
            STATISTICS_PROGRAM
            + """
            (p refresh
              { (summary ^sensor <s> ^n <n>) <Sum> }
              { [reading ^sensor <s>] <R> }
              :test ((count <R>) > <n>)
              -->
              (remove <Sum>))
            """
        )
        engine.make("reading", sensor="t1", value=10)
        engine.run(limit=10)
        assert engine.wm.find("summary", sensor="t1", n=1)
        engine.make("reading", sensor="t1", value=30)
        engine.run(limit=10)
        summary = engine.wm.find("summary", sensor="t1")[0]
        assert summary.get("n") == 2
        assert summary.get("mean") == 20.0


PIPELINE_PROGRAM = """
(literalize batch stage size)
(literalize ticket batch step)

(p open-tickets
  { (batch ^stage new ^size <n>) <B> }
  -->
  (bind <i> 0)
  (modify <B> ^stage ticketed))

(p process-stage
  { (batch ^stage ticketed) <B> }
  { [ticket ^step todo] <T> }
  -->
  (set-modify <T> ^step done)
  (modify <B> ^stage complete))
"""


class TestSetStagePipeline:
    def test_set_stage_processes_all_tickets(self, make_engine,
                                             matcher_name):
        engine = make_engine(matcher_name)
        engine.load(PIPELINE_PROGRAM)
        engine.make("batch", stage="ticketed", size=3)
        for index in range(3):
            engine.make("ticket", batch=1, step="todo")
        engine.run(limit=10)
        assert len(engine.wm.find("ticket", step="done")) == 3
        assert engine.wm.find("batch", stage="complete")
