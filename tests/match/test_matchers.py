"""Unit tests for the TREAT and naive baseline matchers."""

import pytest

from repro.errors import RuleError
from repro.lang.parser import parse_rule
from repro.match import NaiveMatcher, TreatMatcher
from repro.wm import WorkingMemory

from tests.rete.test_network import Listener


def build(matcher, *sources):
    wm = WorkingMemory()
    listener = Listener()
    matcher.set_listener(listener)
    matcher.attach(wm)
    for source in sources:
        matcher.add_rule(parse_rule(source))
    return wm, listener


@pytest.fixture(params=[TreatMatcher, NaiveMatcher])
def matcher_cls(request):
    return request.param


class TestBaselineMatching:
    def test_join(self, matcher_cls):
        wm, listener = build(
            matcher_cls(), "(p r (a ^x <v>) (b ^y <v>) --> (halt))"
        )
        wm.make("a", x=1)
        wm.make("b", y=1)
        wm.make("b", y=2)
        assert len(listener.live) == 1

    def test_removal(self, matcher_cls):
        wm, listener = build(
            matcher_cls(), "(p r (a ^x <v>) (b ^y <v>) --> (halt))"
        )
        a = wm.make("a", x=1)
        wm.make("b", y=1)
        wm.remove(a)
        assert not listener.live

    def test_negation(self, matcher_cls):
        wm, listener = build(
            matcher_cls(), "(p r (goal) -(done) --> (halt))"
        )
        wm.make("goal")
        assert len(listener.live) == 1
        done = wm.make("done")
        assert not listener.live
        wm.remove(done)
        assert len(listener.live) == 1

    def test_set_rule_grouping(self, matcher_cls):
        wm, listener = build(
            matcher_cls(),
            "(p r [item ^owner <o>] :scalar (<o>) --> (halt))",
        )
        wm.make("item", owner="x")
        wm.make("item", owner="x")
        wm.make("item", owner="y")
        assert len(listener.live) == 2

    def test_set_rule_test_clause(self, matcher_cls):
        wm, listener = build(
            matcher_cls(),
            "(p r { [item] <S> } :test ((count <S>) >= 2) --> (halt))",
        )
        first = wm.make("item")
        assert not listener.live
        wm.make("item")
        assert len(listener.live) == 1
        wm.remove(first)
        assert not listener.live

    def test_duplicate_rule_rejected(self, matcher_cls):
        matcher = matcher_cls()
        _, _ = build(matcher, "(p r (a) --> (halt))")
        with pytest.raises(RuleError):
            matcher.add_rule(parse_rule("(p r (b) --> (halt))"))

    def test_backfill_on_late_rule(self, matcher_cls):
        matcher = matcher_cls()
        wm, listener = build(matcher)
        wm.make("a", x=1)
        wm.make("b", y=1)
        matcher.add_rule(parse_rule("(p r (a ^x <v>) (b ^y <v>) --> (halt))"))
        assert len(listener.live) == 1


class TestTreatSpecifics:
    def test_seeded_join_counts(self):
        matcher = TreatMatcher()
        wm, listener = build(
            matcher, "(p r (a ^x <v>) (b ^y <v>) --> (halt))"
        )
        wm.make("a", x=1)
        assert matcher.stats["seeded_joins"] == 1
        wm.make("b", y=1)
        assert matcher.stats["seeded_joins"] == 2

    def test_self_join_duplicate_suppressed(self):
        # A WME matching two CE slots must not create duplicate tokens
        # when seeded from each slot.
        matcher = TreatMatcher()
        wm, listener = build(
            matcher, "(p r (a ^x <v>) (a ^x <v>) --> (halt))"
        )
        wm.make("a", x=1)
        assert len(listener.live) == 1


class TestNaiveSpecifics:
    def test_recomputation_counter(self):
        matcher = NaiveMatcher()
        wm, listener = build(matcher, "(p r (a) --> (halt))")
        before = matcher.stats["recomputations"]
        wm.make("a")
        wm.make("a")
        assert matcher.stats["recomputations"] == before + 2
