"""Sharded add_rule WM-backfill, differential against plain Rete.

The regression this pins: a shard only receives deltas for WME classes
it is ``interested_in``, so a shard gaining its *first* rule over a
class it previously filtered out must back-fill that rule from live
working memory — exactly what an unsharded :class:`ReteNetwork` does.
Before the fix a shard could be left blind when the facade was
attached after construction, leaving the new rule permanently empty.
"""

import pytest

from repro import RuleEngine, ShardedReteNetwork
from repro.rete import ReteNetwork
from repro.rete.sharded import shard_of

LITERALIZE = """
(literalize item kind v)
(literalize tag name)
(literalize audit kind)
"""

RULES = (
    "(p watch-item (item ^kind <k> ^v <v>) --> (write item <k> <v>))",
    "(p watch-tag (tag ^name <n>) --> (write tag <n>))",
    "(p audit-item (audit ^kind <k>) (item ^kind <k> ^v <v>) "
    "--> (write audit <k> <v>))",
)


def _seed_facts(engine):
    engine.make("item", kind="a", v=1)
    engine.make("item", kind="b", v=2)
    engine.make("tag", name="a")
    engine.make("audit", kind="a")


def _conflict_signature(engine):
    return sorted(
        (i.rule.name, tuple(i.recency_key()))
        for i in engine.conflict_set
    )


def _drive(matcher):
    engine = RuleEngine(matcher=matcher)
    engine.load(LITERALIZE)
    _seed_facts(engine)
    for rule in RULES:
        engine.add_rule(rule)
    engine.make("item", kind="a", v=3)
    return engine


class TestShardedBackfill:
    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    def test_facts_first_rules_later_matches_plain_rete(self, shards):
        sharded = _drive(ShardedReteNetwork(shards=shards))
        plain = _drive(ReteNetwork())
        assert _conflict_signature(sharded) == _conflict_signature(plain)
        sharded.run()
        plain.run()
        assert sorted(sharded.output) == sorted(plain.output)

    def test_cold_shard_backfills_filtered_class(self):
        """The rules land on distinct shards, so at least one shard had
        zero interest in ``item`` while the facts arrived."""
        shards = 5
        indexes = {
            shard_of({"item"}, shards),
            shard_of({"tag"}, shards),
            shard_of({"audit", "item"}, shards),
        }
        assert len(indexes) > 1, "pick shard counts that split the rules"
        engine = RuleEngine(matcher=ShardedReteNetwork(shards=shards))
        engine.load(LITERALIZE)
        _seed_facts(engine)
        # No rules yet: every shard filtered every class out.
        engine.add_rule(RULES[2])
        assert [i.rule.name for i in engine.conflict_set] == ["audit-item"]
        assert engine.run() == 1
        assert engine.output == ["audit a 1"]

    def test_backfill_after_excise_and_readd(self):
        engine = RuleEngine(matcher=ShardedReteNetwork(shards=3))
        engine.load(LITERALIZE)
        _seed_facts(engine)
        engine.add_rule(RULES[0])
        assert len(engine.conflict_set) == 2
        engine.excise("watch-item")
        assert len(engine.conflict_set) == 0
        # The shard lost its last rule over `item`; facts asserted in
        # the gap must still reach a rule added afterwards.
        engine.make("item", kind="c", v=9)
        engine.add_rule(RULES[0])
        assert len(engine.conflict_set) == 3
        assert engine.run() == 3
        assert sorted(engine.output) == [
            "item a 1", "item b 2", "item c 9",
        ]
