"""Differential testing: all four matchers must agree, always.

Rete is incremental and clever; the naive matcher recomputes from
scratch and is "obviously correct".  Hypothesis drives random WM
operation sequences through a fixed rule portfolio and asserts the
conflict sets (as comparable snapshots) stay identical across Rete,
TREAT, naive, and DIPS.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dips import DipsMatcher
from repro.lang.parser import parse_rule
from repro.match import NaiveMatcher, TreatMatcher
from repro.rete import ReteNetwork
from repro.wm import WorkingMemory


class SnapshotListener:
    """Tracks live instantiations in a comparable canonical form."""

    def __init__(self):
        self.live = {}

    def insert(self, inst):
        self.live[inst.identity()] = inst

    def retract(self, inst):
        self.live.pop(inst.identity(), None)

    def reposition(self, inst):
        pass

    def snapshot(self):
        entries = []
        for inst in self.live.values():
            token_tags = sorted(
                tuple(
                    wme.time_tag if wme is not None else 0
                    for wme in token.wmes()
                )
                for token in inst.tokens()
            )
            entries.append((inst.rule.name, tuple(token_tags)))
        return sorted(entries)


RULES = [
    # Plain join.
    "(p join (item ^owner <o>) (owner ^name <o>) --> (halt))",
    # Negation.
    "(p lonely (item ^owner <o>) -(owner ^name <o>) --> (halt))",
    # Pure set rule.
    "(p allitems [item ^v <v>] --> (halt))",
    # Partitioned set rule with :scalar and a count test.
    "(p groups { [item ^owner <o>] <S> } :scalar (<o>) "
    ":test ((count <S>) >= 2) --> (halt))",
    # Mixed scalar + set CEs with a numeric aggregate.
    "(p heavy (owner ^name <o>) { [item ^owner <o> ^v <v>] <S> } "
    ":test ((sum <S> ^v) > 10) --> (halt))",
    # Same-class self-join between a scalar and a set CE.
    "(p selfjoin (item ^owner <o>) [item ^owner <o>] --> (halt))",
]

# DIPS now supports negation through residual blocker checks, so it
# runs the full portfolio.
DIPS_RULES = RULES

OWNERS = ["ann", "bob", "cat"]


@st.composite
def operation_sequences(draw):
    """A list of ops: ('make-item', owner, v) | ('make-owner', o) | ('remove', i)."""
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("make-item"),
                    st.sampled_from(OWNERS),
                    st.integers(0, 9),
                ),
                st.tuples(st.just("make-owner"), st.sampled_from(OWNERS)),
                st.tuples(st.just("remove"), st.integers(0, 30)),
                st.tuples(st.just("excise"), st.just(0)),
            ),
            min_size=1,
            max_size=25,
        )
    )
    return ops


def drive(matcher, rules, ops):
    wm = WorkingMemory()
    listener = SnapshotListener()
    matcher.set_listener(listener)
    matcher.attach(wm)
    for source in rules:
        matcher.add_rule(parse_rule(source))
    made = []
    snapshots = []
    for op in ops:
        if op[0] == "make-item":
            made.append(wm.make("item", owner=op[1], v=op[2]))
        elif op[0] == "make-owner":
            made.append(wm.make("owner", name=op[1]))
        elif op[0] == "remove":
            live = [w for w in made if w in wm]
            if live:
                wm.remove(live[op[1] % len(live)])
        else:  # excise the self-join rule (idempotent)
            from repro.errors import ReproError

            try:
                matcher.remove_rule("selfjoin")
            except ReproError:
                pass  # already excised earlier in the sequence
        snapshots.append(listener.snapshot())
    return snapshots


class TestIncrementalEquivalence:
    @given(operation_sequences())
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_rete_equals_naive(self, ops):
        assert drive(ReteNetwork(), RULES, ops) == drive(
            NaiveMatcher(), RULES, ops
        )

    @given(operation_sequences())
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_treat_equals_naive(self, ops):
        assert drive(TreatMatcher(), RULES, ops) == drive(
            NaiveMatcher(), RULES, ops
        )

    @given(operation_sequences())
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_dips_equals_naive(self, ops):
        assert drive(DipsMatcher(), DIPS_RULES, ops) == drive(
            NaiveMatcher(), DIPS_RULES, ops
        )


class TestEngineLevelEquivalence:
    """Whole-program equivalence: same firings, same output, same WM."""

    PROGRAM = """
    (literalize player name team)
    (p RemoveDups
      { [player ^name <n> ^team <t>] <P> }
      :scalar (<n> <t>)
      :test ((count <P>) > 1)
      -->
      (bind <First> true)
      (foreach <P> descending
        (if (<First> == true)
          (bind <First> false)
         else
          (remove <P>))))
    """

    @pytest.mark.parametrize(
        "matcher_cls", [ReteNetwork, TreatMatcher, NaiveMatcher, DipsMatcher]
    )
    def test_remove_dups_program(self, matcher_cls):
        from repro import RuleEngine

        engine = RuleEngine(matcher=matcher_cls())
        engine.load(self.PROGRAM)
        roster = [
            ("A", "Jack"), ("A", "Jack"), ("B", "Sue"),
            ("B", "Sue"), ("B", "Sue"), ("A", "Pat"),
        ]
        for team, name in roster:
            engine.make("player", team=team, name=name)
        engine.run(limit=20)
        remaining = sorted(
            (w.get("name"), w.get("team")) for w in engine.wm
        )
        assert remaining == [("Jack", "A"), ("Pat", "A"), ("Sue", "B")]
