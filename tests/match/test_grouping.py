"""Unit tests for the shared SOI grouper (used by TREAT/naive/DIPS)."""


from repro.analysis import RuleAnalysis
from repro.core.instantiation import MatchToken
from repro.lang.parser import parse_rule
from repro.match.grouping import SoiGrouper
from repro.wm import WME


class Recorder:
    def __init__(self):
        self.live = []
        self.events = []

    def insert(self, inst):
        self.live.append(inst)
        self.events.append("+")

    def retract(self, inst):
        self.live.remove(inst)
        self.events.append("-")

    def reposition(self, inst):
        self.events.append("time")


def grouper_for(source):
    rule = parse_rule(source)
    recorder = Recorder()
    return SoiGrouper(rule, RuleAnalysis(rule), recorder), recorder


def token(tag, **values):
    return MatchToken([WME("item", values, tag)])


class TestGrouping:
    def test_pure_set_rule_single_group(self):
        grouper, recorder = grouper_for("(p r [item ^v <v>] --> (halt))")
        grouper.add_token(token(1, v=1))
        grouper.add_token(token(2, v=2))
        assert len(grouper.sois) == 1
        assert len(recorder.live) == 1
        assert len(recorder.live[0].tokens()) == 2

    def test_scalar_var_partitions(self):
        grouper, recorder = grouper_for(
            "(p r [item ^owner <o>] :scalar (<o>) --> (halt))"
        )
        grouper.add_token(token(1, owner="x"))
        grouper.add_token(token(2, owner="y"))
        grouper.add_token(token(3, owner="x"))
        assert len(grouper.sois) == 2
        assert len(recorder.live) == 2

    def test_p_value_exposed(self):
        grouper, recorder = grouper_for(
            "(p r [item ^owner <o>] :scalar (<o>) --> (halt))"
        )
        grouper.add_token(token(1, owner="x"))
        [inst] = recorder.live
        assert inst.p_value("o") == "x"

    def test_removal_and_delete(self):
        grouper, recorder = grouper_for("(p r [item ^v <v>] --> (halt))")
        first = token(1, v=1)
        grouper.add_token(first)
        grouper.remove_token(first)
        assert grouper.sois == {}
        assert recorder.live == []
        assert recorder.events == ["+", "-"]

    def test_remove_unknown_token_noop(self):
        grouper, recorder = grouper_for("(p r [item ^v <v>] --> (halt))")
        grouper.remove_token(token(9, v=9))
        assert recorder.events == []


class TestTestClause:
    SOURCE = (
        "(p r { [item ^v <v>] <S> } :test ((count <S>) >= 2) --> (halt))"
    )

    def test_activation_threshold(self):
        grouper, recorder = grouper_for(self.SOURCE)
        grouper.add_token(token(1, v=1))
        assert recorder.live == []
        grouper.add_token(token(2, v=2))
        assert len(recorder.live) == 1

    def test_deactivation(self):
        grouper, recorder = grouper_for(self.SOURCE)
        first = token(1, v=1)
        grouper.add_token(first)
        grouper.add_token(token(2, v=2))
        grouper.remove_token(first)
        assert recorder.live == []
        assert recorder.events == ["+", "-"]

    def test_reposition_on_active_change(self):
        grouper, recorder = grouper_for(self.SOURCE)
        grouper.add_token(token(1, v=1))
        grouper.add_token(token(2, v=2))
        grouper.add_token(token(3, v=3))
        assert recorder.events == ["+", "time"]

    def test_version_counts_every_change(self):
        grouper, recorder = grouper_for(self.SOURCE)
        grouper.add_token(token(1, v=1))
        [soi] = grouper.sois.values()
        assert soi.version == 1
        grouper.add_token(token(2, v=2))
        assert soi.version == 2
