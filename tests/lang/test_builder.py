"""Unit tests for the programmatic RuleBuilder."""

import pytest

from repro.errors import RuleError
from repro.lang import ast
from repro.lang.builder import RuleBuilder, ce, neg_ce, set_ce, var
from repro.lang.parser import parse_rule


class TestCeHelpers:
    def test_constant_and_var_checks(self):
        element = ce("player", team="A", name=var("n"))
        assert not element.set_oriented
        checks = {t.attribute: t.checks[0] for t in element.tests}
        assert checks["team"] == ast.Check("=", ast.Const("A"))
        assert checks["name"] == ast.Check("=", ast.Var("n"))

    def test_predicate_tuple(self):
        element = ce("item", n=(">", 5))
        assert element.tests[0].checks[0].predicate == ">"

    def test_conjunction_via_list(self):
        element = ce("item", n=[(">", 2), ("<", 10)])
        assert len(element.tests[0].checks) == 2

    def test_set_and_negated(self):
        assert set_ce("player").set_oriented
        assert neg_ce("done").negated

    def test_invalid_value_raises(self):
        with pytest.raises(RuleError):
            ce("player", name=object())


class TestRuleBuilder:
    def test_matches_parsed_equivalent(self):
        built = (
            RuleBuilder("SwitchTeams")
            .set_ce("player", team="A").bind("ATeam")
            .set_ce("player", team="B").bind("BTeam")
            .test("(count <ATeam>) == (count <BTeam>)")
            .set_modify("ATeam", team="B")
            .set_modify("BTeam", team="A")
            .build()
        )
        parsed = parse_rule(
            """(p SwitchTeams
                 { [player ^team A] <ATeam> }
                 { [player ^team B] <BTeam> }
                 :test ((count <ATeam>) == (count <BTeam>))
                 --> (set-modify <ATeam> ^team B)
                     (set-modify <BTeam> ^team A))"""
        )
        assert built == parsed

    def test_scalar_clause(self):
        rule = (
            RuleBuilder("r")
            .set_ce("player", name=var("n"))
            .scalar("n")
            .write(var("n"))
            .build()
        )
        assert rule.scalar_vars == ("n",)

    def test_bind_requires_a_ce(self):
        with pytest.raises(RuleError):
            RuleBuilder("r").bind("X")

    def test_expression_strings_parse(self):
        rule = (
            RuleBuilder("r")
            .ce("c", n=var("n"))
            .make("out", v="(<n> + 1)")
            .build()
        )
        assignments = dict(rule.actions[0].assignments)
        assert assignments["v"] == ast.BinOp(
            "+", ast.Var("n"), ast.Const(1)
        )

    def test_foreach_nesting(self):
        inner = (
            RuleBuilder("_inner").write(var("v")).actions()
        )
        rule = (
            RuleBuilder("r")
            .set_ce("a", v=var("v"))
            .foreach("v", *inner, order="descending")
            .build()
        )
        action = rule.actions[0]
        assert action.order == "descending"
        assert isinstance(action.body[0], ast.WriteAction)

    def test_if_with_string_condition(self):
        rule = (
            RuleBuilder("r")
            .ce("a", n=var("n"))
            .if_("<n> > 3", (ast.HaltAction(),))
            .build()
        )
        assert isinstance(rule.actions[0], ast.IfAction)

    def test_built_rule_runs(self, make_engine):
        rule = (
            RuleBuilder("doubler")
            .ce("num", value=var("v"))
            .make("doubled", value="(<v> * 2)")
            .build()
        )
        engine = make_engine()
        engine.add_rule(rule)
        engine.make("num", value=21)
        engine.run(limit=5)
        assert engine.wm.find("doubled", value=42)
